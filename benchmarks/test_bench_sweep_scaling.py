"""Benchmark: serial vs. parallel sweep-engine wall clock.

Records how the multiprocessing executor scales on the Figure 9 grid so
the perf trajectory across PRs captures the parallel path, and asserts
that the parallel outcome is numerically identical to the serial one.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments.sweep import SweepEngine
from repro.experiments.figure09 import figure09_spec

#: A modest grid: 5 configs x 8 workloads = 40 cells.
GRID = ((32, 512), (64, 1024), (128, 2048))


def _spec():
    return figure09_spec(scale=BENCH_SCALE, grid=GRID)


def _summary(outcome):
    return [result.summary_row() for result in outcome.results]


def test_bench_sweep_serial(benchmark):
    outcome = run_once(benchmark, lambda: SweepEngine(jobs=1).run(_spec()))
    assert outcome.simulated == len(outcome.results) == len(_spec())
    print(f"\nserial: {len(outcome.results)} cells in {outcome.elapsed:.2f}s")


def test_bench_sweep_parallel(benchmark):
    import os

    serial = SweepEngine(jobs=1).run(_spec())
    outcome = run_once(benchmark, lambda: SweepEngine(jobs=4).run(_spec()))
    assert _summary(outcome) == _summary(serial)
    # Speedup only materializes with real cores; on a 1-CPU box this
    # records the pure multiprocessing overhead instead.
    print(
        f"\nparallel(4 jobs, {os.cpu_count()} cpus):"
        f" {len(outcome.results)} cells in {outcome.elapsed:.2f}s"
        f" (serial took {serial.elapsed:.2f}s,"
        f" speedup {serial.elapsed / max(outcome.elapsed, 1e-9):.2f}x)"
    )
