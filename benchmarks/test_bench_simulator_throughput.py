"""Benchmarks of raw simulator throughput (simulated instructions per second).

Not a paper figure: these benchmarks track the cost of simulating each
machine so that regressions in the simulator itself (as opposed to the
modelled machines) are visible in the pytest-benchmark output.

The benchmark definitions live in :mod:`repro.perf` (shared with
``repro bench`` and ``benchmarks/record.py``).  The headline entries
(``baseline-128``, ``baseline-4096``, ``cooo-64-1024``) run the paper's
target regime — kilo-instruction windows waiting on 500-cycle dependent
loads — which is where the event-driven cycle-skipping kernel matters;
the ``*-daxpy`` entries keep the fully-busy per-cycle path honest.

``test_event_driven_speedup_guard`` is the CI tripwire: it asserts the
event-driven kernel stays at least 2x faster than ``force_per_cycle``
on the memory-bound benchmark (the actual margin is far larger), so the
fast path cannot silently rot back into per-cycle stepping.
"""

import time

import pytest
from conftest import run_once

from repro.api import run as simulate
from repro.perf import BENCHMARKS, run_benchmark

_SPECS = {spec.name: spec for spec in BENCHMARKS}


@pytest.mark.parametrize("name", list(_SPECS))
def test_bench_simulation_throughput(benchmark, name):
    spec = _SPECS[name]
    trace = spec.trace()
    result = run_once(benchmark, simulate, spec.config(), trace)
    assert result.committed_instructions == len(trace)
    print(f"\n{name}: {result.committed_instructions} instructions in {result.cycles} cycles "
          f"(IPC {result.ipc:.3f})")


def test_event_driven_speedup_guard():
    """The cycle-skipping kernel must stay >=2x faster than per-cycle stepping.

    Runs the memory-bound headline benchmark both ways, checks the
    results are identical (the kernel's core invariant), and guards the
    wall-clock ratio.  The observed ratio is ~5-8x, so 2x leaves a wide
    margin against timer noise on shared CI runners.
    """
    spec = _SPECS["baseline-4096"]
    trace = spec.trace()
    config = spec.config()

    def best_of(force_per_cycle, repeats=2):
        best, result = float("inf"), None
        for _ in range(repeats):
            started = time.perf_counter()
            result = simulate(config, trace, force_per_cycle=force_per_cycle)
            best = min(best, time.perf_counter() - started)
        return best, result

    fast_seconds, fast = best_of(False)
    slow_seconds, slow = best_of(True, repeats=1)
    assert fast.to_dict() == slow.to_dict(), "event-driven result diverged from per-cycle"
    ratio = slow_seconds / fast_seconds
    print(f"\nevent-driven {fast_seconds:.3f}s vs per-cycle {slow_seconds:.3f}s "
          f"({ratio:.1f}x)")
    assert ratio >= 2.0, (
        f"event-driven kernel only {ratio:.2f}x faster than force_per_cycle; "
        "the cycle-skipping fast path has regressed"
    )


def test_bench_record_rows_are_machine_readable(tmp_path):
    """repro bench / record.py appends valid JSON rows (smoke, one tiny run)."""
    from repro.perf import append_record, run_benchmarks

    rows = run_benchmarks(["cooo-64-1024-daxpy"], repeats=1)
    out = tmp_path / "BENCH_simulator.json"
    entry = append_record(str(out), rows, note="smoke")
    again = append_record(str(out), rows, note="smoke-2")
    import json

    history = json.loads(out.read_text())
    assert [e["note"] for e in history] == ["smoke", "smoke-2"]
    assert entry["results"][0]["name"] == "cooo-64-1024-daxpy"
    assert entry["results"][0]["sim_cycles_per_sec"] > 0
    assert again["version"] == entry["version"]
