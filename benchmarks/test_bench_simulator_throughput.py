"""Benchmarks of raw simulator throughput (simulated instructions per second).

Not a paper figure: these benchmarks track the cost of simulating each
machine so that regressions in the simulator itself (as opposed to the
modelled machines) are visible in the pytest-benchmark output.
"""

import pytest
from conftest import run_once

from repro import cooo_config, scaled_baseline
from repro.api import run as simulate
from repro.workloads import daxpy

TRACE = daxpy(elements=300)


@pytest.mark.parametrize(
    "name,config",
    [
        ("baseline-128", scaled_baseline(window=128, memory_latency=500)),
        ("baseline-4096", scaled_baseline(window=4096, memory_latency=500)),
        ("cooo-64-1024", cooo_config(iq_size=64, sliq_size=1024, memory_latency=500)),
    ],
)
def test_bench_simulation_throughput(benchmark, name, config):
    result = run_once(benchmark, simulate, config, TRACE)
    assert result.committed_instructions == len(TRACE)
    print(f"\n{name}: {result.committed_instructions} instructions in {result.cycles} cycles "
          f"(IPC {result.ipc:.3f})")
