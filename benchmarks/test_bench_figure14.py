"""Benchmark: regenerate Figure 14 (COoO + SLIQ + late register allocation)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import run_figure14


def test_bench_figure14(benchmark):
    experiment = run_once(
        benchmark,
        run_figure14,
        scale=BENCH_SCALE,
        latencies=(100, 1000),
        virtual_tags=(512, 2048),
        physical_registers=(256, 512),
    )
    print("\n" + experiment.report())

    for latency in (100, 1000):
        base = experiment.value("ipc", latency=latency, config="baseline-128")
        limit = experiment.value("ipc", latency=latency, config="limit-4096")
        few_tags = experiment.value("ipc", latency=latency, config="COoO-vt512-p256")
        many_tags = experiment.value("ipc", latency=latency, config="COoO-vt2048-p512")

        # Paper shape: every combined configuration sits between the
        # buildable baseline and the everything-up-sized limit machine.
        assert few_tags >= 0.9 * base
        assert many_tags <= 1.1 * limit

        # More virtual tags (a larger virtual window) never hurt.
        assert many_tags >= few_tags

    # The benefit of the combined techniques over the baseline stays large as
    # memory latency grows.  (In the paper the gain *increases* with latency;
    # our synthetic kernels are so memory-bound that even a 100-cycle memory
    # already overwhelms the 128-entry baseline, so we only require that the
    # gain does not collapse at 1000 cycles.)
    gain_100 = experiment.value("ipc", latency=100, config="COoO-vt2048-p512") / experiment.value(
        "ipc", latency=100, config="baseline-128"
    )
    gain_1000 = experiment.value("ipc", latency=1000, config="COoO-vt2048-p512") / experiment.value(
        "ipc", latency=1000, config="baseline-128"
    )
    assert gain_1000 > 1.5
    assert gain_1000 > 0.7 * gain_100
