"""Benchmark: regenerate Figure 1 (IPC vs. in-flight instructions and latency)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import run_figure01


def test_bench_figure01(benchmark):
    experiment = run_once(benchmark, run_figure01, scale=BENCH_SCALE, quick=True)
    print("\n" + experiment.report())

    # Paper shape 1: with a small window, memory latency is devastating.
    small_perfect = experiment.value("ipc", window=128, latency="perfect")
    small_slow = experiment.value("ipc", window=128, latency="1000")
    assert small_perfect > 2.5 * small_slow

    # Paper shape 2: a larger window recovers a large part of the loss.
    large_slow = experiment.value("ipc", window=2048, latency="1000")
    assert large_slow > 1.5 * small_slow

    # Perfect-L2 performance is essentially window-insensitive for this suite.
    large_perfect = experiment.value("ipc", window=2048, latency="perfect")
    assert abs(large_perfect - small_perfect) / large_perfect < 0.25
