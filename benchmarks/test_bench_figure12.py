"""Benchmark: regenerate Figure 12 (pseudo-ROB retirement breakdown)."""

import pytest
from conftest import BENCH_SCALE, run_once

from repro.experiments import run_figure12


def test_bench_figure12(benchmark):
    experiment = run_once(benchmark, run_figure12, scale=BENCH_SCALE, quick=True)
    print("\n" + experiment.report())

    categories = (
        "moved",
        "finished",
        "short_latency",
        "finished_load",
        "long_latency_load",
        "store",
    )
    for row in experiment.rows:
        # Every retirement falls in exactly one category.
        assert sum(row[c] for c in categories) == pytest.approx(100.0, abs=1.0)

        # Paper shape: moved instructions are a minority (they only need
        # cheap SLIQ storage), long-latency loads are a small slice of all
        # instructions, and stores roughly match the workloads' store ratio.
        assert 3.0 <= row["moved"] <= 60.0
        assert 2.0 <= row["long_latency_load"] <= 35.0
        assert row["finished"] + row["finished_load"] + row["short_latency"] >= 25.0
        assert 3.0 <= row["store"] <= 25.0
