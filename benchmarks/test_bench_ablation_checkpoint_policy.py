"""Benchmark: checkpoint-placement policy ablation (the paper's future-work knob)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import run_checkpoint_policy_ablation


def test_bench_checkpoint_policy_ablation(benchmark):
    experiment = run_once(benchmark, run_checkpoint_policy_ablation, scale=BENCH_SCALE)
    print("\n" + experiment.report())

    policies = {row["policy"]: row for row in experiment.rows}
    assert set(policies) == {"paper", "every_n", "branch_only", "store_only"}

    paper_ipc = policies["paper"]["ipc"]
    # Every alternative policy still produces a working machine within a
    # reasonable band of the paper heuristic on this suite.
    for name, row in policies.items():
        assert row["ipc"] > 0.5 * paper_ipc, name

    # Placement density differs across policies (that is the point of the
    # ablation): every-N takes the most checkpoints, branch-only the fewest
    # or equal.
    assert policies["every_n"]["checkpoints_created"] >= policies["branch_only"]["checkpoints_created"]
