"""Benchmark: regenerate Figure 10 (SLIQ re-insertion delay sensitivity)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import run_figure10


def test_bench_figure10(benchmark):
    experiment = run_once(
        benchmark,
        run_figure10,
        scale=BENCH_SCALE,
        iq_sizes=(32, 128),
        delays=(1, 4, 12),
    )
    print("\n" + experiment.report())

    # Paper shape: the machine is essentially insensitive to the delay
    # between a load completing and its dependents re-entering the issue
    # queue (the paper reports ~1% for 12 cycles; we allow a looser bound
    # because the scaled-down workloads amplify constant overheads).
    for iq_size in (32, 128):
        fastest = experiment.value("ipc", iq=iq_size, delay=1)
        slowest = experiment.value("ipc", iq=iq_size, delay=12)
        assert slowest >= 0.85 * fastest
