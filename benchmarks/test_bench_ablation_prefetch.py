"""Benchmark: prefetching baseline vs. the out-of-order-commit machine.

The paper's related work discusses prefetching and stream buffers as the
classical way of tolerating memory latency.  This ablation quantifies the
comparison on our suite: a stride prefetcher added to the buildable
128-entry baseline recovers part of the loss on regular streams, but the
COoO machine — which also covers irregular misses and dependent chains —
recovers more, and the two compose.
"""

from conftest import BENCH_SCALE, run_once

from repro.common.config import cooo_config, scaled_baseline
from repro.experiments.runner import ExperimentResult, run_config, suite_ipc, suite_traces


def _run(scale: float) -> ExperimentResult:
    traces = suite_traces(scale)
    experiment = ExperimentResult(
        "ablation-prefetch",
        "stride prefetching vs. out-of-order commit (1000-cycle memory)",
    )

    def add(name, config):
        config.validate()
        ipc = suite_ipc(run_config(config, traces))
        experiment.row(config=name, ipc=round(ipc, 4))
        return ipc

    base = add("baseline-128", scaled_baseline(window=128, memory_latency=1000))

    prefetch_cfg = scaled_baseline(window=128, memory_latency=1000)
    prefetch_cfg.memory.prefetcher = "stride"
    prefetch_cfg.memory.prefetch_degree = 4
    with_prefetch = add("baseline-128 + stride prefetch", prefetch_cfg)

    cooo = add("COoO-64/SLIQ-1024", cooo_config(iq_size=64, sliq_size=1024, memory_latency=1000))

    cooo_prefetch_cfg = cooo_config(iq_size=64, sliq_size=1024, memory_latency=1000)
    cooo_prefetch_cfg.memory.prefetcher = "stride"
    cooo_prefetch_cfg.memory.prefetch_degree = 4
    combined = add("COoO-64/SLIQ-1024 + stride prefetch", cooo_prefetch_cfg)

    experiment.notes.append(
        "prefetching helps the small-window baseline on regular streams, the COoO window"
        " mechanism helps more (it also covers irregular misses), and the two compose"
    )
    experiment.prefetch_gain = with_prefetch / base  # type: ignore[attr-defined]
    experiment.cooo_gain = cooo / base  # type: ignore[attr-defined]
    experiment.combined_gain = combined / base  # type: ignore[attr-defined]
    return experiment


def test_bench_ablation_prefetch(benchmark):
    experiment = run_once(benchmark, _run, BENCH_SCALE)
    print("\n" + experiment.report())

    # Prefetching helps the small baseline ...
    assert experiment.prefetch_gain > 1.1
    # ... but the window mechanism helps more on this suite ...
    assert experiment.cooo_gain > experiment.prefetch_gain
    # ... and combining both is at least as good as the COoO machine alone.
    assert experiment.combined_gain >= 0.95 * experiment.cooo_gain
