#!/usr/bin/env python
"""Record simulator throughput numbers into BENCH_simulator.json.

Thin wrapper over :mod:`repro.perf` so the benchmarks can be recorded
without the CLI installed::

    python benchmarks/record.py                # run + append all benchmarks
    python benchmarks/record.py --per-cycle    # time the per-cycle debug kernel
    python benchmarks/record.py --no-record    # print only

``repro bench`` is the same driver behind the CLI.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.perf import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
