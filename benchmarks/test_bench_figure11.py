"""Benchmark: regenerate Figure 11 (average in-flight instructions)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import run_figure11


def test_bench_figure11(benchmark):
    experiment = run_once(benchmark, run_figure11, scale=BENCH_SCALE, quick=True)
    print("\n" + experiment.report())

    base128 = experiment.value("in_flight", config="baseline-128")
    base4096 = experiment.value("in_flight", config="baseline-4096")
    smallest = experiment.value("in_flight", config="COoO-32/SLIQ-512")
    largest = experiment.value("in_flight", config="COoO-128/SLIQ-2048")

    # The baseline window is bounded by its ROB.
    assert base128 <= 128

    # Paper shape: with only 8 checkpoints the COoO machine sustains far
    # more in-flight instructions than the buildable baseline, in the
    # hundreds-to-thousands range, growing with the SLIQ size.
    assert smallest > 3 * base128
    assert largest >= smallest
    assert largest > 500

    # The unbuildable baseline also reaches a huge window (sanity check).
    assert base4096 > 5 * base128
