"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table/figure of the paper via the
experiment modules in :mod:`repro.experiments` and then checks the
qualitative shape the paper reports.  ``BENCH_SCALE`` trades fidelity
against wall-clock time; raise it (e.g. to 1.0) for larger workloads.
"""

from __future__ import annotations

import os
import sys

# Allow running the benchmarks from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: Suite scale used by every benchmark (overridable via the environment).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
