"""Benchmark: regenerate Figure 13 (sensitivity to the number of checkpoints)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import run_figure13


def test_bench_figure13(benchmark):
    experiment = run_once(
        benchmark, run_figure13, scale=BENCH_SCALE, checkpoints=(4, 8, 32)
    )
    print("\n" + experiment.report())

    limit = experiment.value("ipc", config="limit-4096")
    four = experiment.value("ipc", config="COoO-4ckpt")
    eight = experiment.value("ipc", config="COoO-8ckpt")
    many = experiment.value("ipc", config="COoO-32ckpt")

    # Paper shape: more checkpoints help (finer-grained resource recycling
    # and shorter rollback distance), with diminishing returns; even a
    # handful of checkpoints lands within a modest factor of the
    # unbuildable 4096-entry-ROB limit machine.
    assert eight >= four * 0.98
    assert many >= eight * 0.98
    assert many >= 0.80 * limit
    assert four >= 0.45 * limit
