"""Benchmark guard: loading a saved trace must beat regenerating it.

The whole point of trace file I/O (:mod:`repro.trace.io`) is that an
expensive trace is generated once and replayed across sweeps.  That
only holds if loading is actually faster than regenerating, so this
benchmark builds the full default suite at the default figure scale
(``DEFAULT_SCALE``), saves it, and requires load-from-file to be at
least 2x faster than generation.

The speedup comes from the deduplicating format: traces are unrolled
loops, so most dynamic instructions repeat an earlier record exactly
and the loader constructs only the distinct ones (sharing the frozen
``Instruction`` instances), while generation constructs every dynamic
instruction from scratch.

Rounds are interleaved (generate, load, generate, load, ...) and each
side keeps its best, so a scheduler hiccup hits both alike.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.experiments.runner import DEFAULT_SCALE
from repro.trace.io import load_trace, save_trace, trace_info
from repro.workloads.registry import get_suite

#: Required speedup of cached loading over regeneration.
MIN_SPEEDUP = 2.0
ROUNDS = 5
SUITE = "spec2000fp_like"


def _generate():
    return get_suite(SUITE).build(DEFAULT_SCALE)


def _interleaved_best(paths, rounds: int = ROUNDS):
    """Best-of-N wall clock for suite generation and suite loading."""
    best_generate = best_load = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        generated = _generate()
        best_generate = min(best_generate, time.perf_counter() - start)
        start = time.perf_counter()
        loaded = {name: load_trace(path) for name, path in paths.items()}
        best_load = min(best_load, time.perf_counter() - start)
    return best_generate, best_load, generated, loaded


def test_bench_load_beats_regeneration(benchmark, tmp_path):
    traces = _generate()
    paths = {
        name: save_trace(trace, tmp_path / f"{name}.trace.gz")
        for name, trace in traces.items()
    }
    t_generate, t_load, generated, loaded = run_once(
        benchmark, lambda: _interleaved_best(paths)
    )
    # Fidelity half of the guard: the fast path must load the same trace.
    for name in generated:
        assert loaded[name].to_jsonl() == generated[name].to_jsonl()
    assert t_load * MIN_SPEEDUP <= t_generate, (
        f"loading the {SUITE} suite took {t_load:.4f}s vs. {t_generate:.4f}s to "
        f"regenerate (< {MIN_SPEEDUP:.0f}x speedup); the trace cache is not "
        f"pulling its weight"
    )
    total = sum(len(trace) for trace in generated.values())
    distinct = sum(trace_info(path)["distinct_instructions"] for path in paths.values())
    print(
        f"\nload {t_load:.4f}s vs generate {t_generate:.4f}s "
        f"({t_generate / t_load:.1f}x), {total} instructions "
        f"({100 * distinct / total:.0f}% distinct)"
    )
