"""Benchmark guard: the probe machinery must not tax the fast path.

The occupancy accounting that used to be inlined in ``PipelineBase``
now lives in the default :class:`~repro.core.probes.OccupancyProbe`, so
a default-constructed pipeline does the same per-instruction work the
seed simulator did (plus one bound-hook indirection per event).  Two
invariants keep that honest:

* **no-probe fast path** — a pipeline with zero probes does strictly
  less work than the seed's inlined accounting, so it must not be more
  than 5% slower than the default (seed-equivalent) configuration;
* **event dispatch** — attaching a probe that overrides *no* events
  binds no hooks and must therefore cost nothing measurable either.

Rounds are interleaved (default, bare, default, bare, ...) and each
side keeps its best, so a scheduler hiccup hits both configurations
alike instead of biasing one.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.api import Simulation
from repro.common.config import cooo_config, scaled_baseline
from repro.core.probes import Probe
from repro.workloads import daxpy

#: Allowed slowdown of the leaner configuration vs. the default path.
TOLERANCE = 1.05
ROUNDS = 5


def _trace():
    return daxpy(elements=500)


def _interleaved_best(sim_a: Simulation, sim_b: Simulation, trace, rounds: int = ROUNDS):
    """Best-of-N wall clock for both simulations, rounds interleaved."""
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        sim_a.run(trace)
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        sim_b.run(trace)
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def test_bench_no_probe_fast_path_vs_default(benchmark):
    """probes=() must be at least as fast as the seed-equivalent default."""
    config = scaled_baseline(window=256, memory_latency=200)
    trace = _trace()
    default = Simulation(config)
    bare = Simulation(config, default_probes=False)
    # Structural half of the guard: a bare pipeline binds no hooks at all.
    pipeline = bare.pipeline(trace)
    assert pipeline.probes == ()
    assert pipeline._hooks_dispatch == [] and pipeline._hooks_cycle == []
    t_default, t_bare = run_once(
        benchmark, lambda: _interleaved_best(default, bare, trace)
    )
    assert t_bare <= TOLERANCE * t_default, (
        f"no-probe fast path took {t_bare:.4f}s vs. default {t_default:.4f}s "
        f"(> {TOLERANCE:.0%}); event emission is taxing the bare pipeline"
    )
    print(f"\nno-probe {t_bare:.4f}s vs default {t_default:.4f}s "
          f"({t_bare / t_default:.2%} of default)")


def test_bench_telemetry_disabled_path_is_free(benchmark):
    """telemetry=None must leave the hot path untouched.

    The opt-in telemetry layer only acts when a session is passed: no
    probes attach, no clock is read, and the run body is wrapped in a
    nullcontext.  Guard that structurally and with the same 5% timing
    tolerance as the other fast-path invariants.
    """
    config = scaled_baseline(window=256, memory_latency=200)
    trace = _trace()
    default = Simulation(config)
    disabled = Simulation(config, telemetry=None)
    pipeline = disabled.pipeline(trace)
    assert len(pipeline.probes) == 1  # occupancy only; telemetry added nothing
    t_default, t_disabled = run_once(
        benchmark, lambda: _interleaved_best(default, disabled, trace)
    )
    assert t_disabled <= TOLERANCE * t_default, (
        f"telemetry-disabled run took {t_disabled:.4f}s vs. default "
        f"{t_default:.4f}s (> {TOLERANCE:.0%}); telemetry=None must be free"
    )
    print(f"\ntelemetry-off {t_disabled:.4f}s vs default {t_default:.4f}s "
          f"({t_disabled / t_default:.2%} of default)")


def test_bench_inert_probe_costs_nothing(benchmark):
    """A probe overriding no events must bind no hooks (cooo machine)."""
    config = cooo_config(iq_size=64, sliq_size=512, checkpoints=4, memory_latency=200)
    trace = _trace()
    default = Simulation(config)
    inert = Simulation(config, probes=[Probe()])
    pipeline = inert.pipeline(trace)
    assert len(pipeline.probes) == 2  # occupancy + inert
    assert len(pipeline._hooks_dispatch) == 1  # only occupancy bound a hook
    t_default, t_inert = run_once(
        benchmark, lambda: _interleaved_best(default, inert, trace)
    )
    assert t_inert <= TOLERANCE * t_default, (
        f"inert probe took {t_inert:.4f}s vs. default {t_default:.4f}s; "
        f"unbound events must not be dispatched"
    )
    print(f"\ninert-probe {t_inert:.4f}s vs default {t_default:.4f}s "
          f"({t_inert / t_default:.2%} of default)")
