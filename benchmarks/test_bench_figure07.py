"""Benchmark: regenerate Figure 7 (live vs. in-flight instruction distribution)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import run_figure07


def test_bench_figure07(benchmark):
    experiment = run_once(
        benchmark, run_figure07, scale=BENCH_SCALE, window=2048, memory_latency=500
    )
    print("\n" + experiment.report())

    mean_row = experiment.find_row(percentile="mean")
    assert mean_row is not None

    # Paper shape: most in-flight instructions are NOT live — they have
    # already executed (or are blocked) and only wait to commit.
    assert mean_row["live"] < 0.6 * mean_row["in_flight"]

    # The in-flight percentiles are non-decreasing and reach several hundred
    # instructions for a 2048-entry window at 500-cycle latency.
    p50 = experiment.value("in_flight", percentile="50%")
    p90 = experiment.value("in_flight", percentile="90%")
    assert p90 >= p50
    assert p90 > 200
