"""Benchmark: regenerate Figure 9 (the paper's main performance result)."""

from conftest import BENCH_SCALE, run_once

from repro.experiments import run_figure09


def test_bench_figure09(benchmark):
    experiment = run_once(benchmark, run_figure09, scale=BENCH_SCALE, quick=True)
    print("\n" + experiment.report())

    base128 = experiment.value("ipc", config="baseline-128")
    limit = experiment.value("ipc", config="baseline-4096")
    smallest = experiment.value("ipc", config="COoO-32/SLIQ-512")
    largest = experiment.value("ipc", config="COoO-128/SLIQ-2048")

    # Paper shape: the unbuildable 4096-entry baseline is far above the
    # buildable 128-entry one on memory-bound FP code.
    assert limit > 2 * base128

    # Every COoO point beats the buildable baseline by a large margin
    # (the paper reports ~110% for the smallest configuration).
    assert smallest > 1.8 * base128

    # The largest COoO point lands close to the unbuildable limit
    # (the paper reports a ~10% gap).
    assert largest > 0.85 * limit

    # Bigger COoO configurations are at least as fast as smaller ones.
    assert largest >= smallest
