"""Benchmark guard for sampled execution on XL-scale traces.

The ISSUE-5 acceptance contract: a sampled run of an XL trace must be at
least 10x faster wall-clock than the exact event-driven run of the same
trace, with |IPC error| <= 5% on the stationary benchmark.  The specs
come from :data:`repro.perf.XL_BENCHMARKS` so ``repro bench``, the CI
gate and this guard all measure the same thing.

The margins are wide in practice (~15x and <1% error on the streaming
benchmark), so the guard has plenty of headroom against CI timer noise.
"""

import time

import pytest

from repro.api import run as simulate
from repro.perf import XL_BENCHMARKS, compare_latest, run_benchmarks

_SPECS = {spec.name: spec for spec in XL_BENCHMARKS}


def _timed(config, trace, sampling=None):
    started = time.perf_counter()
    result = simulate(config, trace, sampling=sampling)
    return time.perf_counter() - started, result


def test_sampled_xl_speedup_and_accuracy_guard():
    """Sampled >= 10x faster than exact on the XL trace, |IPC error| <= 5%."""
    exact_spec = _SPECS["baseline-daxpy-xl"]
    sampled_spec = _SPECS["baseline-daxpy-xl-sampled"]
    trace = exact_spec.trace()
    config = exact_spec.config()

    exact_seconds, exact = _timed(config, trace)
    sampled_seconds, sampled = _timed(config, trace, sampling=sampled_spec.sampling)

    assert sampled.sampled and len(sampled.windows) >= 3
    speedup = exact_seconds / sampled_seconds
    error = abs(sampled.ipc - exact.ipc) / exact.ipc
    print(
        f"\nbaseline-daxpy-xl: exact {exact_seconds:.2f}s ipc {exact.ipc:.4f} | "
        f"sampled {sampled_seconds:.2f}s ipc {sampled.ipc:.4f}"
        f"+-{sampled.ipc_ci95:.4f} | speedup {speedup:.1f}x error {100 * error:.2f}%"
    )
    assert speedup >= 10.0, f"sampled speedup {speedup:.1f}x below the 10x guard"
    assert error <= 0.05, f"sampled IPC error {100 * error:.1f}% above the 5% guard"


def test_sampled_xl_branchy_within_confidence_interval():
    """Branch-storm XL: the exact IPC lands inside the sampled 95% CI.

    gshare self-trains only under detailed execution, so the branchy
    plan (long warmup) trades speedup for fidelity; the reported CI must
    cover the exact value.
    """
    exact_spec = _SPECS["baseline-branches-xl"]
    sampled_spec = _SPECS["baseline-branches-xl-sampled"]
    trace = exact_spec.trace()
    config = exact_spec.config()

    exact_seconds, exact = _timed(config, trace)
    sampled_seconds, sampled = _timed(config, trace, sampling=sampled_spec.sampling)

    low, high = sampled.ipc_interval
    print(
        f"\nbaseline-branches-xl: exact {exact.ipc:.4f} in {exact_seconds:.2f}s | "
        f"sampled [{low:.4f}, {high:.4f}] in {sampled_seconds:.2f}s "
        f"(speedup {exact_seconds / sampled_seconds:.1f}x)"
    )
    assert sampled.ipc_ci95 > 0
    assert low <= exact.ipc <= high
    assert exact_seconds / sampled_seconds >= 2.0


def test_bench_compare_gate(tmp_path, capsys):
    """repro bench --compare flags >25% wall-clock regressions, nonzero exit."""
    import json

    path = tmp_path / "bench.json"

    def record(seconds_by_name):
        history = json.loads(path.read_text()) if path.exists() else []
        history.append(
            {
                "timestamp": f"t{len(history)}",
                "note": "synthetic",
                "results": [
                    {"name": name, "seconds": seconds}
                    for name, seconds in seconds_by_name.items()
                ],
            }
        )
        path.write_text(json.dumps(history))

    record({"a": 1.0, "b": 2.0})
    record({"a": 1.1, "b": 2.1})  # < 25% slower: clean
    assert compare_latest(str(path)) == 0
    assert "no benchmark regressed" in capsys.readouterr().out

    record({"a": 1.6, "b": 2.0})  # a regressed 45% vs the 1.1 entry
    assert compare_latest(str(path)) == 1
    assert "REGRESSION" in capsys.readouterr().out

    # Fewer than two entries (or unreadable) is a gate failure, not a pass.
    short = tmp_path / "short.json"
    short.write_text(json.dumps([{"timestamp": "t", "results": []}]))
    assert compare_latest(str(short)) == 2
    assert compare_latest(str(tmp_path / "missing.json")) == 2


def test_sampled_benchmark_rows_carry_plan_metadata():
    """run_benchmarks rows for sampled specs record the plan and CI."""
    rows = run_benchmarks(["baseline-daxpy-xl-sampled"], repeats=1)
    (row,) = rows
    assert row["sampling"] == _SPECS["baseline-daxpy-xl-sampled"].sampling.to_dict()
    assert row["trace_instructions"] == 210_003
    assert "ipc_ci95" in row


def test_bench_compare_ci_accuracy_gate(tmp_path, capsys):
    """--compare also fails when a sampled CI half-width grows past 2x."""
    import json

    path = tmp_path / "bench.json"

    def record(rows):
        history = json.loads(path.read_text()) if path.exists() else []
        history.append(
            {"timestamp": f"t{len(history)}", "note": "synthetic", "results": rows}
        )
        path.write_text(json.dumps(history))

    sampled = {"name": "xl-sampled", "seconds": 1.0, "ipc_ci95": 0.030}
    exact = {"name": "xl-exact", "seconds": 5.0}
    record([sampled, exact])

    # CI width below the 2x limit (and wall clock flat): clean.
    record([dict(sampled, ipc_ci95=0.055), exact])
    assert compare_latest(str(path)) == 0
    out = capsys.readouterr().out
    assert "ACCURACY" not in out
    assert "CI widths within 2x" in out

    # CI width ballooned past 2x even though the run got *faster*.
    record([dict(sampled, seconds=0.5, ipc_ci95=0.120), exact])
    assert compare_latest(str(path)) == 1
    assert "ACCURACY REGRESSION" in capsys.readouterr().out

    # A zero earlier width has nothing meaningful to ratio: never flagged.
    record([dict(sampled, ipc_ci95=0.0), exact])
    record([dict(sampled, ipc_ci95=0.4), exact])
    assert compare_latest(str(path)) == 0
    assert "ACCURACY" not in capsys.readouterr().out
