"""Benchmark guard for parallel sampled windows + warm-state checkpoints.

The acceptance contract of the parallel-sampling PR, in two halves:

* **Correctness, always**: ``sample_jobs=4`` with a checkpoint directory
  produces a ``SimulationResult`` bit-identical to the serial sampled
  driver on the XL daxpy benchmark — same IPC, same CI, same windows,
  same every-counter.  Bit-identity also means the CI-containment
  property guarded by ``test_bench_sampling`` transfers to the parallel
  path unchanged.  This half runs everywhere, including single-core CI
  runners.
* **Speed, where parallelism exists**: with the warm-state checkpoint
  built (the XL-sweep steady state — N machines share one functional
  pass, so the marginal cost of a sampled run is its detailed windows),
  fanning the windows across 4 workers is >=2x faster than the serial
  sampled run.  Window execution is pure CPU work, so the guard is
  skipped when the host has fewer than 4 CPUs — it would only measure
  timeslicing, not the fan-out.

The specs come from :data:`repro.perf.XL_BENCHMARKS`
(``baseline-daxpy-xl-par4``), so ``repro bench``, CI and this guard all
measure the same configuration.
"""

import os
import time

import pytest

from repro.api import run as simulate
from repro.core.sampling import warm_checkpoint
from repro.perf import XL_BENCHMARKS

_SPECS = {spec.name: spec for spec in XL_BENCHMARKS}

PARALLEL_SPEC = _SPECS["baseline-daxpy-xl-par4"]
SERIAL_SPEC = _SPECS["baseline-daxpy-xl-sampled"]


def test_par4_spec_is_registered():
    """repro bench / record.py can record the parallel benchmark."""
    assert PARALLEL_SPEC.sample_jobs == 4
    assert PARALLEL_SPEC.sampling == SERIAL_SPEC.sampling


def test_parallel_bit_identical_to_serial(tmp_path):
    """4-worker sampled run == serial sampled run, bit for bit."""
    trace = PARALLEL_SPEC.trace()
    config = PARALLEL_SPEC.config()
    serial = simulate(config, trace, sampling=PARALLEL_SPEC.sampling)
    parallel = simulate(
        config,
        trace,
        sampling=PARALLEL_SPEC.sampling,
        sample_jobs=4,
        checkpoint_dir=tmp_path,
    )
    assert parallel.sampled and len(parallel.windows) >= 3
    assert parallel.to_dict() == serial.to_dict(), (
        "parallel sampled result diverged from serial on baseline-daxpy-xl"
    )
    # A second run must adopt the stored checkpoint and still match.
    warmed = simulate(
        config,
        trace,
        sampling=PARALLEL_SPEC.sampling,
        sample_jobs=4,
        checkpoint_dir=tmp_path,
    )
    assert warmed.to_dict() == serial.to_dict()


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="window fan-out needs >=4 CPUs to measure a real speedup",
)
def test_parallel_speedup_guard(tmp_path):
    """Warm-checkpoint + 4 workers >=2x faster than the serial sampled run."""
    trace = PARALLEL_SPEC.trace()
    config = PARALLEL_SPEC.config()
    plan = PARALLEL_SPEC.sampling
    # Steady state: the checkpoint exists (built once per XL sweep) and
    # the trace digest is cached on the trace object.
    warm_checkpoint(config, trace, plan, tmp_path)

    def best_of(runs, fn):
        seconds = []
        for _ in range(runs):
            started = time.perf_counter()
            fn()
            seconds.append(time.perf_counter() - started)
        return min(seconds)

    serial_seconds = best_of(
        3, lambda: simulate(config, trace, sampling=plan)
    )
    parallel_seconds = best_of(
        3,
        lambda: simulate(
            config, trace, sampling=plan, sample_jobs=4, checkpoint_dir=tmp_path
        ),
    )
    speedup = serial_seconds / parallel_seconds
    print(
        f"\nbaseline-daxpy-xl-par4: serial {serial_seconds:.3f}s | "
        f"parallel(4) {parallel_seconds:.3f}s | speedup {speedup:.2f}x"
    )
    assert speedup >= 2.0, (
        f"parallel sampled speedup {speedup:.2f}x below the 2x guard"
    )
