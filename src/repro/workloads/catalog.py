"""Registration of the built-in workloads.

Each shipped kernel is registered as a parameterized
:class:`~repro.workloads.registry.WorkloadSpec`: ``size`` is the
generator's primary size knob (elements, iterations, hops — the same
convention ``repro simulate --size`` always used) and ``knobs`` are the
remaining tunables with their defaults.  The CLI, :mod:`repro.api` and
the suites all resolve these by name; registering a new workload
anywhere makes it available everywhere.
"""

from __future__ import annotations

from ..trace.trace import Trace
from . import integer, numerical
from .registry import register_workload


@register_workload(
    "daxpy",
    description="streaming y[i] += a*x[i]: independent FP mul-adds, two loads + one store per element",
    base_size=1000,
)
def daxpy(size: int) -> Trace:
    return numerical.daxpy(elements=size)


@register_workload(
    "triad",
    description="STREAM triad a[i] = b[i] + s*c[i]: pure bandwidth-bound streaming, no reuse",
    base_size=1000,
)
def triad(size: int) -> Trace:
    return numerical.stream_triad(elements=size)


@register_workload(
    "stencil3",
    description="3-point stencil over a vector: strided loads with neighbor reuse, mild dependencies",
    base_size=1000,
)
def stencil3(size: int) -> Trace:
    return numerical.stencil3(elements=size)


@register_workload(
    "reduction",
    description="serial FP sum reduction: one long dependence chain, exposes issue-queue blocking",
    base_size=1000,
)
def reduction(size: int) -> Trace:
    return numerical.reduction(elements=size)


@register_workload(
    "gather",
    description="random indirect loads over an 8 MiB table: near-100% cache misses, memory-level parallelism",
    base_size=1000,
    knobs={"table_elements": 1 << 20, "seed": 12345},
)
def gather(size: int, table_elements: int = 1 << 20, seed: int = 12345) -> Trace:
    return numerical.random_gather(elements=size, table_elements=table_elements, seed=seed)


@register_workload(
    "matvec",
    description="dense matrix-vector product: row-wise streaming crossed with a per-row reduction",
    base_size=1000,
    knobs={"cols": 32},
)
def matvec(size: int, cols: int = 32) -> Trace:
    return numerical.matvec(rows=max(2, size // cols), cols=cols)


@register_workload(
    "blocked",
    description="cache-blocked daxpy passes: high reuse, low miss rate, compute/memory balanced",
    base_size=1000,
    knobs={"block_elements": 512, "passes": 2},
)
def blocked(size: int, block_elements: int = 512, passes: int = 2) -> Trace:
    return numerical.blocked_daxpy(elements=size, block_elements=block_elements, passes=passes)


@register_workload(
    "fp_compute",
    description="FP-heavy loop with almost no memory traffic: bounded by FP unit latency/count",
    base_size=1000,
    knobs={"chain_length": 4},
)
def fp_compute(size: int, chain_length: int = 4) -> Trace:
    return numerical.fp_compute_bound(iterations=size, chain_length=chain_length)


@register_workload(
    "pointer_chase",
    description="linked-list traversal: serially dependent loads, defeats out-of-order overlap",
    base_size=1000,
    knobs={"nodes": 1 << 18, "seed": 7, "work_per_hop": 2},
)
def pointer_chase(
    size: int, nodes: int = 1 << 18, seed: int = 7, work_per_hop: int = 2
) -> Trace:
    return integer.pointer_chase(hops=size, nodes=nodes, seed=seed, work_per_hop=work_per_hop)


@register_workload(
    "multi_chase",
    description="independent pointer chains round-robin: serial per chain, overlappable across chains",
    base_size=1000,
    knobs={"chains": 4, "nodes": 1 << 18, "seed": 17},
)
def multi_chase(size: int, chains: int = 4, nodes: int = 1 << 18, seed: int = 17) -> Trace:
    return integer.multi_pointer_chase(hops=size, chains=chains, nodes=nodes, seed=seed)


@register_workload(
    "branchy_int",
    description="integer loop with data-dependent branches: stresses prediction and rollback",
    base_size=1000,
    knobs={"taken_probability": 0.5, "seed": 11},
)
def branchy_int(size: int, taken_probability: float = 0.5, seed: int = 11) -> Trace:
    return integer.branchy_integer(iterations=size, taken_probability=taken_probability, seed=seed)


@register_workload(
    "dense_branches",
    description="several coin-flip branches per iteration: constant front-end restarts, rollback-bound",
    base_size=1000,
    knobs={"branches_per_iteration": 3, "taken_probability": 0.5, "seed": 31},
)
def dense_branches(
    size: int,
    branches_per_iteration: int = 3,
    taken_probability: float = 0.5,
    seed: int = 31,
) -> Trace:
    return integer.dense_branches(
        iterations=size,
        branches_per_iteration=branches_per_iteration,
        taken_probability=taken_probability,
        seed=seed,
    )


@register_workload(
    "mixed",
    description="interleaved integer and FP work with moderate branching: a middle-of-the-road blend",
    base_size=1000,
    knobs={"seed": 23},
)
def mixed(size: int, seed: int = 23) -> Trace:
    return integer.mixed_int_fp(iterations=size, seed=seed)
