"""A tiny assembler-like helper for constructing execution traces.

Workload generators use :class:`TraceBuilder` to emit dynamic instruction
streams without having to spell out :class:`Instruction` constructor
arguments everywhere.  The builder tracks the program counter, checks
register operands and records the kernel label on every instruction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..isa import registers
from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass
from ..trace.trace import Trace

#: Size in bytes of one "instruction" for pc bookkeeping purposes.
INSTRUCTION_BYTES = 4


class TraceBuilder:
    """Accumulates instructions and produces a :class:`Trace`."""

    def __init__(self, name: str = "kernel", start_pc: int = 0x1000) -> None:
        self.name = name
        self._pc = start_pc
        self._instructions: List[Instruction] = []

    # -- low-level emission ------------------------------------------------
    def emit(
        self,
        op: OpClass,
        dest: Optional[int] = None,
        srcs: Sequence[int] = (),
        mem_addr: Optional[int] = None,
        mem_size: int = 8,
        branch_taken: bool = False,
        branch_target: Optional[int] = None,
        raises_exception: bool = False,
        pc: Optional[int] = None,
    ) -> Instruction:
        """Append one instruction and return it."""
        instr = Instruction(
            pc=pc if pc is not None else self._pc,
            op=op,
            dest=dest,
            srcs=tuple(srcs),
            mem_addr=mem_addr,
            mem_size=mem_size,
            branch_taken=branch_taken,
            branch_target=branch_target,
            raises_exception=raises_exception,
            label=self.name,
        )
        self._instructions.append(instr)
        if pc is None:
            self._pc += INSTRUCTION_BYTES
        return instr

    # -- arithmetic ---------------------------------------------------------
    def int_op(self, dest: int, *srcs: int) -> Instruction:
        """Integer ALU operation (add/sub/logic)."""
        return self.emit(OpClass.INT_ALU, dest=dest, srcs=srcs)

    def int_mul(self, dest: int, *srcs: int) -> Instruction:
        return self.emit(OpClass.INT_MUL, dest=dest, srcs=srcs)

    def int_div(self, dest: int, *srcs: int) -> Instruction:
        return self.emit(OpClass.INT_DIV, dest=dest, srcs=srcs)

    def fp_add(self, dest: int, *srcs: int) -> Instruction:
        return self.emit(OpClass.FP_ALU, dest=dest, srcs=srcs)

    def fp_mul(self, dest: int, *srcs: int) -> Instruction:
        return self.emit(OpClass.FP_MUL, dest=dest, srcs=srcs)

    def fp_div(self, dest: int, *srcs: int) -> Instruction:
        return self.emit(OpClass.FP_DIV, dest=dest, srcs=srcs)

    # -- memory ---------------------------------------------------------------
    def load(self, dest: int, addr: int, addr_reg: Optional[int] = None) -> Instruction:
        """Load into an integer or FP register depending on ``dest``."""
        op = OpClass.FP_LOAD if registers.is_fp(dest) else OpClass.LOAD
        srcs = (addr_reg,) if addr_reg is not None else ()
        return self.emit(op, dest=dest, srcs=srcs, mem_addr=addr)

    def store(self, addr: int, src: int, addr_reg: Optional[int] = None) -> Instruction:
        """Store ``src`` to ``addr``; FP stores are steered to the FP queue."""
        op = OpClass.FP_STORE if registers.is_fp(src) else OpClass.STORE
        srcs = (src,) if addr_reg is None else (src, addr_reg)
        return self.emit(op, srcs=srcs, mem_addr=addr)

    # -- control flow -----------------------------------------------------------
    def branch(
        self,
        taken: bool,
        target: Optional[int] = None,
        srcs: Sequence[int] = (),
    ) -> Instruction:
        """A conditional branch; ``target`` defaults to an earlier pc when taken."""
        branch_target = target
        if taken and branch_target is None:
            branch_target = max(0x1000, self._pc - 16 * INSTRUCTION_BYTES)
        return self.emit(
            OpClass.BRANCH,
            srcs=tuple(srcs),
            branch_taken=taken,
            branch_target=branch_target,
        )

    def nop(self) -> Instruction:
        return self.emit(OpClass.NOP)

    # -- finalisation -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instructions)

    @property
    def pc(self) -> int:
        """The pc that the next emitted instruction will carry."""
        return self._pc

    def set_pc(self, pc: int) -> None:
        """Force the next emission pc (used when modelling loop back-edges)."""
        self._pc = pc

    def build(self) -> Trace:
        """Produce the immutable trace."""
        return Trace(self._instructions, name=self.name)
