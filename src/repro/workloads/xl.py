"""XL-scale suites: the base suites at 50–100x dynamic instruction counts.

The paper's machines exist to hide *kilocycle* memory latencies behind
*thousands* of in-flight instructions — regimes that only settle into
steady state over hundreds of thousands of dynamic instructions.  The
base suites top out at a few thousand instructions per member (sized for
exact cycle-level simulation); these XL derivatives scale every member's
base size by 50–100x, which is impractical to simulate exactly but
routine under sampled execution (``--sample`` /
``repro.api.run(..., sampling=SamplingPlan(...))``).

Each XL suite reuses the *same registered generators* as its base suite
(same per-member names, same knobs, same determinism guarantees), so an
XL member at scale ``s`` is bit-identical to the base member at scale
``s * factor`` — only the default instruction budget changes.  Sweep
cache keys include the suite name, so XL results never collide with
base-suite results.

``XL_SAMPLING`` is the suggested starting plan for these sizes: windows
long enough to span several checkpoint-commit quanta of the cooo
machine, periods sparse enough for an order-of-magnitude speedup.
"""

from __future__ import annotations

from ..common.config import SamplingPlan
from .registry import get_suite, register_suite
from .suite import Suite, SuiteMember

#: Suggested sampling plan for XL-sized traces (see module docstring):
#: windows long enough to span several checkpoint-commit quanta of the
#: cooo machine, warmup long enough for gshare to self-train on branchy
#: members.  Streaming FP members tolerate far thinner windows (see
#: ``repro.perf.BENCH_SAMPLING``).
XL_SAMPLING = SamplingPlan(period=50_000, window=6_000, warmup=4_000)


def _scaled_members(base: Suite, factor: int):
    """The base suite's members with ``factor``-times instruction budgets."""
    return [
        SuiteMember(member.name, member.generator, member.base_size * factor)
        for member in base.members
    ]


@register_suite
def spec2000fp_xl_suite() -> Suite:
    """The FP evaluation suite at 60x: ~200k dynamic instructions per member."""
    base = get_suite("spec2000fp_like")
    return Suite(
        "spec2000fp-xl",
        description="spec2000fp_like at 60x instruction budgets (~200k dynamic "
        "instructions per member); practical under sampled execution only",
        members=_scaled_members(base, 60),
    )


@register_suite
def chase_xl_suite() -> Suite:
    """The pointer-chase suite at 75x: ~180k dynamic instructions per member."""
    base = get_suite("pointer-chase")
    return Suite(
        "chase-xl",
        description="pointer-chase at 75x instruction budgets: serial kilocycle "
        "miss chains long enough to reach window steady state",
        members=_scaled_members(base, 75),
    )


@register_suite
def server_mix_xl_suite() -> Suite:
    """The server-mix scenario suite at 50x: ~180k dynamic instructions per member."""
    base = get_suite("server-mix")
    return Suite(
        "server-mix-xl",
        description="server-mix at 50x instruction budgets: enough service "
        "cycles for phase behaviour to recur (sampling's hardest case — "
        "see the architecture docs on phased-workload bias)",
        members=_scaled_members(base, 50),
    )
