"""Synthetic numerical kernels standing in for SPEC2000fp.

The paper evaluates on SPEC2000fp, whose defining property (for this
study) is that most performance is lost to loads missing in L2 while
branch prediction is nearly perfect.  The kernels below reproduce that
regime: streaming and strided floating-point loops over data sets larger
than the cache hierarchy, with loop-closing branches that any history
predictor learns quickly, and dependence structure ranging from fully
parallel (daxpy, triad) to serial reductions.

Every generator is deterministic given its arguments, so experiments are
reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Optional

from ..isa import registers as regs
from ..trace.trace import Trace
from .builder import TraceBuilder

#: Double-precision element size used by all kernels.
ELEMENT_BYTES = 8

#: Base addresses for up to four arrays, spaced far apart so that arrays
#: never alias in the cache models.
ARRAY_BASES = (0x1000_0000, 0x2000_0000, 0x3000_0000, 0x4000_0000)

# Register conventions shared by the kernels.
_INDEX = regs.int_reg(1)
_LIMIT = regs.int_reg(2)
_PTR_A = regs.int_reg(3)
_PTR_B = regs.int_reg(4)
_PTR_C = regs.int_reg(5)
_TMP_INT = regs.int_reg(6)

_SCALAR = regs.fp_reg(0)
_ACC = regs.fp_reg(1)


def _loop_header(builder: TraceBuilder) -> int:
    """Emit loop-invariant setup and return the pc of the loop start."""
    builder.int_op(_INDEX)
    builder.int_op(_LIMIT)
    builder.fp_add(_SCALAR)
    return builder.pc


def daxpy(elements: int = 2048, name: str = "daxpy") -> Trace:
    """``y[i] = a * x[i] + y[i]`` — streaming, fully parallel iterations."""
    builder = TraceBuilder(name=name)
    loop_pc = _loop_header(builder)
    x_base, y_base = ARRAY_BASES[0], ARRAY_BASES[1]
    t0, t1, t2 = regs.fp_reg(2), regs.fp_reg(3), regs.fp_reg(4)
    for i in range(elements):
        builder.set_pc(loop_pc)
        addr_x = x_base + i * ELEMENT_BYTES
        addr_y = y_base + i * ELEMENT_BYTES
        builder.load(t0, addr_x, addr_reg=_INDEX)
        builder.load(t1, addr_y, addr_reg=_INDEX)
        builder.fp_mul(t2, _SCALAR, t0)
        builder.fp_add(t2, t2, t1)
        builder.store(addr_y, t2, addr_reg=_INDEX)
        builder.int_op(_INDEX, _INDEX)
        builder.branch(taken=(i != elements - 1), target=loop_pc, srcs=(_INDEX, _LIMIT))
    return builder.build()


def stream_triad(elements: int = 2048, name: str = "triad") -> Trace:
    """``a[i] = b[i] + s * c[i]`` — the STREAM triad, three streams."""
    builder = TraceBuilder(name=name)
    loop_pc = _loop_header(builder)
    a_base, b_base, c_base = ARRAY_BASES[0], ARRAY_BASES[1], ARRAY_BASES[2]
    t0, t1, t2 = regs.fp_reg(2), regs.fp_reg(3), regs.fp_reg(4)
    for i in range(elements):
        builder.set_pc(loop_pc)
        builder.load(t0, b_base + i * ELEMENT_BYTES, addr_reg=_INDEX)
        builder.load(t1, c_base + i * ELEMENT_BYTES, addr_reg=_INDEX)
        builder.fp_mul(t2, _SCALAR, t1)
        builder.fp_add(t2, t2, t0)
        builder.store(a_base + i * ELEMENT_BYTES, t2, addr_reg=_INDEX)
        builder.int_op(_INDEX, _INDEX)
        builder.branch(taken=(i != elements - 1), target=loop_pc, srcs=(_INDEX, _LIMIT))
    return builder.build()


def reduction(elements: int = 2048, name: str = "reduction") -> Trace:
    """``acc += x[i]`` — a serial floating-point dependence chain.

    Every addition depends on the previous one, so a single L2 miss stalls
    the whole chain behind it; this is the worst case for a small window.
    """
    builder = TraceBuilder(name=name)
    loop_pc = _loop_header(builder)
    x_base = ARRAY_BASES[0]
    t0 = regs.fp_reg(2)
    for i in range(elements):
        builder.set_pc(loop_pc)
        builder.load(t0, x_base + i * ELEMENT_BYTES, addr_reg=_INDEX)
        builder.fp_add(_ACC, _ACC, t0)
        builder.int_op(_INDEX, _INDEX)
        builder.branch(taken=(i != elements - 1), target=loop_pc, srcs=(_INDEX, _LIMIT))
    return builder.build()


def stencil3(elements: int = 2048, name: str = "stencil3") -> Trace:
    """Three-point stencil ``y[i] = c * (x[i-1] + x[i] + x[i+1])``.

    Neighbouring loads hit the same cache line most of the time, giving a
    lower L2-miss rate than pure streaming — a different point in the
    miss-rate spectrum.
    """
    builder = TraceBuilder(name=name)
    loop_pc = _loop_header(builder)
    x_base, y_base = ARRAY_BASES[0], ARRAY_BASES[1]
    t0, t1, t2, t3 = regs.fp_reg(2), regs.fp_reg(3), regs.fp_reg(4), regs.fp_reg(5)
    for i in range(1, elements + 1):
        builder.set_pc(loop_pc)
        builder.load(t0, x_base + (i - 1) * ELEMENT_BYTES, addr_reg=_INDEX)
        builder.load(t1, x_base + i * ELEMENT_BYTES, addr_reg=_INDEX)
        builder.load(t2, x_base + (i + 1) * ELEMENT_BYTES, addr_reg=_INDEX)
        builder.fp_add(t3, t0, t1)
        builder.fp_add(t3, t3, t2)
        builder.fp_mul(t3, t3, _SCALAR)
        builder.store(y_base + i * ELEMENT_BYTES, t3, addr_reg=_INDEX)
        builder.int_op(_INDEX, _INDEX)
        builder.branch(taken=(i != elements), target=loop_pc, srcs=(_INDEX, _LIMIT))
    return builder.build()


def matvec(rows: int = 64, cols: int = 32, name: str = "matvec") -> Trace:
    """Dense matrix-vector product ``y[r] = sum_c A[r, c] * x[c]``.

    The inner loop is a serial reduction (like ``reduction``) but the
    vector ``x`` is reused across rows and therefore mostly cache
    resident, mixing hits and misses.
    """
    builder = TraceBuilder(name=name)
    a_base, x_base, y_base = ARRAY_BASES[0], ARRAY_BASES[1], ARRAY_BASES[2]
    t0, t1, acc = regs.fp_reg(2), regs.fp_reg(3), regs.fp_reg(4)
    builder.int_op(_INDEX)
    builder.int_op(_LIMIT)
    outer_pc = builder.pc
    for r in range(rows):
        builder.set_pc(outer_pc)
        builder.fp_add(acc)
        inner_pc = builder.pc
        for c in range(cols):
            builder.set_pc(inner_pc)
            addr_a = a_base + (r * cols + c) * ELEMENT_BYTES
            addr_x = x_base + c * ELEMENT_BYTES
            builder.load(t0, addr_a, addr_reg=_INDEX)
            builder.load(t1, addr_x, addr_reg=_INDEX)
            builder.fp_mul(t0, t0, t1)
            builder.fp_add(acc, acc, t0)
            builder.int_op(_INDEX, _INDEX)
            builder.branch(taken=(c != cols - 1), target=inner_pc, srcs=(_INDEX,))
        builder.store(y_base + r * ELEMENT_BYTES, acc, addr_reg=_INDEX)
        builder.int_op(_TMP_INT, _TMP_INT)
        builder.branch(taken=(r != rows - 1), target=outer_pc, srcs=(_TMP_INT,))
    return builder.build()


def random_gather(
    elements: int = 2048,
    table_elements: int = 1 << 20,
    seed: int = 12345,
    name: str = "gather",
) -> Trace:
    """``y[i] = table[idx[i]]`` — indirect loads over a huge table.

    The index stream is sequential (and therefore cheap) but the gathered
    addresses are uniformly random over an 8 MiB table, so virtually every
    gather misses in L2.  This mimics the irregular-access SPECfp codes.
    """
    builder = TraceBuilder(name=name)
    loop_pc = _loop_header(builder)
    rng = random.Random(seed)
    idx_base, table_base, y_base = ARRAY_BASES[0], ARRAY_BASES[1], ARRAY_BASES[2]
    t_idx = regs.int_reg(7)
    t0, t1 = regs.fp_reg(2), regs.fp_reg(3)
    for i in range(elements):
        builder.set_pc(loop_pc)
        builder.load(t_idx, idx_base + i * ELEMENT_BYTES, addr_reg=_INDEX)
        gathered = table_base + rng.randrange(table_elements) * ELEMENT_BYTES
        builder.load(t0, gathered, addr_reg=t_idx)
        builder.fp_add(t1, t0, _SCALAR)
        builder.store(y_base + i * ELEMENT_BYTES, t1, addr_reg=_INDEX)
        builder.int_op(_INDEX, _INDEX)
        builder.branch(taken=(i != elements - 1), target=loop_pc, srcs=(_INDEX, _LIMIT))
    return builder.build()


def blocked_daxpy(
    elements: int = 2048,
    block_elements: int = 512,
    passes: int = 2,
    name: str = "blocked_daxpy",
) -> Trace:
    """A cache-blocked daxpy that revisits a small block several times.

    Re-use within a block means most accesses after the first pass hit in
    the data caches — useful for tests that need a low-miss workload.
    """
    builder = TraceBuilder(name=name)
    loop_pc = _loop_header(builder)
    x_base, y_base = ARRAY_BASES[0], ARRAY_BASES[1]
    t0, t1, t2 = regs.fp_reg(2), regs.fp_reg(3), regs.fp_reg(4)
    total = 0
    blocks = max(1, elements // block_elements)
    for block in range(blocks):
        for _ in range(passes):
            for i in range(block_elements):
                builder.set_pc(loop_pc)
                index = block * block_elements + i
                addr_x = x_base + index * ELEMENT_BYTES
                addr_y = y_base + index * ELEMENT_BYTES
                builder.load(t0, addr_x, addr_reg=_INDEX)
                builder.load(t1, addr_y, addr_reg=_INDEX)
                builder.fp_mul(t2, _SCALAR, t0)
                builder.fp_add(t2, t2, t1)
                builder.store(addr_y, t2, addr_reg=_INDEX)
                builder.int_op(_INDEX, _INDEX)
                total += 1
                last = block == blocks - 1 and _ == passes - 1 and i == block_elements - 1
                builder.branch(taken=not last, target=loop_pc, srcs=(_INDEX, _LIMIT))
    return builder.build()


def fp_compute_bound(
    iterations: int = 2048,
    chain_length: int = 4,
    name: str = "fp_compute",
) -> Trace:
    """A floating-point compute kernel with almost no memory traffic.

    Used as the "perfect memory" contrast point and in unit tests where
    cache behaviour would only add noise.
    """
    builder = TraceBuilder(name=name)
    loop_pc = _loop_header(builder)
    temps = [regs.fp_reg(2 + i) for i in range(max(2, chain_length))]
    for i in range(iterations):
        builder.set_pc(loop_pc)
        for j, temp in enumerate(temps):
            src = temps[j - 1] if j else _SCALAR
            builder.fp_mul(temp, src, _SCALAR)
        builder.fp_add(_ACC, _ACC, temps[-1])
        builder.int_op(_INDEX, _INDEX)
        builder.branch(taken=(i != iterations - 1), target=loop_pc, srcs=(_INDEX, _LIMIT))
    return builder.build()


def single_miss_probe(
    miss_addr: Optional[int] = None,
    dependents: int = 8,
    padding: int = 32,
    name: str = "single_miss",
) -> Trace:
    """One L2-missing load followed by a dependence chain and padding.

    A micro-trace used by unit tests of the SLIQ and checkpoint logic: the
    first load misses everywhere, ``dependents`` FP operations depend on
    it, and ``padding`` independent integer instructions follow.
    """
    builder = TraceBuilder(name=name)
    addr = miss_addr if miss_addr is not None else ARRAY_BASES[3]
    t0 = regs.fp_reg(2)
    builder.load(t0, addr)
    previous = t0
    for i in range(dependents):
        dest = regs.fp_reg(3 + (i % 8))
        builder.fp_add(dest, previous, _SCALAR)
        previous = dest
    for i in range(padding):
        builder.int_op(regs.int_reg(8 + (i % 8)), _INDEX)
    builder.branch(taken=False, srcs=(_INDEX,))
    return builder.build()
