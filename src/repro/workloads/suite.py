"""Benchmark suites: named collections of traces.

The experiment harness runs every configuration over a whole suite and
averages IPC across its members, exactly as the paper averages over the
SPEC2000fp applications.  :func:`spec2000fp_like` is the default suite
used by every figure; ``scale`` shrinks or grows every member so the
benchmarks can trade fidelity against wall-clock time.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from ..trace.trace import Trace
from . import integer, numerical, registry


@dataclass(frozen=True)
class SuiteMember:
    """One workload of a suite: a name plus its trace generator."""

    name: str
    generator: Callable[[int], Trace]
    base_size: int

    def build(self, scale: float = 1.0) -> Trace:
        """Generate the member's trace, scaled in dynamic instruction count."""
        size = max(16, int(self.base_size * scale))
        return self.generator(size)


class Suite:
    """An ordered collection of workloads."""

    def __init__(
        self, name: str, members: Sequence[SuiteMember], description: str = ""
    ) -> None:
        self.name = name
        self.description = description
        self.members: Tuple[SuiteMember, ...] = tuple(members)
        if not self.members:
            raise ValueError("a suite needs at least one member")

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def names(self) -> List[str]:
        return [member.name for member in self.members]

    def build(self, scale: float = 1.0) -> Dict[str, Trace]:
        """Generate every member's trace."""
        return {member.name: member.build(scale) for member in self.members}


def spec2000fp_like(scale: float = 1.0) -> Dict[str, Trace]:
    """The default floating-point suite (SPEC2000fp stand-in).

    Six kernels spanning the dependence/miss-rate spectrum:

    * ``daxpy`` and ``triad`` — streaming, fully parallel (like swim/applu)
    * ``stencil3`` — strided with reuse (like mgrid)
    * ``reduction`` — serial FP chain (like the reductions in equake)
    * ``gather`` — irregular indirect accesses (like the sparse codes)
    * ``matvec`` — mixed reuse and reduction (like wupwise kernels)
    * ``blocked`` — cache-blocked re-use, low miss rate (like the blocked solvers)
    * ``fp_compute`` — compute bound, almost no memory traffic
    """
    return SPEC2000FP_LIKE.build(scale)


def integer_suite(scale: float = 1.0) -> Dict[str, Trace]:
    """The integer contrast suite (pointer chasing and hard branches)."""
    return INTEGER_LIKE.build(scale)


#: Canonical base member sizes: each member produces a few thousand
#: dynamic instructions at scale 1.0 (roughly equal weight per member).
SPEC2000FP_LIKE = Suite(
    "spec2000fp_like",
    description="SPEC2000fp stand-in: streaming/strided FP loops, mostly L2-miss bound "
    "with near-perfect branches (the paper's evaluation suite)",
    members=[
        SuiteMember("daxpy", lambda n: numerical.daxpy(elements=max(4, n // 7)), 3500),
        SuiteMember("triad", lambda n: numerical.stream_triad(elements=max(4, n // 7)), 3500),
        SuiteMember("stencil3", lambda n: numerical.stencil3(elements=max(4, n // 9)), 3600),
        SuiteMember("reduction", lambda n: numerical.reduction(elements=max(4, n // 4)), 3200),
        SuiteMember(
            "gather", lambda n: numerical.random_gather(elements=max(4, n // 6)), 3600
        ),
        SuiteMember(
            "matvec",
            lambda n: numerical.matvec(rows=max(2, n // 200), cols=32),
            3400,
        ),
        SuiteMember(
            "blocked",
            lambda n: numerical.blocked_daxpy(
                elements=max(8, n // 14), block_elements=max(4, n // 28), passes=2
            ),
            3500,
        ),
        SuiteMember(
            "fp_compute",
            lambda n: numerical.fp_compute_bound(iterations=max(4, n // 7)),
            3500,
        ),
    ],
)

INTEGER_LIKE = Suite(
    "integer_like",
    description="integer contrast suite: pointer chasing, hard branches and a mixed "
    "blend — the regime where huge windows help least",
    members=[
        SuiteMember("pointer_chase", lambda n: integer.pointer_chase(hops=max(4, n // 4)), 2000),
        SuiteMember(
            "branchy_int", lambda n: integer.branchy_integer(iterations=max(4, n // 5)), 2500
        ),
        SuiteMember("mixed", lambda n: integer.mixed_int_fp(iterations=max(4, n // 7)), 2800),
    ],
)

registry.register_suite(SPEC2000FP_LIKE)
registry.register_suite(INTEGER_LIKE)


class _SuiteView(Mapping):
    """Live read-only mapping view over the suite registry.

    Kept so code written against the original module-level ``SUITES``
    dict (``sorted(SUITES)``, ``SUITES.items()``) keeps working while
    runtime-registered suites appear automatically.
    """

    def __getitem__(self, name: str) -> Suite:
        return registry.get_suite(name)

    def __iter__(self) -> Iterator[str]:
        return iter(registry.suite_names())

    def __len__(self) -> int:
        return len(registry.suite_names())


#: Every registered suite, keyed by name (see :mod:`repro.workloads.registry`).
SUITES: Mapping[str, Suite] = _SuiteView()


def get_suite(name: str) -> Suite:
    """Look up a registered suite by name (delegates to the registry)."""
    return registry.get_suite(name)
