"""Synthetic workload generators and benchmark suites."""

from .builder import TraceBuilder
from .integer import branchy_integer, mixed_int_fp, pointer_chase
from .numerical import (
    blocked_daxpy,
    daxpy,
    fp_compute_bound,
    matvec,
    random_gather,
    reduction,
    single_miss_probe,
    stencil3,
    stream_triad,
)
from .suite import (
    INTEGER_LIKE,
    SPEC2000FP_LIKE,
    SUITES,
    Suite,
    SuiteMember,
    get_suite,
    integer_suite,
    spec2000fp_like,
)

__all__ = [
    "TraceBuilder",
    "branchy_integer",
    "mixed_int_fp",
    "pointer_chase",
    "blocked_daxpy",
    "daxpy",
    "fp_compute_bound",
    "matvec",
    "random_gather",
    "reduction",
    "single_miss_probe",
    "stencil3",
    "stream_triad",
    "INTEGER_LIKE",
    "SPEC2000FP_LIKE",
    "SUITES",
    "Suite",
    "SuiteMember",
    "get_suite",
    "integer_suite",
    "spec2000fp_like",
]
