"""Synthetic workload generators, the workload/suite registry, and suites.

Importing this package registers every built-in workload and suite (see
:mod:`repro.workloads.catalog` and :mod:`repro.workloads.scenarios`);
the registry in :mod:`repro.workloads.registry` is the canonical way to
resolve either by name.
"""

from .builder import TraceBuilder
from .integer import (
    branchy_integer,
    dense_branches,
    mixed_int_fp,
    multi_pointer_chase,
    pointer_chase,
)
from .numerical import (
    blocked_daxpy,
    daxpy,
    fp_compute_bound,
    matvec,
    random_gather,
    reduction,
    single_miss_probe,
    stencil3,
    stream_triad,
)
from .registry import (
    SuiteSpec,
    WorkloadSpec,
    build_workload,
    get_workload,
    register_suite,
    register_workload,
    suite_names,
    suite_specs,
    unregister_suite,
    unregister_workload,
    workload_names,
    workload_specs,
)
from .scenario import Phase, Scenario, interleave, stream_rng, stream_seed
from .suite import (
    INTEGER_LIKE,
    SPEC2000FP_LIKE,
    SUITES,
    Suite,
    SuiteMember,
    get_suite,
    integer_suite,
    spec2000fp_like,
)
from . import catalog, scenarios  # noqa: F401  (registration side effects)

__all__ = [
    "TraceBuilder",
    "branchy_integer",
    "dense_branches",
    "mixed_int_fp",
    "multi_pointer_chase",
    "pointer_chase",
    "blocked_daxpy",
    "daxpy",
    "fp_compute_bound",
    "matvec",
    "random_gather",
    "reduction",
    "single_miss_probe",
    "stencil3",
    "stream_triad",
    "SuiteSpec",
    "WorkloadSpec",
    "build_workload",
    "get_workload",
    "register_suite",
    "register_workload",
    "suite_names",
    "suite_specs",
    "unregister_suite",
    "unregister_workload",
    "workload_names",
    "workload_specs",
    "Phase",
    "Scenario",
    "interleave",
    "stream_rng",
    "stream_seed",
    "INTEGER_LIKE",
    "SPEC2000FP_LIKE",
    "SUITES",
    "Suite",
    "SuiteMember",
    "get_suite",
    "integer_suite",
    "spec2000fp_like",
]
