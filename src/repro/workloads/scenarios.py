"""The registered scenario suites: pointer-chase, branch-storm, server-mix.

The paper's evaluation suite (``spec2000fp_like``) sits in one corner of
the behaviour space: L2-miss bound with near-perfect branch prediction.
These three suites stress the checkpointed machine everywhere else:

``pointer-chase``
    Memory-bound *dependent* loads.  Chains defeat the window entirely
    (``chase_cold``), fit in cache (``chase_warm``), overlap across
    independent chains (``chase_mlp``) or hide latency under per-hop
    work (``chase_work``) — the spectrum from zero to full
    memory-level parallelism.

``branch-storm``
    Low-predictability control flow.  Coin-flip branches at different
    densities and biases keep the front end restarting, so rollback
    distance and checkpoint-table pressure dominate performance.

``server-mix``
    Interleaved phases, declared with the scenario DSL rather than
    hand-written: a request loop alternating branchy parsing,
    miss-heavy lookups and FP-heavy response work — at phase
    granularity (``phased``), at sub-window granularity
    (``interleaved``) and with randomized phase mixing (``bursty``).

Every member budget is in dynamic instructions (like the built-in
suites) and every generator is deterministic for a fixed scale, so the
suites drop straight into the sweep engine's persistent result cache.
"""

from __future__ import annotations

import random

from ..trace.trace import Trace
from . import integer, numerical
from .registry import register_suite
from .scenario import Phase, Scenario, interleave, stream_rng
from .suite import Suite, SuiteMember

# ---------------------------------------------------------------------------
# pointer-chase: memory-bound dependent loads
# ---------------------------------------------------------------------------


@register_suite
def pointer_chase_suite() -> Suite:
    return Suite(
        "pointer-chase",
        description="memory-bound dependent loads: serial chains, cached chains, "
        "and independent chains exposing memory-level parallelism",
        members=[
            # One serial chain over a far-larger-than-L2 node pool: every
            # hop is an L2 miss that the next hop depends on.
            SuiteMember(
                "chase_cold",
                lambda n: integer.pointer_chase(hops=max(4, n // 4), nodes=1 << 18, seed=101),
                2400,
            ),
            # The same chain over a pool that fits in the data caches.
            SuiteMember(
                "chase_warm",
                lambda n: integer.pointer_chase(hops=max(4, n // 4), nodes=1 << 7, seed=102),
                2400,
            ),
            # Four independent chains: misses overlap if the window holds them.
            SuiteMember(
                "chase_mlp",
                lambda n: integer.multi_pointer_chase(hops=max(4, n // 3), chains=4, seed=103),
                2400,
            ),
            # One chain with real work per hop that can hide some latency.
            SuiteMember(
                "chase_work",
                lambda n: integer.pointer_chase(
                    hops=max(4, n // 8), work_per_hop=6, seed=104
                ),
                2400,
            ),
        ],
    )


# ---------------------------------------------------------------------------
# branch-storm: low-predictability control flow
# ---------------------------------------------------------------------------


@register_suite
def branch_storm_suite() -> Suite:
    return Suite(
        "branch-storm",
        description="low-predictability control flow: coin-flip and biased "
        "branches at increasing density, rollback-bound throughout",
        members=[
            # Worst case for gshare: a 50/50 data-dependent branch per iteration.
            SuiteMember(
                "storm_even",
                lambda n: integer.branchy_integer(
                    iterations=max(4, n // 5), taken_probability=0.5, seed=201
                ),
                2500,
            ),
            # Biased but still unpredictable: ~25% surprise rate.
            SuiteMember(
                "storm_biased",
                lambda n: integer.branchy_integer(
                    iterations=max(4, n // 5), taken_probability=0.75, seed=202
                ),
                2500,
            ),
            # Several coin flips back-to-back: restarts dominate all work.
            SuiteMember(
                "storm_dense",
                lambda n: integer.dense_branches(
                    iterations=max(4, n // 6), branches_per_iteration=3, seed=203
                ),
                2400,
            ),
        ],
    )


# ---------------------------------------------------------------------------
# server-mix: interleaved phases via the scenario DSL
# ---------------------------------------------------------------------------

#: Shares of the request loop: parse (branchy), look up (memory), respond (FP).
_SERVER_PHASES = (
    Phase(
        "parse",
        lambda n, rng: integer.branchy_integer(
            iterations=max(4, n // 5),
            taken_probability=0.6,
            seed=rng.randrange(1 << 30),
        ),
        weight=1.0,
    ),
    Phase(
        "lookup",
        lambda n, rng: numerical.random_gather(
            elements=max(4, n // 6), seed=rng.randrange(1 << 30)
        ),
        weight=2.0,
    ),
    Phase(
        "respond",
        lambda n, rng: numerical.fp_compute_bound(iterations=max(4, n // 7)),
        weight=1.0,
    ),
)

#: Two service cycles of parse -> lookup -> respond.
SERVER_SCENARIO = Scenario("server-mix", _SERVER_PHASES, repeat=2)


def _interleaved_server(n: int) -> Trace:
    """The same three regimes mixed at sub-window granularity."""
    rng = stream_rng("server-mix", "interleaved")
    slices = [
        integer.branchy_integer(
            iterations=max(4, n // 4 // 5), taken_probability=0.6, seed=rng.randrange(1 << 30)
        ),
        numerical.random_gather(elements=max(4, n // 2 // 6), seed=rng.randrange(1 << 30)),
        numerical.fp_compute_bound(iterations=max(4, n // 4 // 7)),
    ]
    return interleave(slices, block=24, name="server_interleaved")


def _bursty_server(n: int) -> Trace:
    """Randomized block mixing: bursts of each regime in random order."""
    rng = stream_rng("server-mix", "bursty")
    slices = [
        integer.dense_branches(iterations=max(4, n // 3 // 6), seed=rng.randrange(1 << 30)),
        numerical.random_gather(elements=max(4, n // 3 // 6), seed=rng.randrange(1 << 30)),
        numerical.daxpy(elements=max(4, n // 3 // 7)),
    ]
    return interleave(slices, block=96, name="server_bursty", rng=random.Random(rng.random()))


@register_suite
def server_mix_suite() -> Suite:
    return Suite(
        "server-mix",
        description="interleaved server phases declared with the scenario DSL: "
        "branchy parsing, miss-heavy lookups, FP-heavy responses",
        members=[
            SuiteMember("phased", SERVER_SCENARIO.as_generator(), 3600),
            SuiteMember("interleaved", _interleaved_server, 3600),
            SuiteMember("bursty", _bursty_server, 3600),
        ],
    )
