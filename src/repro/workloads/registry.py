"""The pluggable workload/suite registry: one source of truth for scenarios.

PR 2 made machine *organizations* first-class registrable things
(:mod:`repro.core.registry_machines`); this module does the same for
*workloads*.  A workload is a parameterized trace generator registered
under a name::

    from repro.workloads.registry import register_workload

    @register_workload(
        "zigzag",
        description="alternating hot/cold strided loads",
        base_size=2000,
        knobs={"stride": 4, "seed": 99},
    )
    def zigzag(size: int, stride: int = 4, seed: int = 99) -> Trace:
        ...

From that point on the workload behaves exactly like a built-in: it is
buildable by name through :func:`get_workload`/:func:`build_workload`,
appears in ``repro workloads`` and ``repro simulate --workload``, and
can be placed in registered suites — with zero edits to the engine, the
CLI, or the sweep pipeline.

Suites — ordered collections of workload members averaged by the
experiment harness, exactly as the paper averages over SPEC2000fp — are
registered the same way, either directly::

    register_suite(my_suite, description="...")

or by decorating a zero-argument factory::

    @register_suite(description="latency-hiding stress suite")
    def my_suite() -> Suite:
        return Suite("my-suite", [...])

Lookups by unknown name raise ``KeyError`` whose message lists every
registered name (mirroring ``repro modes`` for machines).  The sweep
engine's persistent cache keys are ``(config, suite name, workload
name, scale, version)`` — registration itself never invalidates caches,
but changing what a *registered name* generates would silently reuse
stale results, so generators must stay deterministic per name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Callable, Dict, List, Mapping, Optional, TYPE_CHECKING

from ..common.errors import ConfigurationError
from ..trace.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .suite import Suite

#: A workload generator: ``generator(size, **knobs) -> Trace`` where
#: ``size`` is the approximate dynamic instruction budget.
GeneratorFn = Callable[..., Trace]

#: Floor applied when scaling a base size, matching ``SuiteMember.build``.
MIN_SIZE = 16

_WORKLOADS: Dict[str, "WorkloadSpec"] = {}
_SUITES: Dict[str, "SuiteSpec"] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the modules that register the shipped workloads (idempotent)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # Flag first to guard against reentrancy while the imports execute;
    # cleared on failure so the real ImportError resurfaces next query.
    _BUILTINS_LOADED = True
    try:
        # xl last: it derives its suites from the ones the others register.
        from . import catalog, scenarios, suite, xl  # noqa: F401  (registration side effects)
    except BaseException:
        _BUILTINS_LOADED = False
        raise


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered, parameterized workload generator.

    ``knobs`` documents the tunable parameters beyond size and their
    default values; :meth:`build` accepts overrides for any of them and
    rejects unknown names.  ``base_size`` is the size parameter handed
    to the generator at ``scale=1.0`` (its meaning — elements,
    iterations, hops — is the generator's primary size knob).
    """

    name: str
    generator: GeneratorFn
    description: str = ""
    base_size: int = 2000
    knobs: Mapping[str, object] = field(default_factory=dict)

    def build(
        self,
        size: Optional[int] = None,
        scale: float = 1.0,
        **overrides: object,
    ) -> Trace:
        """Generate the trace at an explicit ``size`` or a ``scale`` of base size."""
        unknown = sorted(set(overrides) - set(self.knobs))
        if unknown:
            raise KeyError(
                f"unknown knobs {unknown} for workload {self.name!r}; "
                f"tunable knobs: {sorted(self.knobs)}"
            )
        if size is None:
            size = max(MIN_SIZE, int(self.base_size * scale))
        parameters = dict(self.knobs)
        parameters.update(overrides)
        return self.generator(size, **parameters)


@dataclass(frozen=True)
class SuiteSpec:
    """One registered suite plus its catalog description."""

    name: str
    suite: "Suite"
    description: str = ""


# ---------------------------------------------------------------------------
# Workload registration and lookup
# ---------------------------------------------------------------------------


def register_workload(
    name: str,
    *,
    description: str = "",
    base_size: int = 2000,
    knobs: Optional[Mapping[str, object]] = None,
) -> Callable[[GeneratorFn], GeneratorFn]:
    """Function decorator registering a trace generator as workload ``name``.

    The decorated function keeps working as a plain callable.  When
    ``description`` is omitted the first line of the docstring is used.
    Re-registering the *same* function under the same name is a no-op;
    registering a different one under a taken name raises.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"workload name must be a non-empty string, got {name!r}")
    if base_size < 1:
        raise ConfigurationError(f"workload {name!r}: base_size must be positive, got {base_size}")

    def decorator(fn: GeneratorFn) -> GeneratorFn:
        existing = _WORKLOADS.get(name)
        if existing is not None:
            if existing.generator is fn:
                return fn  # idempotent re-import
            raise ConfigurationError(
                f"workload {name!r} is already registered; unregister it first "
                f"or pick another name"
            )
        doc = (fn.__doc__ or "").strip().splitlines()
        _WORKLOADS[name] = WorkloadSpec(
            name=name,
            generator=fn,
            description=description or (doc[0] if doc else ""),
            base_size=base_size,
            knobs=MappingProxyType(dict(knobs or {})),
        )
        return fn

    return decorator


def unregister_workload(name: str) -> None:
    """Remove a registered workload (primarily for tests and plugins)."""
    _ensure_builtins()
    if name not in _WORKLOADS:
        raise KeyError(f"workload {name!r} is not registered")
    del _WORKLOADS[name]


def workload_names() -> List[str]:
    """Sorted names of every registered workload."""
    _ensure_builtins()
    return sorted(_WORKLOADS)


def workload_specs() -> List[WorkloadSpec]:
    """Every registered workload, sorted by name."""
    _ensure_builtins()
    return [_WORKLOADS[name] for name in sorted(_WORKLOADS)]


def get_workload(name: str) -> WorkloadSpec:
    """The spec registered under ``name``; raises listing the valid names."""
    _ensure_builtins()
    try:
        return _WORKLOADS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown workload {name!r}; registered workloads: "
            f"{', '.join(sorted(_WORKLOADS))}"
        ) from exc


def build_workload(
    name: str,
    size: Optional[int] = None,
    scale: float = 1.0,
    **overrides: object,
) -> Trace:
    """Resolve ``name`` in the registry and build its trace."""
    return get_workload(name).build(size=size, scale=scale, **overrides)


# ---------------------------------------------------------------------------
# Suite registration and lookup
# ---------------------------------------------------------------------------


def register_suite(suite=None, *, description: str = ""):
    """Register a suite, directly or by decorating a zero-arg factory.

    ``register_suite(suite_obj, description=...)`` registers the object
    and returns it; ``@register_suite(description=...)`` above a factory
    function calls the factory once and registers its result, leaving
    the factory usable.  The suite's own ``name`` is the registry key.
    """
    if suite is None:
        return lambda target: register_suite(target, description=description)
    from .suite import Suite

    if isinstance(suite, Suite):
        built, returned = suite, suite
    elif callable(suite):
        built, returned = suite(), suite
        if not isinstance(built, Suite):
            raise ConfigurationError(
                f"suite factory {getattr(suite, '__name__', suite)!r} returned "
                f"{type(built).__name__}, expected a Suite"
            )
    else:
        raise ConfigurationError(f"cannot register {suite!r} as a suite")
    existing = _SUITES.get(built.name)
    if existing is not None:
        if existing.suite is built:
            return returned  # idempotent re-import
        raise ConfigurationError(
            f"suite {built.name!r} is already registered; unregister it first "
            f"or pick another name"
        )
    doc = ""
    if callable(suite) and not isinstance(suite, Suite):
        doc_lines = (suite.__doc__ or "").strip().splitlines()
        doc = doc_lines[0] if doc_lines else ""
    _SUITES[built.name] = SuiteSpec(
        name=built.name,
        suite=built,
        description=description or doc or built.description,
    )
    return returned


def unregister_suite(name: str) -> None:
    """Remove a registered suite (primarily for tests and plugins)."""
    _ensure_builtins()
    if name not in _SUITES:
        raise KeyError(f"suite {name!r} is not registered")
    del _SUITES[name]


def suite_names() -> List[str]:
    """Sorted names of every registered suite."""
    _ensure_builtins()
    return sorted(_SUITES)


def suite_specs() -> List[SuiteSpec]:
    """Every registered suite, sorted by name."""
    _ensure_builtins()
    return [_SUITES[name] for name in sorted(_SUITES)]


def get_suite_spec(name: str) -> SuiteSpec:
    """The suite spec registered under ``name``; raises listing valid names."""
    _ensure_builtins()
    try:
        return _SUITES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown suite {name!r}; registered suites: {', '.join(sorted(_SUITES))}"
        ) from exc


def get_suite(name: str) -> "Suite":
    """The suite registered under ``name``; raises listing the valid names."""
    return get_suite_spec(name).suite
