"""Integer / irregular workloads used as a contrast to the FP suite.

The paper's introduction notes that integer codes benefit much less from
huge windows because of branch mispredictions and pointer chasing.  These
generators provide that regime so examples and tests can demonstrate the
difference.
"""

from __future__ import annotations

import random

from ..isa import registers as regs
from ..trace.trace import Trace
from .builder import TraceBuilder

ELEMENT_BYTES = 8
HEAP_BASE = 0x6000_0000


def pointer_chase(
    hops: int = 2048,
    nodes: int = 1 << 18,
    seed: int = 7,
    work_per_hop: int = 2,
    name: str = "pointer_chase",
) -> Trace:
    """Serial pointer chasing over a randomised linked list.

    Every load depends on the previous one, so no amount of window helps:
    the critical path is ``hops`` times the memory latency.
    """
    builder = TraceBuilder(name=name)
    rng = random.Random(seed)
    ptr = regs.int_reg(1)
    tmp = regs.int_reg(2)
    builder.int_op(ptr)
    loop_pc = builder.pc
    for hop in range(hops):
        builder.set_pc(loop_pc)
        node = rng.randrange(nodes)
        builder.load(ptr, HEAP_BASE + node * 64, addr_reg=ptr)
        for _ in range(work_per_hop):
            builder.int_op(tmp, ptr)
        builder.branch(taken=(hop != hops - 1), target=loop_pc, srcs=(tmp,))
    return builder.build()


def multi_pointer_chase(
    hops: int = 2048,
    chains: int = 4,
    nodes: int = 1 << 18,
    seed: int = 17,
    name: str = "multi_chase",
) -> Trace:
    """Several independent pointer chains advanced round-robin.

    Each chain is as serial as :func:`pointer_chase`, but the chains are
    independent of one another, so a machine that can hold ``chains``
    outstanding misses overlaps them — the memory-level-parallelism
    contrast to the single-chain worst case.  ``hops`` counts total hops
    across all chains.
    """
    if not 1 <= chains <= 12:
        # One architectural register per chain; r1..r12 are reserved here.
        raise ValueError(f"multi_pointer_chase supports 1..12 chains, got {chains}")
    builder = TraceBuilder(name=name)
    rng = random.Random(seed)
    pointers = [regs.int_reg(1 + c) for c in range(chains)]
    tmp = regs.int_reg(14)
    for pointer in pointers:
        builder.int_op(pointer)
    loop_pc = builder.pc
    for hop in range(hops):
        builder.set_pc(loop_pc)
        pointer = pointers[hop % len(pointers)]
        node = rng.randrange(nodes)
        builder.load(pointer, HEAP_BASE + node * 64, addr_reg=pointer)
        builder.int_op(tmp, pointer)
        builder.branch(taken=(hop != hops - 1), target=loop_pc, srcs=(tmp,))
    return builder.build()


def dense_branches(
    iterations: int = 2048,
    branches_per_iteration: int = 3,
    taken_probability: float = 0.5,
    seed: int = 31,
    name: str = "dense_branches",
) -> Trace:
    """Back-to-back data-dependent branches with almost no work between.

    Where :func:`branchy_integer` mispredicts roughly once per loop
    iteration, this kernel packs several independent coin-flip branches
    per iteration, so the front end restarts constantly — the regime
    where checkpoint rollback cost dominates everything else.
    """
    if branches_per_iteration < 1:
        raise ValueError(
            f"dense_branches needs at least one branch per iteration, "
            f"got {branches_per_iteration}"
        )
    builder = TraceBuilder(name=name)
    rng = random.Random(seed)
    index = regs.int_reg(1)
    value = regs.int_reg(2)
    data_base = 0x7800_0000
    builder.int_op(index)
    loop_pc = builder.pc
    for i in range(iterations):
        builder.set_pc(loop_pc)
        builder.load(value, data_base + (i % 2048) * ELEMENT_BYTES, addr_reg=index)
        for _ in range(branches_per_iteration):
            builder.branch(taken=rng.random() < taken_probability, srcs=(value,))
        builder.int_op(index, index)
        builder.branch(taken=(i != iterations - 1), target=loop_pc, srcs=(index,))
    return builder.build()


def branchy_integer(
    iterations: int = 2048,
    taken_probability: float = 0.5,
    seed: int = 11,
    name: str = "branchy_int",
) -> Trace:
    """An integer loop with a data-dependent, hard-to-predict branch.

    The inner branch outcome is random with the given probability, so the
    gshare predictor mispredicts often — the regime where checkpoint
    rollback distance matters most.
    """
    builder = TraceBuilder(name=name)
    rng = random.Random(seed)
    index = regs.int_reg(1)
    value = regs.int_reg(2)
    accum = regs.int_reg(3)
    data_base = 0x7000_0000
    builder.int_op(index)
    builder.int_op(accum)
    loop_pc = builder.pc
    for i in range(iterations):
        builder.set_pc(loop_pc)
        builder.load(value, data_base + (i % 4096) * ELEMENT_BYTES, addr_reg=index)
        # Data-dependent branch over the loaded value.
        builder.branch(taken=rng.random() < taken_probability, srcs=(value,))
        builder.int_op(accum, accum, value)
        builder.int_op(index, index)
        builder.branch(taken=(i != iterations - 1), target=loop_pc, srcs=(index,))
    return builder.build()


def mixed_int_fp(
    iterations: int = 1024,
    seed: int = 23,
    name: str = "mixed",
) -> Trace:
    """A half-integer, half-floating-point loop with moderate miss rate."""
    builder = TraceBuilder(name=name)
    rng = random.Random(seed)
    index = regs.int_reg(1)
    tmp_i = regs.int_reg(2)
    t0, t1 = regs.fp_reg(2), regs.fp_reg(3)
    scalar = regs.fp_reg(0)
    a_base, b_base = 0x1000_0000, 0x2000_0000
    builder.int_op(index)
    builder.fp_add(scalar)
    loop_pc = builder.pc
    for i in range(iterations):
        builder.set_pc(loop_pc)
        builder.load(t0, a_base + i * ELEMENT_BYTES, addr_reg=index)
        builder.int_op(tmp_i, index)
        builder.int_mul(tmp_i, tmp_i, index)
        builder.fp_mul(t1, t0, scalar)
        if rng.random() < 0.25:
            builder.load(t0, b_base + rng.randrange(1 << 16) * ELEMENT_BYTES, addr_reg=tmp_i)
            builder.fp_add(t1, t1, t0)
        builder.store(b_base + i * ELEMENT_BYTES, t1, addr_reg=index)
        builder.int_op(index, index)
        builder.branch(taken=(i != iterations - 1), target=loop_pc, srcs=(index,))
    return builder.build()
