"""A composable scenario DSL on top of :class:`TraceBuilder`.

The hand-written suites build each member from exactly one kernel.  Real
programs change behaviour over time — a server alternates request
parsing (branchy), cache lookups (memory-bound) and response formatting
(compute) — and the out-of-order-commit machine reacts very differently
to each regime.  This module lets such workloads be *declared* instead
of hand-written:

:class:`Phase`
    A named slice of a scenario: a kernel plus a weight saying what
    share of the dynamic instruction budget it receives.

:class:`Scenario`
    An ordered phase sequence (optionally repeated, to model periodic
    behaviour).  ``build(size)`` splits the budget across the phases,
    derives one deterministic RNG stream per (scenario, phase,
    repetition) and concatenates the phase traces, relabelling each so
    per-instruction analyses can attribute cycles to phases.

:func:`interleave`
    Fine-grained kernel mixing: round-robins fixed-size blocks of
    several traces into one, modelling workloads whose regimes are
    interleaved at a scale smaller than the instruction window.

:func:`stream_rng` / :func:`stream_seed`
    Deterministic per-workload RNG streams.  Seeds derive from a stable
    hash of the string parts, so adding a phase to one scenario never
    perturbs another scenario's randomness — the property that keeps
    sweep-cache contents reproducible across runs and processes.

Example::

    SERVER = Scenario(
        "server",
        [
            Phase("parse", branchy_kernel, weight=1),
            Phase("lookup", gather_kernel, weight=2),
            Phase("respond", compute_kernel, weight=1),
        ],
        repeat=2,
    )
    trace = SERVER.build(4000)   # ~4000 dynamic instructions, 6 phases
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..common.errors import ConfigurationError, TraceError
from ..trace.trace import Trace

#: A phase kernel: ``kernel(size, rng) -> Trace`` where ``size`` is the
#: phase's dynamic-instruction budget and ``rng`` its private stream.
PhaseKernelFn = Callable[[int, random.Random], Trace]

#: Smallest budget handed to any phase kernel.
MIN_PHASE_SIZE = 16


def stream_seed(*parts: object) -> int:
    """A stable 63-bit seed derived from the string forms of ``parts``.

    Unlike ``hash()``, the derivation is identical across processes and
    Python versions, so traces built in sweep workers match the parent.
    """
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def stream_rng(*parts: object) -> random.Random:
    """A deterministic private RNG stream for the given identity parts."""
    return random.Random(stream_seed(*parts))


@dataclass(frozen=True)
class Phase:
    """One behavioural regime of a scenario."""

    name: str
    kernel: PhaseKernelFn
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a phase needs a non-empty name")
        if self.weight <= 0:
            raise ConfigurationError(
                f"phase {self.name!r}: weight must be positive, got {self.weight}"
            )


class Scenario:
    """An ordered, weighted, repeatable sequence of phases.

    ``seed`` shifts every phase's RNG stream at once, giving one knob
    for generating independent variants of the same scenario shape.
    """

    def __init__(
        self,
        name: str,
        phases: Sequence[Phase],
        *,
        seed: int = 0,
        repeat: int = 1,
    ) -> None:
        if not phases:
            raise ConfigurationError("a scenario needs at least one phase")
        if repeat < 1:
            raise ConfigurationError(f"scenario {name!r}: repeat must be >= 1, got {repeat}")
        seen = set()
        for phase in phases:
            if phase.name in seen:
                raise ConfigurationError(
                    f"scenario {name!r}: duplicate phase name {phase.name!r}"
                )
            seen.add(phase.name)
        self.name = name
        self.phases: Sequence[Phase] = tuple(phases)
        self.seed = seed
        self.repeat = repeat

    def phase_names(self) -> List[str]:
        return [phase.name for phase in self.phases]

    def phase_budgets(self, size: int) -> List[int]:
        """The per-phase instruction budgets for one repetition at ``size``."""
        per_repetition = max(size // self.repeat, MIN_PHASE_SIZE)
        total_weight = sum(phase.weight for phase in self.phases)
        return [
            max(MIN_PHASE_SIZE, int(per_repetition * phase.weight / total_weight))
            for phase in self.phases
        ]

    def build(self, size: int) -> Trace:
        """Generate ~``size`` dynamic instructions across the phase sequence."""
        if size < 1:
            raise ConfigurationError(f"scenario {self.name!r}: size must be positive, got {size}")
        budgets = self.phase_budgets(size)
        pieces: List[Trace] = []
        for repetition in range(self.repeat):
            for phase, budget in zip(self.phases, budgets):
                rng = stream_rng(self.name, phase.name, repetition, self.seed)
                piece = phase.kernel(budget, rng)
                pieces.append(piece.relabel(f"{self.name}.{phase.name}"))
        return _concat(pieces, name=self.name)

    def as_generator(self) -> Callable[[int], Trace]:
        """A plain ``fn(size) -> Trace`` view, e.g. for a ``SuiteMember``."""
        return self.build

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scenario({self.name!r}, phases={self.phase_names()}, "
            f"repeat={self.repeat}, seed={self.seed})"
        )


def _concat(pieces: Sequence[Trace], name: str) -> Trace:
    instructions = []
    for piece in pieces:
        instructions.extend(piece)
    return Trace(instructions, name=name)


def interleave(
    traces: Sequence[Trace],
    block: int = 32,
    name: str = "interleaved",
    rng: Optional[random.Random] = None,
) -> Trace:
    """Round-robin fixed-size blocks of several traces into one.

    Without ``rng`` the rotation is strict round-robin; with it, each
    turn picks a random non-exhausted trace — both fully deterministic
    for a given input.  The result mixes the source regimes at ``block``
    granularity, so a window larger than the block always holds a blend.
    """
    if not traces:
        raise TraceError("interleave needs at least one trace")
    if block < 1:
        raise TraceError(f"interleave block must be >= 1, got {block}")
    positions = [0] * len(traces)
    live = [i for i, trace in enumerate(traces) if len(trace) > 0]
    instructions = []
    turn = 0
    while live:
        if rng is None:
            choice = live[turn % len(live)]
            turn += 1
        else:
            choice = live[rng.randrange(len(live))]
        trace = traces[choice]
        start = positions[choice]
        stop = min(start + block, len(trace))
        for index in range(start, stop):
            instructions.append(trace[index])
        positions[choice] = stop
        if stop >= len(trace):
            live.remove(choice)
    return Trace(instructions, name=name)
