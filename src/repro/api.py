"""The one front door to the simulator: configure, observe, run.

Everything the repository runs — the CLI, the experiment/figure modules,
the sweep engine, the examples — goes through this module, and so should
user code::

    from repro import api
    from repro.common.config import cooo_config

    result = api.run(cooo_config(iq_size=64), my_trace)

    sim = api.Simulation(
        cooo_config(iq_size=64),
        probes=[MyProbe()],                         # observe events
        progress=lambda p: print(p.cycle),          # periodic callback
        stop_when=lambda p: p.committed >= 10_000,  # early-stop predicate
    )
    results = sim.run_suite(traces)

    grid = api.run_many([cfg_a, cfg_b], suite="spec2000fp_like", jobs=4)

Four layers sit underneath:

* the **machine registry** (:mod:`repro.core.registry_machines`) maps
  ``config.mode`` to a registered pipeline class — new machines plug in
  via ``@register_machine`` with no edits here;
* the **workload registry** (:mod:`repro.workloads.registry`) maps
  workload and suite names to parameterized trace generators — new
  scenarios plug in via ``@register_workload``/``register_suite`` and
  are immediately sweepable (``run_many(suite="my-suite")``);
* the **probe API** (:mod:`repro.core.probes`) attaches observers to a
  pipeline without touching its timing;
* the **sweep engine** (:mod:`repro.experiments.sweep`) executes
  (config × workload) grids in parallel with a persistent result cache;
  :func:`run_many` is its friendly face.

Traces themselves round-trip through versioned gzip-JSON files
(:func:`save_trace`/:func:`load_trace`, ``repro trace`` on the command
line), so expensive workloads are generated once and replayed.

``repro.core.processor.Processor`` and ``simulate`` remain as
deprecation shims over this module.
"""

from __future__ import annotations

from contextlib import nullcontext
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .common.config import ProcessorConfig, SamplingPlan
from .common.stats import StatsRegistry
from .core.probes import CallbackProbe, OccupancyProbe, Probe
from .core.registry_machines import (
    MachineSpec,
    create_pipeline,
    get_machine,
    machine_names,
    machine_specs,
    register_machine,
    unregister_machine,
)
from .core.result import SimulationResult
from .core.sampling import run_sampled
from .trace.io import load_trace, save_trace, trace_info
from .trace.trace import Trace
from .workloads.registry import (
    SuiteSpec,
    WorkloadSpec,
    build_workload,
    get_suite,
    get_workload,
    register_suite,
    register_workload,
    suite_names,
    suite_specs,
    unregister_suite,
    unregister_workload,
    workload_names,
    workload_specs,
)

#: Cycles between ``progress`` callbacks (overridable per Simulation).
DEFAULT_PROGRESS_INTERVAL = 8192

#: Per-cycle callbacks receive the live pipeline object.
ProgressFn = Callable[[object], None]
StopFn = Callable[[object], bool]


class Simulation:
    """One configured machine plus how to observe and drive it.

    The constructor validates the config once; :meth:`run` builds a
    fresh pipeline per trace (simulations never share mutable state), so
    one ``Simulation`` can be reused across a whole suite.

    ``probes`` are attached *in addition to* the built-in default probes
    (the occupancy accounting of Figures 7/11); pass
    ``default_probes=False`` to run bare — the fastest configuration, at
    the price of the occupancy statistics.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        *,
        probes: Sequence[Probe] = (),
        default_probes: bool = True,
        max_cycles: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
        progress_interval: int = DEFAULT_PROGRESS_INTERVAL,
        stop_when: Optional[StopFn] = None,
        force_per_cycle: bool = False,
        sampling: Optional[SamplingPlan] = None,
        sample_jobs: Optional[int] = None,
        checkpoint_dir=None,
        checkpoint_max_bytes: Optional[int] = None,
        telemetry=None,
    ) -> None:
        self.config = config.validate()
        self.probes: List[Probe] = list(probes)
        self.default_probes = default_probes
        self.max_cycles = max_cycles
        self.progress = progress
        if progress_interval < 1:
            raise ValueError(f"progress_interval must be >= 1, got {progress_interval}")
        self.progress_interval = progress_interval
        self.stop_when = stop_when
        #: Debug escape hatch: step every simulated cycle instead of the
        #: event-driven cycle-skipping kernel (results are bit-identical).
        self.force_per_cycle = force_per_cycle
        #: Opt-in statistical sampling (see :mod:`repro.core.sampling`):
        #: fast-forward between detailed windows and extrapolate IPC with
        #: a confidence interval.  ``None`` (the default) simulates every
        #: cycle exactly as before.
        if sampling is not None:
            sampling.validate()
            if stop_when is not None:
                raise ValueError(
                    "stop_when cannot be combined with sampling: a sampled run "
                    "is a sequence of window simulations, not one early-stoppable run"
                )
        self.sampling = sampling
        #: Opt-in execution knobs for sampled runs (see
        #: :func:`repro.core.sampling.run_sampled`): fan detailed windows
        #: out over ``sample_jobs`` worker processes and/or reuse the
        #: functional warm-up pass via keyed checkpoint files under
        #: ``checkpoint_dir``.  Pure performance levers — the result is
        #: bit-identical with or without them — so neither participates
        #: in any cache key.
        if sample_jobs is not None and sample_jobs < 1:
            raise ValueError(f"sample_jobs must be >= 1, got {sample_jobs}")
        if (sample_jobs is not None or checkpoint_dir is not None) and sampling is None:
            raise ValueError(
                "sample_jobs/checkpoint_dir only apply to sampled runs; pass a "
                "SamplingPlan via sampling="
            )
        self.sample_jobs = sample_jobs
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_max_bytes = checkpoint_max_bytes
        #: Opt-in observability (see :mod:`repro.telemetry`): a
        #: :class:`~repro.telemetry.TelemetrySession` whose probes attach
        #: to every run and whose tracer records per-phase spans.  ``None``
        #: (the default) attaches nothing and reads no clock — results are
        #: bit-identical either way, telemetry probes are pure observers.
        self.telemetry = telemetry

    @property
    def machine(self) -> MachineSpec:
        """The registered machine this simulation will instantiate."""
        return get_machine(self.config.mode)

    def attach(self, probe: Probe) -> "Simulation":
        """Add a probe to every future :meth:`run`; returns self to chain."""
        self.probes.append(probe)
        return self

    def pipeline(self, trace: Trace, stats: Optional[StatsRegistry] = None):
        """Build (but do not run) a pipeline — for step-by-step driving."""
        return create_pipeline(
            self.config,
            trace,
            stats,
            probes=self.probes,
            default_probes=self.default_probes,
        )

    def run(self, trace: Trace, max_cycles: Optional[int] = None) -> SimulationResult:
        """Simulate ``trace`` to completion (or early stop) on a fresh pipeline."""
        probes = self.probes
        tracer = None
        if self.telemetry is not None:
            probes = [*probes, *self.telemetry.probes()]
            tracer = self.telemetry.tracer
        span = (
            tracer.span(
                f"simulate:{trace.name}",
                category="simulate",
                machine=self.config.name or self.config.mode,
                instructions=len(trace),
            )
            if tracer is not None
            else nullcontext()
        )
        with span:
            if self.sampling is not None:
                return run_sampled(
                    self.config,
                    trace,
                    self.sampling,
                    probes=probes,
                    default_probes=self.default_probes,
                    force_per_cycle=self.force_per_cycle,
                    max_cycles=max_cycles if max_cycles is not None else self.max_cycles,
                    progress=self.progress,
                    progress_interval=self.progress_interval,
                    tracer=tracer,
                    parallel_windows=self.sample_jobs,
                    checkpoint_dir=self.checkpoint_dir,
                    checkpoint_max_bytes=self.checkpoint_max_bytes,
                )
            pipeline = create_pipeline(
                self.config,
                trace,
                None,
                probes=probes,
                default_probes=self.default_probes,
            )
            return pipeline.run(
                max_cycles=max_cycles if max_cycles is not None else self.max_cycles,
                progress=self.progress,
                progress_interval=self.progress_interval,
                stop=self.stop_when,
                force_per_cycle=self.force_per_cycle,
            )

    def run_suite(
        self,
        traces: Mapping[str, Trace],
        max_cycles: Optional[int] = None,
    ) -> Dict[str, SimulationResult]:
        """Run every trace of a suite; results keyed by workload name."""
        return {name: self.run(trace, max_cycles) for name, trace in traces.items()}


def run(
    config: ProcessorConfig,
    trace: Trace,
    *,
    probes: Sequence[Probe] = (),
    default_probes: bool = True,
    max_cycles: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    progress_interval: int = DEFAULT_PROGRESS_INTERVAL,
    stop_when: Optional[StopFn] = None,
    force_per_cycle: bool = False,
    sampling: Optional[SamplingPlan] = None,
    sample_jobs: Optional[int] = None,
    checkpoint_dir=None,
    checkpoint_max_bytes: Optional[int] = None,
    telemetry=None,
) -> SimulationResult:
    """Run one trace on one configuration — the canonical one-liner."""
    return Simulation(
        config,
        probes=probes,
        default_probes=default_probes,
        max_cycles=max_cycles,
        progress=progress,
        progress_interval=progress_interval,
        stop_when=stop_when,
        force_per_cycle=force_per_cycle,
        sampling=sampling,
        sample_jobs=sample_jobs,
        checkpoint_dir=checkpoint_dir,
        checkpoint_max_bytes=checkpoint_max_bytes,
        telemetry=telemetry,
    ).run(trace)


def run_many(
    configs: Sequence[ProcessorConfig],
    traces: Optional[Mapping[str, Trace]] = None,
    *,
    suite: str = "spec2000fp_like",
    scale: Optional[float] = None,
    workloads: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache=None,
    use_cache: bool = True,
    probes: Sequence[Probe] = (),
    max_cycles: Optional[int] = None,
    stop_when: Optional[StopFn] = None,
    progress: Optional[Callable[[str], None]] = None,
    name: str = "api-run-many",
    sampling: Optional[SamplingPlan] = None,
    sample_jobs: Optional[int] = None,
    checkpoint_dir=None,
    telemetry=None,
    cell_timeout: Optional[float] = None,
    retry=None,
    injector=None,
    journal=None,
    resume: bool = False,
) -> List[Tuple[ProcessorConfig, Dict[str, SimulationResult]]]:
    """Run every config over every workload; results in config order.

    Two modes:

    * **Suite mode** (``traces`` omitted): the (config × workload) grid
      of ``suite`` at ``scale`` executes on the sweep engine — ``jobs``
      worker processes, optional persistent ``cache``
      (a :class:`~repro.experiments.sweep.ResultCache`), per-cell
      ``progress`` messages.  Probes cannot cross process/cache
      boundaries, so ``probes``/``stop_when``/``max_cycles`` must be
      unset.
    ``sampling`` applies a :class:`~repro.common.config.SamplingPlan` to
    every cell in either mode; sampled cells get their own cache keys,
    so sampled and exact results never collide.  ``sample_jobs`` and
    ``checkpoint_dir`` are the sampled-run performance levers (parallel
    detailed windows, reusable warm-state checkpoints — see
    :func:`repro.core.sampling.run_sampled`); results are bit-identical
    with or without them and cache keys are untouched.

    ``use_cache=False`` is a hard guard that forces every cell to
    simulate live, overriding any ``cache`` argument — validation runs
    (the fuzzer, the differential oracles) use it so their results can
    neither poison nor be poisoned by the persistent sweep cache.

    The fault-tolerance knobs (``cell_timeout``, ``retry``, ``injector``,
    ``journal``, ``resume``) apply to suite mode only and are handed to
    the :class:`~repro.experiments.sweep.SweepEngine` unchanged; see its
    docstring.  Explicit-trace mode rejects them, like ``jobs``/``cache``.

    * **Explicit-trace mode** (``traces`` given): each config runs the
      given traces serially in-process, with probe/early-stop support
      and no caching.  The *same* probe instances observe every
      (config, workload) run in sequence; a probe that resets its state
      in ``on_attach`` therefore ends holding only the last run's data —
      accumulate into external state (e.g. via ``CallbackProbe``) to
      gather across runs.

    Returns ``[(config, {workload: result}), ...]`` in declared order.
    """
    from .experiments.runner import DEFAULT_SCALE
    from .experiments.sweep import SweepEngine, SweepSpec

    if not use_cache:
        cache = None

    if traces is not None:
        if jobs != 1 or cache is not None:
            raise ValueError(
                "explicit traces run serially and uncached; use suite mode "
                "(omit traces) for jobs/cache"
            )
        if (
            cell_timeout is not None
            or retry is not None
            or injector is not None
            or journal is not None
            or resume
        ):
            raise ValueError(
                "cell_timeout/retry/injector/journal/resume apply to suite "
                "mode (omit traces); explicit traces run bare"
            )
        out: List[Tuple[ProcessorConfig, Dict[str, SimulationResult]]] = []
        for config in configs:
            sim = Simulation(
                config,
                probes=probes,
                max_cycles=max_cycles,
                stop_when=stop_when,
                sampling=sampling,
                sample_jobs=sample_jobs,
                checkpoint_dir=checkpoint_dir,
                telemetry=telemetry,
            )
            results: Dict[str, SimulationResult] = {}
            for workload, trace in traces.items():
                results[workload] = sim.run(trace)
                if progress is not None:
                    progress(
                        f"{config.name or config.mode} x {workload}: "
                        f"ipc={results[workload].ipc:.4f}"
                    )
            out.append((config, results))
        return out

    if probes or stop_when is not None or max_cycles is not None:
        raise ValueError(
            "probes/stop_when/max_cycles require explicit traces "
            "(suite mode fans out over processes and a persistent cache)"
        )
    spec = SweepSpec(
        name,
        list(configs),
        scale=scale if scale is not None else DEFAULT_SCALE,
        suite=suite,
        workloads=workloads,
        sampling=sampling,
    )
    engine = SweepEngine(
        jobs=jobs,
        cache=cache,
        progress=progress,
        telemetry=telemetry,
        cell_timeout=cell_timeout,
        retry=retry,
        injector=injector,
        journal=journal,
        resume=resume,
        sample_jobs=sample_jobs,
        checkpoint_dir=checkpoint_dir,
    )
    return list(engine.run(spec).per_config())


def fuzz(cases: int, *, seed: int = 0, **kwargs):
    """Run a coverage-guided differential fuzz campaign; see :mod:`repro.fuzz`.

    A thin face over :func:`repro.fuzz.run_fuzz` (imported lazily — the
    fuzzer sits above this module).  Campaigns always simulate live
    through :func:`run`; they never touch the persistent sweep cache.
    Returns a :class:`repro.fuzz.FuzzReport`.
    """
    from .fuzz import run_fuzz

    return run_fuzz(cases, seed=seed, **kwargs)


def lint(path=None, *, baseline=None):
    """Run the simulator-aware static analyzer; see :mod:`repro.analysis.lint`.

    A thin face over :class:`repro.analysis.lint.LintEngine` (imported
    lazily — the analyzer sits above this module).  Lints the installed
    ``repro`` package by default, or ``path`` when given.  Returns a
    :class:`repro.analysis.lint.LintReport`; ``report.ok`` is the gate
    CI enforces.
    """
    from .analysis.lint import LintEngine

    root = Path(path) if path is not None else None
    baseline_path = Path(baseline) if baseline is not None else None
    return LintEngine(root=root, baseline_path=baseline_path).run()


def replay_fuzz_corpus(directory, **kwargs):
    """Replay every fuzz repro file under ``directory``; see :mod:`repro.fuzz`.

    Returns ``[(path, [OracleVerdict, ...]), ...]`` in file-name order;
    every verdict of a healthy corpus is ``ok``.
    """
    from .fuzz import replay_corpus

    return replay_corpus(Path(directory), **kwargs)


__all__ = [
    "DEFAULT_PROGRESS_INTERVAL",
    "CallbackProbe",
    "MachineSpec",
    "OccupancyProbe",
    "Probe",
    "SamplingPlan",
    "Simulation",
    "SuiteSpec",
    "WorkloadSpec",
    "build_workload",
    "create_pipeline",
    "fuzz",
    "get_machine",
    "get_suite",
    "lint",
    "get_workload",
    "load_trace",
    "machine_names",
    "machine_specs",
    "register_machine",
    "register_suite",
    "register_workload",
    "replay_fuzz_corpus",
    "run",
    "run_many",
    "run_sampled",
    "save_trace",
    "suite_names",
    "suite_specs",
    "trace_info",
    "unregister_machine",
    "unregister_suite",
    "unregister_workload",
    "workload_names",
    "workload_specs",
]
