"""Simulator throughput benchmarks and the ``BENCH_simulator.json`` recorder.

Not paper figures: these benchmarks measure the *simulator's* own speed
(simulated cycles and committed instructions per wall-clock second) so
the performance trajectory of the codebase is tracked release over
release.  The headline benchmarks put each machine in the regime the
paper (and ROADMAP) cares most about — a kilo-instruction window waiting
on ~500-cycle main-memory loads — which is exactly where the
event-driven cycle-skipping kernel pays off; the ``*-daxpy`` variants
keep the fully-busy (no skippable cycles) path honest.

Three entry points share this module:

* ``repro bench`` — the CLI subcommand;
* ``benchmarks/record.py`` — the standalone script;
* ``benchmarks/test_bench_simulator_throughput.py`` — the pytest
  benchmarks and the CI speedup guard, which import :data:`BENCHMARKS`
  so all three always measure the same thing.

Results append to ``BENCH_simulator.json`` (a JSON array, one entry per
recording) via :func:`append_record`.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .common.config import ProcessorConfig, cooo_config, scaled_baseline
from .trace.trace import Trace


def _default_record_path() -> str:
    """The tracked BENCH_simulator.json when run from a source checkout.

    Resolved against the repository root (two levels above this
    package) so ``repro bench`` appends to the committed history
    regardless of the invoking directory; outside a checkout (installed
    package, no repo file) it falls back to the working directory.
    """
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    candidate = os.path.join(repo_root, "BENCH_simulator.json")
    if os.path.exists(candidate):
        return candidate
    return "BENCH_simulator.json"


#: Default output file for recorded results.
DEFAULT_RECORD_PATH = _default_record_path()

#: Memory latency of the headline regime (the paper's Figure 9 midpoint).
BENCH_MEMORY_LATENCY = 500


def _chase_trace() -> Trace:
    """The headline workload: four dependent pointer chains, 500-cycle misses.

    Serial within each chain, so kilo-instruction windows spend most
    cycles waiting on main memory — the paper's target regime and the
    simulator's historical worst case.
    """
    from .workloads import multi_pointer_chase

    return multi_pointer_chase(hops=1200, chains=4)


def _daxpy_trace() -> Trace:
    """The busy-path workload: streaming FP with full memory parallelism."""
    from .workloads import daxpy

    return daxpy(elements=300)


@dataclass(frozen=True)
class BenchmarkSpec:
    """One named throughput benchmark: a machine config over a trace."""

    name: str
    config_factory: Callable[[], ProcessorConfig]
    trace_factory: Callable[[], Trace]

    def config(self) -> ProcessorConfig:
        return self.config_factory()

    def trace(self) -> Trace:
        return self.trace_factory()


#: The tracked benchmarks, headline (memory-bound) first.
BENCHMARKS: List[BenchmarkSpec] = [
    BenchmarkSpec(
        "baseline-128",
        lambda: scaled_baseline(window=128, memory_latency=BENCH_MEMORY_LATENCY),
        _chase_trace,
    ),
    BenchmarkSpec(
        "baseline-4096",
        lambda: scaled_baseline(window=4096, memory_latency=BENCH_MEMORY_LATENCY),
        _chase_trace,
    ),
    BenchmarkSpec(
        "cooo-64-1024",
        lambda: cooo_config(iq_size=64, sliq_size=1024, memory_latency=BENCH_MEMORY_LATENCY),
        _chase_trace,
    ),
    BenchmarkSpec(
        "baseline-4096-daxpy",
        lambda: scaled_baseline(window=4096, memory_latency=BENCH_MEMORY_LATENCY),
        _daxpy_trace,
    ),
    BenchmarkSpec(
        "cooo-64-1024-daxpy",
        lambda: cooo_config(iq_size=64, sliq_size=1024, memory_latency=BENCH_MEMORY_LATENCY),
        _daxpy_trace,
    ),
]


def benchmark_names() -> List[str]:
    return [spec.name for spec in BENCHMARKS]


def run_benchmark(
    spec: BenchmarkSpec, *, force_per_cycle: bool = False, repeats: int = 3
) -> Dict[str, object]:
    """Time one benchmark (best of ``repeats``) and return its result row."""
    from .api import run as simulate

    trace = spec.trace()
    config = spec.config()
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = simulate(config, trace, force_per_cycle=force_per_cycle)
        best = min(best, time.perf_counter() - started)
    assert result is not None
    return {
        "name": spec.name,
        "seconds": round(best, 6),
        "cycles": result.cycles,
        "instructions": result.committed_instructions,
        "sim_cycles_per_sec": round(result.cycles / best) if best else None,
        "sim_instructions_per_sec": (
            round(result.committed_instructions / best) if best else None
        ),
        "ipc": round(result.ipc, 4),
        "kernel": "per-cycle" if force_per_cycle else "event-driven",
    }


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    *,
    force_per_cycle: bool = False,
    repeats: int = 3,
) -> List[Dict[str, object]]:
    """Run the named benchmarks (default: all) and return their rows."""
    selected = list(BENCHMARKS)
    if names:
        by_name = {spec.name: spec for spec in BENCHMARKS}
        unknown = sorted(set(names) - set(by_name))
        if unknown:
            raise KeyError(
                f"unknown benchmark(s) {unknown}; available: {benchmark_names()}"
            )
        selected = [by_name[name] for name in names]
    return [
        run_benchmark(spec, force_per_cycle=force_per_cycle, repeats=repeats)
        for spec in selected
    ]


def append_record(
    path: str,
    results: Sequence[Dict[str, object]],
    *,
    note: str = "",
) -> Dict[str, object]:
    """Append one recording to the JSON-array file at ``path``.

    The file holds the machine-readable performance trajectory: each
    entry is ``{timestamp, version, python, platform, note, results}``.
    A missing or empty file starts a new array; a corrupt file raises
    rather than silently discarding history.
    """
    from . import __version__

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "note": note,
        "results": list(results),
    }
    try:
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read().strip()
        history = json.loads(content) if content else []
        if not isinstance(history, list):
            raise ValueError(f"{path} does not hold a JSON array")
    except FileNotFoundError:
        history = []
    history.append(entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
    return entry


def add_bench_arguments(parser) -> None:
    """Attach the benchmark driver's arguments to an argparse parser.

    Shared between the standalone driver (:func:`main`, used by
    ``benchmarks/record.py``) and the ``repro bench`` subcommand, so
    both expose the exact same interface.
    """
    parser.add_argument(
        "names",
        nargs="*",
        help=f"benchmarks to run (default: all of {', '.join(benchmark_names())})",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_RECORD_PATH,
        help=f"JSON file to append results to (default: {DEFAULT_RECORD_PATH})",
    )
    parser.add_argument(
        "--no-record", action="store_true", help="print results without recording them"
    )
    parser.add_argument(
        "--per-cycle",
        action="store_true",
        help="benchmark the force_per_cycle debug kernel instead of the event-driven one",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions per benchmark (best kept)"
    )
    parser.add_argument("--note", default="", help="free-form note stored with the record")


def run_from_args(args) -> int:
    """Execute the benchmark driver for parsed :func:`add_bench_arguments` args."""
    try:
        results = run_benchmarks(
            args.names or None, force_per_cycle=args.per_cycle, repeats=args.repeats
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    header = f"{'benchmark':<22} {'seconds':>9} {'cycles':>9} {'Mcycles/s':>10} {'ipc':>7}"
    print(header)
    print("-" * len(header))
    for row in results:
        mcps = (row["sim_cycles_per_sec"] or 0) / 1e6
        print(
            f"{row['name']:<22} {row['seconds']:>9.3f} {row['cycles']:>9} "
            f"{mcps:>10.2f} {row['ipc']:>7.3f}"
        )
    if not args.no_record:
        entry = append_record(args.out, results, note=args.note)
        print(f"\nappended to {args.out} ({entry['timestamp']}, kernel={results[0]['kernel']})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line driver shared by ``repro bench`` and benchmarks/record.py."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="run the simulator throughput benchmarks and record the results",
    )
    add_bench_arguments(parser)
    return run_from_args(parser.parse_args(argv))
