"""Simulator throughput benchmarks and the ``BENCH_simulator.json`` recorder.

Not paper figures: these benchmarks measure the *simulator's* own speed
(simulated cycles and committed instructions per wall-clock second) so
the performance trajectory of the codebase is tracked release over
release.  The headline benchmarks put each machine in the regime the
paper (and ROADMAP) cares most about — a kilo-instruction window waiting
on ~500-cycle main-memory loads — which is exactly where the
event-driven cycle-skipping kernel pays off; the ``*-daxpy`` variants
keep the fully-busy (no skippable cycles) path honest.

Three entry points share this module:

* ``repro bench`` — the CLI subcommand;
* ``benchmarks/record.py`` — the standalone script;
* ``benchmarks/test_bench_simulator_throughput.py`` — the pytest
  benchmarks and the CI speedup guard, which import :data:`BENCHMARKS`
  so all three always measure the same thing.

Results append to ``BENCH_simulator.json`` (a JSON array, one entry per
recording) via :func:`append_record`.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .common.config import ProcessorConfig, SamplingPlan, cooo_config, scaled_baseline
from .trace.trace import Trace


def _default_record_path() -> str:
    """The tracked BENCH_simulator.json when run from a source checkout.

    Resolved against the repository root (two levels above this
    package) so ``repro bench`` appends to the committed history
    regardless of the invoking directory; outside a checkout (installed
    package, no repo file) it falls back to the working directory.
    """
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    candidate = os.path.join(repo_root, "BENCH_simulator.json")
    if os.path.exists(candidate):
        return candidate
    return "BENCH_simulator.json"


#: Default output file for recorded results.
DEFAULT_RECORD_PATH = _default_record_path()

#: Memory latency of the headline regime (the paper's Figure 9 midpoint).
BENCH_MEMORY_LATENCY = 500


def _chase_trace() -> Trace:
    """The headline workload: four dependent pointer chains, 500-cycle misses.

    Serial within each chain, so kilo-instruction windows spend most
    cycles waiting on main memory — the paper's target regime and the
    simulator's historical worst case.
    """
    from .workloads import multi_pointer_chase

    return multi_pointer_chase(hops=1200, chains=4)


def _daxpy_trace() -> Trace:
    """The busy-path workload: streaming FP with full memory parallelism."""
    from .workloads import daxpy

    return daxpy(elements=300)


def _daxpy_xl_trace() -> Trace:
    """XL-scale streaming FP (~200k instructions): the sampled-execution regime."""
    from .workloads import daxpy

    return daxpy(elements=30_000)


def _dense_branches_xl_trace() -> Trace:
    """XL-scale branch storm (~160k instructions): predictor-warmth stressor."""
    from .workloads import dense_branches

    return dense_branches(iterations=20_000)


#: Plan used by the streaming ``*-sampled`` benchmarks: ~4% of the trace
#: simulated in detail; windows sized for the in-order-commit baseline (see
#: XL_SAMPLING in repro.workloads.xl for checkpointed-machine sizing).
BENCH_SAMPLING = SamplingPlan(period=50_000, window=1_500, warmup=500)

#: Plan for the branch-storm benchmark: gshare self-trains its table only
#: under detailed execution (see GSharePredictor.warm), so branchy regimes
#: need a long detailed warmup before each measured window.
BENCH_BRANCHY_SAMPLING = SamplingPlan(period=50_000, window=4_000, warmup=5_000)


@dataclass(frozen=True)
class BenchmarkSpec:
    """One named throughput benchmark: a machine config over a trace.

    ``sampling`` makes the benchmark a sampled-execution run (the
    wall-clock then measures fast-forward + detailed windows, and the
    recorded IPC is the extrapolated estimate).  ``sample_jobs`` fans the
    detailed windows over worker processes, with a warm-state checkpoint
    directory shared across the timing repeats — the parallel-sampling
    configuration the sweep engine uses, with a bit-identical result.
    """

    name: str
    config_factory: Callable[[], ProcessorConfig]
    trace_factory: Callable[[], Trace]
    sampling: Optional[SamplingPlan] = None
    sample_jobs: Optional[int] = None

    def config(self) -> ProcessorConfig:
        return self.config_factory()

    def trace(self) -> Trace:
        return self.trace_factory()


#: The tracked benchmarks, headline (memory-bound) first.
BENCHMARKS: List[BenchmarkSpec] = [
    BenchmarkSpec(
        "baseline-128",
        lambda: scaled_baseline(window=128, memory_latency=BENCH_MEMORY_LATENCY),
        _chase_trace,
    ),
    BenchmarkSpec(
        "baseline-4096",
        lambda: scaled_baseline(window=4096, memory_latency=BENCH_MEMORY_LATENCY),
        _chase_trace,
    ),
    BenchmarkSpec(
        "cooo-64-1024",
        lambda: cooo_config(iq_size=64, sliq_size=1024, memory_latency=BENCH_MEMORY_LATENCY),
        _chase_trace,
    ),
    BenchmarkSpec(
        "baseline-4096-daxpy",
        lambda: scaled_baseline(window=4096, memory_latency=BENCH_MEMORY_LATENCY),
        _daxpy_trace,
    ),
    BenchmarkSpec(
        "cooo-64-1024-daxpy",
        lambda: cooo_config(iq_size=64, sliq_size=1024, memory_latency=BENCH_MEMORY_LATENCY),
        _daxpy_trace,
    ),
]

#: XL-scale benchmarks: too slow for the default ``repro bench`` run (the
#: exact entries exist as the denominator of the sampled-speedup guard),
#: runnable by name and from benchmarks/test_bench_sampling.py.
XL_BENCHMARKS: List[BenchmarkSpec] = [
    BenchmarkSpec(
        "baseline-daxpy-xl",
        lambda: scaled_baseline(window=4096, memory_latency=BENCH_MEMORY_LATENCY),
        _daxpy_xl_trace,
    ),
    BenchmarkSpec(
        "baseline-daxpy-xl-sampled",
        lambda: scaled_baseline(window=4096, memory_latency=BENCH_MEMORY_LATENCY),
        _daxpy_xl_trace,
        sampling=BENCH_SAMPLING,
    ),
    BenchmarkSpec(
        "baseline-daxpy-xl-par4",
        lambda: scaled_baseline(window=4096, memory_latency=BENCH_MEMORY_LATENCY),
        _daxpy_xl_trace,
        sampling=BENCH_SAMPLING,
        sample_jobs=4,
    ),
    BenchmarkSpec(
        "baseline-branches-xl",
        lambda: scaled_baseline(window=4096, memory_latency=BENCH_MEMORY_LATENCY),
        _dense_branches_xl_trace,
    ),
    BenchmarkSpec(
        "baseline-branches-xl-sampled",
        lambda: scaled_baseline(window=4096, memory_latency=BENCH_MEMORY_LATENCY),
        _dense_branches_xl_trace,
        sampling=BENCH_BRANCHY_SAMPLING,
    ),
]


def all_benchmarks() -> List[BenchmarkSpec]:
    """Every defined benchmark (default set plus the XL/sampled set)."""
    return list(BENCHMARKS) + list(XL_BENCHMARKS)


def benchmark_names() -> List[str]:
    return [spec.name for spec in all_benchmarks()]


def run_benchmark(
    spec: BenchmarkSpec,
    *,
    force_per_cycle: bool = False,
    repeats: int = 3,
    sampling: Optional[SamplingPlan] = None,
    sample_jobs: Optional[int] = None,
) -> Dict[str, object]:
    """Time one benchmark (best of ``repeats``) and return its result row.

    ``sampling``/``sample_jobs`` override the spec's own settings
    (``--sample``/``--sample-jobs`` on the CLI); the spec's apply when an
    override is None.  Parallel-sampled timings share one warm-state
    checkpoint directory across the repeats, so the recorded best-of
    measures the steady state a sweep sees: warm pass already on disk,
    wall-clock dominated by the fanned-out detailed windows.
    """
    import tempfile

    from .api import run as simulate

    trace = spec.trace()
    config = spec.config()
    plan = sampling if sampling is not None else spec.sampling
    jobs = sample_jobs if sample_jobs is not None else spec.sample_jobs
    if plan is None:
        jobs = None
    best = float("inf")
    result = None
    best_tracer = None
    checkpoints = (
        tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") if jobs else None
    )
    try:
        for _ in range(max(1, repeats)):
            # Sampled runs carry a spans-only telemetry session (no probes,
            # a handful of clock reads per segment) so the recorded row can
            # split wall-clock into fast-forward vs detailed-window time.
            session = None
            if plan is not None:
                from .telemetry import TelemetrySession

                session = TelemetrySession(timeline=False, stalls=False)
            started = time.perf_counter()
            result = simulate(
                config,
                trace,
                force_per_cycle=force_per_cycle,
                sampling=plan,
                sample_jobs=jobs,
                checkpoint_dir=checkpoints.name if checkpoints is not None else None,
                telemetry=session,
            )
            elapsed = time.perf_counter() - started
            if elapsed < best:
                best = elapsed
                best_tracer = session.tracer if session is not None else None
    finally:
        if checkpoints is not None:
            checkpoints.cleanup()
    assert result is not None
    row: Dict[str, object] = {
        "name": spec.name,
        "seconds": round(best, 6),
        "cycles": result.cycles,
        "instructions": result.committed_instructions,
        "sim_cycles_per_sec": round(result.cycles / best) if best else None,
        "sim_instructions_per_sec": (
            round(result.committed_instructions / best) if best else None
        ),
        "ipc": round(result.ipc, 4),
        "kernel": "per-cycle" if force_per_cycle else "event-driven",
    }
    if plan is not None:
        row["sampling"] = plan.to_dict()
        row["trace_instructions"] = len(trace)
        row["ipc_ci95"] = round(result.ipc_ci95, 4)
        if jobs:
            row["sample_jobs"] = jobs
        if best_tracer is not None:
            # Where the best repeat's wall-clock went: functional
            # fast-forward between windows vs detailed window execution
            # (serial windows each open a span; a parallel fan-out opens
            # one span around the whole pool run).
            row["fast_forward_seconds"] = round(
                best_tracer.total("sampling:fast-forward"), 6
            )
            row["window_seconds"] = round(
                best_tracer.total("sampling:window")
                + best_tracer.total("sampling:parallel-windows"),
                6,
            )
    return row


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    *,
    force_per_cycle: bool = False,
    repeats: int = 3,
    sampling: Optional[SamplingPlan] = None,
    sample_jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Run the named benchmarks (default: the core set) and return their rows.

    The XL benchmarks only run when named explicitly — their exact
    variants take several seconds each, which would make a casual
    ``repro bench`` sluggish.
    """
    selected = list(BENCHMARKS)
    if names:
        by_name = {spec.name: spec for spec in all_benchmarks()}
        unknown = sorted(set(names) - set(by_name))
        if unknown:
            raise KeyError(
                f"unknown benchmark(s) {unknown}; available: {benchmark_names()}"
            )
        selected = [by_name[name] for name in names]
    return [
        run_benchmark(
            spec,
            force_per_cycle=force_per_cycle,
            repeats=repeats,
            sampling=sampling,
            sample_jobs=sample_jobs,
        )
        for spec in selected
    ]


def append_record(
    path: str,
    results: Sequence[Dict[str, object]],
    *,
    note: str = "",
) -> Dict[str, object]:
    """Append one recording to the JSON-array file at ``path``.

    The file holds the machine-readable performance trajectory: each
    entry is ``{timestamp, version, python, platform, note, results}``.
    A missing or empty file starts a new array; a corrupt file raises
    rather than silently discarding history.
    """
    from . import __version__

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "note": note,
        "results": list(results),
    }
    try:
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read().strip()
        history = json.loads(content) if content else []
        if not isinstance(history, list):
            raise ValueError(f"{path} does not hold a JSON array")
    except FileNotFoundError:
        history = []
    history.append(entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
    return entry


#: ``repro bench --compare`` fails on wall-clock regressions beyond this.
COMPARE_THRESHOLD = 0.25

#: ``--compare`` also fails when a sampled benchmark's 95% CI half-width
#: grows past this factor — speed bought by losing accuracy is a
#: regression, not a win.
CI_GROWTH_LIMIT = 2.0


def compare_latest(
    path: str,
    threshold: float = COMPARE_THRESHOLD,
    ci_growth_limit: float = CI_GROWTH_LIMIT,
) -> int:
    """Diff the two newest recordings in ``path``; nonzero on regression.

    For every benchmark name present in both of the two most recent
    entries, compares wall-clock seconds; a benchmark that got more than
    ``threshold`` (default 25%) slower is a regression.  Sampled rows
    (both carrying ``ipc_ci95``) are additionally held to accuracy: a
    95% CI half-width that grew past ``ci_growth_limit`` (default 2x)
    times the earlier width is an accuracy regression even if the run
    got faster.  Returns 0 when clean, 1 on any regression, 2 when the
    file has fewer than two entries or no common benchmarks (nothing to
    compare is a gate failure, not a pass).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            history = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(history, list) or len(history) < 2:
        print(
            f"error: {path} holds {len(history) if isinstance(history, list) else 0} "
            f"recording(s); --compare needs at least two",
            file=sys.stderr,
        )
        return 2
    older, newer = history[-2], history[-1]
    older_rows = {row["name"]: row for row in older.get("results", [])}
    newer_rows = {row["name"]: row for row in newer.get("results", [])}
    common = [name for name in newer_rows if name in older_rows]
    if not common:
        print(
            f"error: the two newest recordings in {path} share no benchmark names",
            file=sys.stderr,
        )
        return 2
    print(
        f"comparing {older.get('timestamp')} ({older.get('note') or 'no note'}) -> "
        f"{newer.get('timestamp')} ({newer.get('note') or 'no note'})"
    )
    header = f"{'benchmark':<28} {'before s':>10} {'after s':>10} {'change':>8}"
    print(header)
    print("-" * len(header))
    regressions = []
    accuracy_regressions = []
    for name in common:
        before = float(older_rows[name]["seconds"])
        after = float(newer_rows[name]["seconds"])
        change = (after - before) / before if before else 0.0
        flag = ""
        if before and change > threshold:
            regressions.append(name)
            flag = "  << REGRESSION"
        ci_before = older_rows[name].get("ipc_ci95")
        ci_after = newer_rows[name].get("ipc_ci95")
        if ci_before is not None and ci_after is not None:
            # A recorded half-width of 0 means a single window or an
            # exactly repeating kernel — nothing meaningful to ratio.
            if float(ci_before) > 0 and float(ci_after) > ci_growth_limit * float(
                ci_before
            ):
                accuracy_regressions.append(name)
                flag += (
                    f"  << ACCURACY REGRESSION "
                    f"(ci95 {float(ci_before):.4f} -> {float(ci_after):.4f})"
                )
        print(f"{name:<28} {before:>10.3f} {after:>10.3f} {change:>+7.1%}{flag}")
    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed more than "
            f"{threshold:.0%}: {', '.join(regressions)}",
            file=sys.stderr,
        )
    if accuracy_regressions:
        print(
            f"\n{len(accuracy_regressions)} sampled benchmark(s) widened their 95% "
            f"CI more than {ci_growth_limit:g}x: {', '.join(accuracy_regressions)}",
            file=sys.stderr,
        )
    if regressions or accuracy_regressions:
        return 1
    print(
        f"\nno benchmark regressed more than {threshold:.0%} "
        f"(sampled CI widths within {ci_growth_limit:g}x)"
    )
    return 0


def add_bench_arguments(parser) -> None:
    """Attach the benchmark driver's arguments to an argparse parser.

    Shared between the standalone driver (:func:`main`, used by
    ``benchmarks/record.py``) and the ``repro bench`` subcommand, so
    both expose the exact same interface.
    """
    core_names = ", ".join(spec.name for spec in BENCHMARKS)
    xl_names = ", ".join(spec.name for spec in XL_BENCHMARKS)
    parser.add_argument(
        "names",
        nargs="*",
        help=f"benchmarks to run (default: {core_names}; the XL set runs "
        f"only when named: {xl_names})",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_RECORD_PATH,
        help=f"JSON file to append results to (default: {DEFAULT_RECORD_PATH})",
    )
    parser.add_argument(
        "--no-record", action="store_true", help="print results without recording them"
    )
    parser.add_argument(
        "--per-cycle",
        action="store_true",
        help="benchmark the force_per_cycle debug kernel instead of the event-driven one",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions per benchmark (best kept)"
    )
    parser.add_argument("--note", default="", help="free-form note stored with the record")
    parser.add_argument(
        "--sample",
        default=None,
        metavar="PERIOD:WINDOW[:WARMUP[:SEED]]",
        help="run the benchmarks under this sampling plan "
        "(overrides any per-benchmark plan)",
    )
    parser.add_argument(
        "--sample-jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan each sampled benchmark's detailed windows over N worker "
        "processes (overrides any per-benchmark setting; results are "
        "bit-identical to serial)",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="instead of running, diff the two newest recordings in --out and "
        f"exit nonzero on a >{COMPARE_THRESHOLD:.0%} wall-clock regression or a "
        f">{CI_GROWTH_LIMIT:g}x sampled-CI growth",
    )


def run_from_args(args) -> int:
    """Execute the benchmark driver for parsed :func:`add_bench_arguments` args."""
    if getattr(args, "compare", False):
        return compare_latest(args.out)
    sampling = None
    if getattr(args, "sample", None):
        from .common.errors import ConfigurationError

        try:
            sampling = SamplingPlan.parse(args.sample)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        results = run_benchmarks(
            args.names or None,
            force_per_cycle=args.per_cycle,
            repeats=args.repeats,
            sampling=sampling,
            sample_jobs=getattr(args, "sample_jobs", None),
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    header = f"{'benchmark':<22} {'seconds':>9} {'cycles':>9} {'Mcycles/s':>10} {'ipc':>7}"
    print(header)
    print("-" * len(header))
    for row in results:
        mcps = (row["sim_cycles_per_sec"] or 0) / 1e6
        print(
            f"{row['name']:<22} {row['seconds']:>9.3f} {row['cycles']:>9} "
            f"{mcps:>10.2f} {row['ipc']:>7.3f}"
        )
    if not args.no_record:
        entry = append_record(args.out, results, note=args.note)
        print(f"\nappended to {args.out} ({entry['timestamp']}, kernel={results[0]['kernel']})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line driver shared by ``repro bench`` and benchmarks/record.py."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="run the simulator throughput benchmarks and record the results",
    )
    add_bench_arguments(parser)
    return run_from_args(parser.parse_args(argv))
