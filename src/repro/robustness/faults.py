"""Deterministic, seeded fault injection for the sweep substrate.

Every recovery path the sweep engine grew (retry, quarantine, pool
rebuild, journal resume) is only trustworthy if it can be *driven*: the
:class:`FaultInjector` makes crashes, hangs, mid-simulate exceptions,
cache corruption and SIGINT delivery reproducible the same way the
fuzzer makes kernel divergence reproducible — from a seed.

Decisions are stateless and context-keyed: whether a site fires for
``(seed, site, context)`` is a pure function of those three values
(a sha256-derived uniform draw compared against the rule's rate), so

* the same plan over the same sweep fires the same faults in any
  process, any worker count, any retry interleaving;
* the context string carries the attempt number, so a cell that
  crashed on attempt 0 can (and usually does) succeed on attempt 1 —
  which is exactly what lets a chaos campaign converge.

Sites (see :data:`FAULT_SITES`):

``worker.crash``
    The worker process exits hard (``os._exit``) mid-cell, as if
    OOM-killed.  Only fires inside pool workers (see :func:`in_worker`);
    the parent — and the serial/degraded path — is never killed.
``cell.hang``
    The cell sleeps past any sane budget; the per-cell watchdog is what
    recovers it.  Worker-only, like ``worker.crash``.
``simulate.error``
    A probe raises :class:`~repro.common.errors.InjectedFaultError`
    mid-simulation (at a commit), exercising clean mid-cell failure.
``cache.store.crash``
    The cache write dies between the temp-file write and the atomic
    ``os.replace`` — half the payload is on disk.  Worker processes
    exit hard (a torn write from a killed process); elsewhere it
    raises, so the atomicity contract is testable in-process too.
``cache.corrupt``
    A just-stored cache entry is scribbled over, as if by a bad disk;
    the *next* load must quarantine it and re-simulate.
``sweep.sigint``
    The parent raises ``KeyboardInterrupt`` after collecting a result,
    driving the drain/journal/resume path.

Nothing in this module is imported by the simulator proper: with no
injector configured the sweep engine passes ``None`` around and no
fault code runs (the strictly-opt-in guarantee).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..common.errors import ConfigurationError, InjectedFaultError

#: Every named injection site, in documentation order.
FAULT_SITES: Tuple[str, ...] = (
    "worker.crash",
    "cell.hang",
    "simulate.error",
    "cache.store.crash",
    "cache.corrupt",
    "sweep.sigint",
)

#: Exit status of a worker killed by ``worker.crash``/``cache.store.crash``
#: (EX_TEMPFAIL: the failure is transient by construction — a retry of
#: the same cell draws a different context and normally succeeds).
FAULT_EXIT_CODE = 75

#: How long ``cell.hang`` sleeps unless the plan overrides it: far past
#: any plausible watchdog budget, so an unwatched hang is unmistakable.
DEFAULT_HANG_SECONDS = 3600.0

#: Process-local flag: True only inside a resilient-pool worker.  The
#: process-fatal sites consult it so an injection plan can never kill
#: the parent (serial and degraded execution run in the parent).
_IN_WORKER = False


def mark_worker() -> None:
    """Declare this process a pool worker (called by the worker bootstrap)."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    """True inside a resilient-pool worker process."""
    return _IN_WORKER


@dataclass(frozen=True)
class FaultRule:
    """One arm of a plan: fire ``site`` at ``rate`` when ``match`` applies.

    ``match`` is a plain substring test against the decision context
    (e.g. a workload name, or ``"a0"`` to hit only first attempts);
    empty matches everything.
    """

    site: str
    rate: float = 1.0
    match: str = ""

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; sites: {', '.join(FAULT_SITES)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"fault rate must be in [0, 1], got {self.rate!r} for {self.site}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {"site": self.site, "rate": self.rate, "match": self.match}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultRule":
        return cls(
            site=str(data["site"]),
            rate=float(data.get("rate", 1.0)),  # type: ignore[arg-type]
            match=str(data.get("match", "")),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the rules; serializable so it can cross process lines."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()
    #: ``cell.hang`` sleep length; tests shrink it under a short watchdog.
    hang_seconds: float = DEFAULT_HANG_SECONDS

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
            rules=tuple(
                FaultRule.from_dict(rule)  # type: ignore[arg-type]
                for rule in data.get("rules", ())
            ),
            hang_seconds=float(data.get("hang_seconds", DEFAULT_HANG_SECONDS)),  # type: ignore[arg-type]
        )


def parse_fault_plan(
    spec: str, seed: int = 0, hang_seconds: float = DEFAULT_HANG_SECONDS
) -> FaultPlan:
    """Parse the CLI plan syntax: ``SITE[@MATCH][=RATE](,...)``.

    Examples::

        worker.crash=0.25
        worker.crash=0.25,cell.hang=0.1,cache.corrupt=0.2
        simulate.error@daxpy=1.0          # only cells whose context mentions daxpy
    """
    rules: List[FaultRule] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        site, _, rate_text = chunk.partition("=")
        site, _, match = site.partition("@")
        try:
            rate = float(rate_text) if rate_text else 1.0
        except ValueError:
            raise ConfigurationError(
                f"fault rate {rate_text!r} in {chunk!r} is not a number"
            )
        rules.append(FaultRule(site=site.strip(), rate=rate, match=match.strip()))
    if not rules:
        raise ConfigurationError(f"fault plan {spec!r} names no sites")
    return FaultPlan(seed=seed, rules=tuple(rules), hang_seconds=hang_seconds)


class _CommitFaultProbe:
    """Probe raising :class:`InjectedFaultError` at the Nth commit.

    Rides the existing probe API, so the mid-simulate site adds zero
    hooks to the pipeline: an injector-free run attaches nothing.
    Deliberately not a :class:`~repro.core.probes.Probe` subclass —
    defining only ``on_commit`` keeps every other event unbound.
    """

    def __init__(self, context: str, after_commits: int = 1) -> None:
        self.context = context
        self.remaining = max(1, after_commits)

    def on_attach(self, pipeline) -> None:  # noqa: D401 - probe contract
        """No state to register."""

    def on_commit(self, pipeline, inst) -> None:
        self.remaining -= 1
        if self.remaining <= 0:
            raise InjectedFaultError(
                f"injected simulate.error [{self.context}] at commit of seq {inst.seq}"
            )


class FaultInjector:
    """Seeded decisions plus the act-on-it helpers for each site.

    The decision function is stateless; the instance only accumulates a
    ``fired`` log (``(site, context)`` pairs) so workers can report what
    they injected back to the parent for counters and journal records.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.fired: List[Tuple[str, str]] = []

    # -- serialization (injectors travel to workers as plan dicts) ----------
    def to_dict(self) -> Dict[str, object]:
        return self.plan.to_dict()

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultInjector":
        return cls(FaultPlan.from_dict(data))

    # -- the decision function ----------------------------------------------
    @staticmethod
    def _draw(seed: int, site: str, context: str) -> float:
        blob = f"{seed}:{site}:{context}".encode("utf-8")
        return int(hashlib.sha256(blob).hexdigest()[:16], 16) / float(1 << 64)

    def decide(self, site: str, context: str) -> bool:
        """True when ``site`` fires for ``context`` under this plan."""
        for rule in self.plan.rules:
            if rule.site != site:
                continue
            if rule.match and rule.match not in context:
                continue
            if self._draw(self.plan.seed, site, context) < rule.rate:
                self.fired.append((site, context))
                return True
        return False

    # -- act-on-it helpers ----------------------------------------------------
    def crash_point(self, context: str) -> None:
        """``worker.crash``: exit hard — pool workers only, never the parent."""
        if in_worker() and self.decide("worker.crash", context):
            os._exit(FAULT_EXIT_CODE)

    def hang_point(self, context: str, sleep=time.sleep) -> None:
        """``cell.hang``: sleep past the watchdog — pool workers only."""
        if in_worker() and self.decide("cell.hang", context):
            sleep(self.plan.hang_seconds)

    def simulate_error_probe(
        self, context: str, after_commits: int = 1
    ) -> Optional[_CommitFaultProbe]:
        """A probe for ``simulate.error``, or None when the site stays quiet."""
        if self.decide("simulate.error", context):
            return _CommitFaultProbe(context, after_commits=after_commits)
        return None

    def store_crash_point(self, context: str) -> None:
        """``cache.store.crash``: die between temp write and ``os.replace``.

        Inside a worker the process exits hard (the realistic torn-write
        crash); elsewhere it raises, so in-process tests can assert the
        cache survives without forking.
        """
        if self.decide("cache.store.crash", context):
            if in_worker():
                os._exit(FAULT_EXIT_CODE)
            raise InjectedFaultError(f"injected cache.store.crash [{context}]")

    def corrupt_point(self, path: os.PathLike, context: str) -> bool:
        """``cache.corrupt``: scribble over ``path``; True when it fired."""
        if self.decide("cache.corrupt", context):
            with open(path, "r+b") as handle:
                handle.seek(0)
                handle.write(b"\x00corrupted-by-fault-injection\x00")
            return True
        return False

    def sigint_point(self, context: str) -> None:
        """``sweep.sigint``: deliver a KeyboardInterrupt in the parent."""
        if self.decide("sweep.sigint", context):
            raise KeyboardInterrupt(f"injected sweep.sigint [{context}]")
