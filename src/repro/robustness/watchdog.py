"""Per-cell wall-clock watchdog for in-process (serial) execution.

Parallel cells are watched from the parent (the resilient pool tracks a
deadline per dispatched cell and kills the worker past it); serial and
degraded-mode cells run in the engine's own process, where the only
portable-enough interrupt mechanism is ``SIGALRM``.  :func:`deadline`
wraps one cell in an itimer and raises
:class:`~repro.common.errors.CellTimeoutError` when the budget runs out.

Where SIGALRM is unavailable (non-main thread, non-POSIX platforms) the
context manager degrades to a no-op: a serial hang then runs to
completion exactly as before this subsystem existed — never a crash.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from ..common.errors import CellTimeoutError


def watchdog_available() -> bool:
    """True when :func:`deadline` can actually arm a timer here."""
    return (
        hasattr(signal, "SIGALRM")
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def deadline(seconds: Optional[float], label: str = "cell") -> Iterator[bool]:
    """Bound the enclosed block to ``seconds`` of wall-clock time.

    Yields True when a timer is armed, False when the watchdog is
    unavailable (or ``seconds`` is None/non-positive) and the block runs
    unbounded.  On expiry the block is interrupted with
    :class:`CellTimeoutError`.
    """
    if seconds is None or seconds <= 0 or not watchdog_available():
        yield False
        return

    def _expired(signum, frame):
        raise CellTimeoutError(
            f"{label} exceeded its {seconds:g}s wall-clock watchdog"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
