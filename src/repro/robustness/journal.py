"""Append-only JSONL sweep journal: the ground truth for ``--resume``.

One record per line, flushed and fsynced as written, so the journal is
exactly as durable as the kernel allows at the moment a cell finishes.
A process killed mid-append leaves at most one torn final line, which
:meth:`SweepJournal.read` tolerates (every *complete* record survives).

Record shapes (the ``event`` field discriminates)::

    {"event": "sweep-start", "sweep": name, "suite": ..., "scale": ...,
     "cells": N, "keys_digest": sha256-of-all-keys}
    {"event": "sweep-resume", "sweep": name, "completed": K}
    {"event": "cell-done", "index": i, "key": ..., "workload": ...,
     "config": ..., "source": "simulated" | "cache"}
    {"event": "cell-failed", "index": i, "key": ..., "attempt": n,
     "error": "..."}
    {"event": "cell-quarantined", "index": i, "key": ..., "attempts": n,
     "errors": [...]}
    {"event": "sweep-interrupted", "completed": K, "pending": M}
    {"event": "sweep-end", "sweep": name, "simulated": ..., "cached": ...}

No timestamps by default: two runs of the same sweep under the same
fault plan write byte-identical journals, which is what lets the chaos
CI job diff recovery behavior instead of eyeballing it.

Resume semantics (implemented by the engine, verified here): a cell
whose key has a ``cell-done`` record is *expected* in the result cache;
the engine loads it from there and skips re-simulation.  A journaled
key missing from the cache is re-simulated and counted — the journal
records intent, the cache holds the bits.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set


class SweepJournal:
    """One journal file; append during a run, read back for resume."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path).expanduser()
        #: Torn trailing lines skipped by the last :meth:`read`.
        self.torn_lines = 0

    def exists(self) -> bool:
        return self.path.exists()

    # -- writing --------------------------------------------------------------
    def append(self, record: Dict[str, object]) -> None:
        """Append one record durably (flush + fsync before returning)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # -- reading --------------------------------------------------------------
    def read(self) -> List[Dict[str, object]]:
        """Every complete record, in append order; torn tails are skipped."""
        self.torn_lines = 0
        records: List[Dict[str, object]] = []
        try:
            with open(self.path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return records
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A crash mid-append tears at most the final line; any
                # earlier unparsable line is the same failure repeated.
                self.torn_lines += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                self.torn_lines += 1
        return records

    def completed_keys(self) -> Set[str]:
        """Cache keys of every ``cell-done`` record in the journal."""
        return {
            str(record["key"])
            for record in self.read()
            if record.get("event") == "cell-done" and record.get("key")
        }

    def quarantined_keys(self) -> Set[str]:
        """Keys quarantined in a previous run (retried again on resume)."""
        return {
            str(record["key"])
            for record in self.read()
            if record.get("event") == "cell-quarantined" and record.get("key")
        }

    def iter_events(self, event: str) -> Iterator[Dict[str, object]]:
        for record in self.read():
            if record.get("event") == event:
                yield record

    def last_start(self) -> Optional[Dict[str, object]]:
        """The most recent ``sweep-start`` record, if any."""
        start: Optional[Dict[str, object]] = None
        for record in self.read():
            if record.get("event") == "sweep-start":
                start = record
        return start
