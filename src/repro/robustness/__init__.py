"""Fault-tolerance substrate: injection, retry, watchdogs, journals, pool.

This package is the machinery behind the sweep engine's robustness
guarantees (see ``docs/architecture.md``, "Fault tolerance and
recovery").  It is strictly opt-in: nothing here is imported by the
simulator core, and a sweep configured without an injector, journal or
watchdog takes none of these code paths.
"""

from .faults import (
    DEFAULT_HANG_SECONDS,
    FAULT_EXIT_CODE,
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    in_worker,
    mark_worker,
    parse_fault_plan,
)
from .journal import SweepJournal
from .pool import PoolOutcome, ResilientPool, TaskFailure
from .retry import DEFAULT_MAX_ATTEMPTS, RetryPolicy
from .watchdog import deadline, watchdog_available

__all__ = [
    "DEFAULT_HANG_SECONDS",
    "DEFAULT_MAX_ATTEMPTS",
    "FAULT_EXIT_CODE",
    "FAULT_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "PoolOutcome",
    "ResilientPool",
    "RetryPolicy",
    "SweepJournal",
    "TaskFailure",
    "deadline",
    "in_worker",
    "mark_worker",
    "parse_fault_plan",
    "watchdog_available",
]
