"""A fault-tolerant process pool for embarrassingly parallel cells.

``multiprocessing.Pool.imap`` — what the sweep engine used to run on —
has exactly the failure modes a long sweep cannot afford: a worker
killed mid-task hangs the iterator forever, a hung task hangs it just
as hard, and Ctrl-C surfaces as a traceback with every in-flight result
lost.  :class:`ResilientPool` replaces it with explicitly supervised
workers:

* one task in flight per worker, dispatched over a per-worker pipe, so
  the parent always knows which cell a dead worker was holding;
* worker-death detection (pipe EOF / liveness polls) with automatic
  respawn, and per-task wall-clock deadlines enforced by killing the
  worker past its budget;
* failed attempts feed a :class:`~repro.robustness.retry.RetryPolicy`
  (capped deterministic backoff, no parent-blocking sleeps) and
  quarantine after the budget — the pool finishes everything it can
  and reports the rest, it never raises for a poison task;
* graceful degradation: when workers keep dying (``max_worker_deaths``)
  the pool stops respawning and runs the remainder serially in the
  parent under a SIGALRM watchdog;
* KeyboardInterrupt stops dispatch, drains in-flight tasks for a grace
  period (their results are delivered through ``on_event`` like any
  other), tears the pool down, and re-raises for the caller to wrap.

Scheduling preserves the sweep engine's trace-locality contract: tasks
arrive pre-ordered (workload-major), are split into ``chunksize`` runs
assigned round-robin to worker queues — the same distribution ``imap``
chunking produced — and an idle worker steals from the richest queue
only when its own runs dry.

The pool knows nothing about sweeps: callers observe through the
``on_event`` callback (kinds: ``result``, ``task-error``, ``retry``,
``quarantine``, ``worker-death``, ``timeout``, ``degrade``) and get a
:class:`PoolOutcome` back.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .faults import mark_worker
from .retry import RetryPolicy
from .watchdog import deadline

#: Parent poll tick: worker liveness, deadlines and backoff maturities
#: are checked at this cadence, so it bounds detection latency.
POLL_INTERVAL = 0.05

#: How long a Ctrl-C drain waits for in-flight cells before giving up.
DRAIN_GRACE_SECONDS = 30.0

#: How long ``close`` waits for a sentinel-notified worker to exit on
#: its own before escalating to terminate/kill.
JOIN_GRACE_SECONDS = 2.0

EventFn = Callable[..., None]


def _worker_main(conn, fn) -> None:
    """Worker loop: recv ``(task_id, payload, attempt)``, run, send back.

    SIGINT is ignored (the parent owns interruption policy: on Ctrl-C it
    drains us, it does not want us dying mid-cell), and the process
    marks itself a worker so process-fatal fault sites may fire here.
    Task exceptions are caught and reported; the worker survives them.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    mark_worker()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        task_id, payload, attempt = message
        try:
            value = fn(payload, attempt)
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            conn.send((task_id, False, f"{type(exc).__name__}: {exc}"))
        else:
            conn.send((task_id, True, value))


@dataclass
class _TaskState:
    task_id: object
    payload: object
    group: str = ""
    attempts: int = 0
    errors: List[str] = field(default_factory=list)
    ready_at: float = 0.0  #: monotonic time before which it must not run


@dataclass
class TaskFailure:
    """A task that exhausted its retry budget (quarantined)."""

    task_id: object
    group: str
    attempts: int
    errors: List[str]


@dataclass
class PoolOutcome:
    """What one :meth:`ResilientPool.run` produced and endured."""

    results: Dict[object, object] = field(default_factory=dict)
    failures: Dict[object, TaskFailure] = field(default_factory=dict)
    retries: int = 0
    worker_deaths: int = 0
    timeouts: int = 0
    degraded: bool = False


class _Worker:
    """Parent-side handle on one worker process."""

    def __init__(self, context, fn) -> None:
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = context.Process(
            target=_worker_main, args=(child_conn, fn), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.current: Optional[object] = None  #: task_id in flight
        self.deadline: Optional[float] = None
        self.queue: deque = deque()  #: task_ids with affinity to this worker

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def dispatch(self, state: _TaskState, cell_timeout: Optional[float]) -> None:
        self.conn.send((state.task_id, state.payload, state.attempts))
        self.current = state.task_id
        if cell_timeout is not None and cell_timeout > 0:
            self.deadline = time.monotonic() + cell_timeout
        else:
            self.deadline = None

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(JOIN_GRACE_SECONDS)
            if self.process.is_alive():  # pragma: no cover - stuck in kernel
                self.process.kill()
                self.process.join(JOIN_GRACE_SECONDS)

    def close(self) -> None:
        """Polite shutdown: sentinel, short join, then escalate."""
        try:
            self.conn.send(None)
        except (OSError, ValueError):
            pass
        self.process.join(JOIN_GRACE_SECONDS)
        self.kill()


class ResilientPool:
    """Supervised workers executing ``fn(payload, attempt)`` per task."""

    def __init__(
        self,
        fn,
        workers: int,
        *,
        cell_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        max_worker_deaths: Optional[int] = None,
        on_event: Optional[EventFn] = None,
        sleep=time.sleep,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.fn = fn
        self.workers = workers
        self.cell_timeout = cell_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_worker_deaths = (
            max_worker_deaths
            if max_worker_deaths is not None
            else max(4, 2 * workers)
        )
        self.on_event = on_event
        self._sleep = sleep
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._context = multiprocessing.get_context("spawn")

    def _emit(self, kind: str, **info) -> None:
        if self.on_event is not None:
            self.on_event(kind, **info)

    # -- the run --------------------------------------------------------------
    def run(
        self, tasks: Sequence[Tuple[object, object, str]], chunksize: int = 1
    ) -> PoolOutcome:
        """Execute ``(task_id, payload, group)`` tasks; never raises for a
        task failure — only for ``KeyboardInterrupt`` (after draining)."""
        outcome = PoolOutcome()
        states = {
            task_id: _TaskState(task_id, payload, group)
            for task_id, payload, group in tasks
        }
        order = [task_id for task_id, _payload, _group in tasks]
        if not states:
            return outcome
        pool: List[_Worker] = []
        try:
            pool = [
                _Worker(self._context, self.fn)
                for _ in range(min(self.workers, len(states)))
            ]
            self._seed_queues(pool, order, max(1, chunksize))
            self._supervise(pool, states, outcome)
        except KeyboardInterrupt:
            self._drain(pool, states, outcome)
            raise
        finally:
            for worker in pool:
                worker.close()
        if outcome.degraded:
            self._emit(
                "degrade",
                remaining=len(states) - len(outcome.results) - len(outcome.failures),
            )
            self._run_serial(states, outcome)
        return outcome

    @staticmethod
    def _seed_queues(pool: List[_Worker], order: List[object], chunksize: int) -> None:
        """Round-robin ``chunksize`` runs onto worker queues (imap layout)."""
        chunks = [order[i : i + chunksize] for i in range(0, len(order), chunksize)]
        for index, chunk in enumerate(chunks):
            pool[index % len(pool)].queue.extend(chunk)

    def _next_task(
        self, worker: _Worker, pool: List[_Worker], states, outcome: PoolOutcome
    ) -> Optional[_TaskState]:
        """The next runnable task for ``worker``: own queue, then stealing."""
        now = time.monotonic()

        def pop_ready(queue: deque) -> Optional[_TaskState]:
            for _ in range(len(queue)):
                task_id = queue.popleft()
                state = states.get(task_id)
                if (
                    state is None
                    or task_id in outcome.results
                    or task_id in outcome.failures
                ):
                    continue
                if state.ready_at > now:  # backing off; recheck next tick
                    queue.append(task_id)
                    continue
                return state
            return None

        state = pop_ready(worker.queue)
        if state is not None:
            return state
        richest = max(pool, key=lambda w: len(w.queue))
        if richest is not worker and richest.queue:
            return pop_ready(richest.queue)
        return None

    def _supervise(self, pool: List[_Worker], states, outcome: PoolOutcome) -> None:
        from multiprocessing.connection import wait as connection_wait

        total = len(states)
        while len(outcome.results) + len(outcome.failures) < total:
            if outcome.degraded:
                return
            # Dispatch to every idle, live worker.
            for worker in pool:
                if worker.current is not None or not worker.process.is_alive():
                    continue
                state = self._next_task(worker, pool, states, outcome)
                if state is None:
                    continue
                try:
                    worker.dispatch(state, self.cell_timeout)
                except (OSError, ValueError):
                    # Died between liveness check and send; requeue and
                    # let the death handler below respawn.
                    worker.queue.appendleft(state.task_id)
            # Collect results / detect deaths.
            connections = [w.conn for w in pool if w.process.is_alive()]
            readable = connection_wait(connections, timeout=POLL_INTERVAL) if connections else []
            by_conn = {worker.conn: worker for worker in pool}
            for conn in readable:
                worker = by_conn[conn]
                try:
                    task_id, ok, value = conn.recv()
                except (EOFError, OSError):
                    self._worker_died(worker, pool, states, outcome)
                    continue
                attempt = states[task_id].attempts
                worker.current = None
                worker.deadline = None
                if ok:
                    outcome.results[task_id] = value
                    self._emit("result", task_id=task_id, value=value, attempt=attempt)
                else:
                    self._attempt_failed(task_id, str(value), pool, states, outcome)
            # Deadlines and silent deaths.
            now = time.monotonic()
            for worker in pool:
                if not worker.process.is_alive() and worker.current is not None:
                    # Death the pipe didn't surface this tick.
                    if worker.conn not in [c for c in readable]:
                        self._worker_died(worker, pool, states, outcome)
                    continue
                if (
                    worker.current is not None
                    and worker.deadline is not None
                    and now > worker.deadline
                ):
                    task_id = worker.current
                    outcome.timeouts += 1
                    self._emit(
                        "timeout", task_id=task_id, seconds=self.cell_timeout
                    )
                    worker.kill()
                    worker.current = None
                    self._respawn(worker, pool)
                    self._attempt_failed(
                        task_id,
                        f"CellTimeoutError: exceeded the {self.cell_timeout:g}s "
                        f"per-cell watchdog",
                        pool,
                        states,
                        outcome,
                    )

    def _worker_died(
        self, worker: _Worker, pool: List[_Worker], states, outcome: PoolOutcome
    ) -> None:
        outcome.worker_deaths += 1
        task_id = worker.current
        self._emit(
            "worker-death",
            pid=worker.pid,
            task_id=task_id,
            deaths=outcome.worker_deaths,
        )
        worker.kill()
        worker.current = None
        if outcome.worker_deaths >= self.max_worker_deaths:
            outcome.degraded = True
            if task_id is not None:  # rerun it serially with the rest
                states[task_id].ready_at = 0.0
                worker.queue.appendleft(task_id)
            return
        self._respawn(worker, pool)
        if task_id is not None:
            self._attempt_failed(
                task_id,
                f"worker process (pid {worker.pid}) died while running this cell",
                pool,
                states,
                outcome,
            )

    def _respawn(self, worker: _Worker, pool: List[_Worker]) -> None:
        replacement = _Worker(self._context, self.fn)
        replacement.queue = worker.queue
        pool[pool.index(worker)] = replacement

    def _attempt_failed(
        self, task_id, error: str, pool: List[_Worker], states, outcome: PoolOutcome
    ) -> None:
        state = states[task_id]
        state.attempts += 1
        state.errors.append(error)
        self._emit("task-error", task_id=task_id, error=error, attempt=state.attempts)
        if self.retry.allows(state.attempts):
            delay = self.retry.backoff(state.attempts)
            state.ready_at = time.monotonic() + delay
            outcome.retries += 1
            self._emit(
                "retry", task_id=task_id, attempt=state.attempts + 1, delay=delay
            )
            if pool:
                shortest = min(pool, key=lambda w: len(w.queue))
                shortest.queue.append(task_id)
        else:
            failure = TaskFailure(
                task_id=task_id,
                group=state.group,
                attempts=state.attempts,
                errors=list(state.errors),
            )
            outcome.failures[task_id] = failure
            self._emit(
                "quarantine",
                task_id=task_id,
                attempts=state.attempts,
                errors=list(state.errors),
            )

    # -- degraded serial execution --------------------------------------------
    def _run_serial(self, states, outcome: PoolOutcome) -> None:
        """Finish the remainder in-parent: watchdogged, retried, quarantined."""
        remaining = [
            state
            for task_id, state in states.items()
            if task_id not in outcome.results and task_id not in outcome.failures
        ]
        for state in remaining:
            while True:
                try:
                    with deadline(self.cell_timeout, label=f"cell {state.task_id}"):
                        value = self.fn(state.payload, state.attempts)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:  # noqa: BLE001 - incl. CellTimeoutError
                    error = f"{type(exc).__name__}: {exc}"
                    self._attempt_failed(state.task_id, error, [], states, outcome)
                    if state.task_id in outcome.failures:
                        break
                    self._sleep(self.retry.backoff(state.attempts))
                else:
                    outcome.results[state.task_id] = value
                    self._emit(
                        "result",
                        task_id=state.task_id,
                        value=value,
                        attempt=state.attempts,
                    )
                    break

    # -- Ctrl-C drain ---------------------------------------------------------
    def _drain(self, pool: List[_Worker], states, outcome: PoolOutcome) -> None:
        """Collect in-flight results for a grace period, then tear down.

        Cells already dispatched represent real compute; losing them to a
        Ctrl-C would make interruption expensive exactly when the sweep
        is long.  Queued-but-undispatched tasks stay pending.
        """
        from multiprocessing.connection import wait as connection_wait

        grace = DRAIN_GRACE_SECONDS
        if self.cell_timeout is not None and self.cell_timeout > 0:
            grace = min(grace, self.cell_timeout)
        cutoff = time.monotonic() + grace
        while any(w.current is not None for w in pool):
            budget = cutoff - time.monotonic()
            if budget <= 0:
                break
            connections = [
                w.conn for w in pool if w.current is not None and w.process.is_alive()
            ]
            if not connections:
                break
            readable = connection_wait(connections, timeout=min(budget, POLL_INTERVAL * 4))
            by_conn = {worker.conn: worker for worker in pool}
            for conn in readable:
                worker = by_conn[conn]
                try:
                    task_id, ok, value = conn.recv()
                except (EOFError, OSError):
                    worker.current = None
                    continue
                worker.current = None
                if ok:
                    outcome.results[task_id] = value
                    self._emit(
                        "result",
                        task_id=task_id,
                        value=value,
                        attempt=states[task_id].attempts,
                        drained=True,
                    )
