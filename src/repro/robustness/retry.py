"""Retry policy: bounded attempts with capped, deterministic backoff.

No jitter on purpose: the sweep engine's recovery behavior must replay
exactly under the fault injector, and a worker pool gets its decorrelation
from the cells themselves (each failing cell backs off on its own clock).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigurationError

#: Default attempt budget: the first try plus two retries — enough to
#: clear any transient (injected or real) failure whose probability is
#: per-attempt, while a deterministic poison cell quarantines quickly.
DEFAULT_MAX_ATTEMPTS = 3


@dataclass(frozen=True)
class RetryPolicy:
    """How many times one cell may run, and how long to wait in between."""

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    backoff_base: float = 0.05  #: seconds before the first retry
    backoff_cap: float = 2.0  #: exponential growth stops here

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff durations must be >= 0")

    def allows(self, attempts_made: int) -> bool:
        """True when another attempt fits the budget."""
        return attempts_made < self.max_attempts

    def backoff(self, attempts_made: int) -> float:
        """Delay before the next attempt, after ``attempts_made`` failures.

        Deterministic doubling from ``backoff_base``, capped at
        ``backoff_cap``: 0.05, 0.1, 0.2, ... for the defaults.
        """
        if attempts_made <= 0:
            return 0.0
        return min(self.backoff_base * (2 ** (attempts_made - 1)), self.backoff_cap)
