"""Configuration objects for the simulated machines.

The classes here mirror Table 1 of the paper plus the knobs that the
evaluation sweeps (ROB size, issue-queue size, SLIQ size, number of
checkpoints, memory latency, and so on).  Every class is an immutable-ish
dataclass with a :meth:`validate` method; :func:`table1_baseline` builds
the exact configuration of Table 1 and the ``scaled_baseline`` /
``cooo_config`` helpers build the families of machines used by the
figures.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from .errors import ConfigurationError


def _positive(name: str, value: int) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")


def _non_negative(name: str, value: int) -> None:
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")


def _power_of_two(name: str, value: int) -> None:
    if value <= 0 or value & (value - 1):
        raise ConfigurationError(f"{name} must be a power of two, got {value}")


@dataclass
class CacheConfig:
    """Geometry and latency of a single cache level.

    Parameters mirror Table 1: size in bytes, associativity, line size in
    bytes and the access latency in cycles.
    """

    size_bytes: int
    assoc: int
    line_bytes: int
    latency: int
    name: str = "cache"

    def validate(self) -> None:
        _positive(f"{self.name}.size_bytes", self.size_bytes)
        _positive(f"{self.name}.assoc", self.assoc)
        _power_of_two(f"{self.name}.line_bytes", self.line_bytes)
        _non_negative(f"{self.name}.latency", self.latency)
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} is not a multiple of "
                f"assoc*line ({self.assoc}*{self.line_bytes})"
            )
        _power_of_two(f"{self.name}.num_sets", self.num_sets)

    @property
    def num_sets(self) -> int:
        """Number of sets implied by size, associativity and line size."""
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass
class MemoryConfig:
    """The full memory hierarchy: IL1, DL1, unified L2 and main memory."""

    il1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 4, 32, 2, name="il1")
    )
    dl1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 4, 32, 2, name="dl1")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(512 * 1024, 4, 64, 10, name="l2")
    )
    memory_latency: int = 1000
    memory_ports: int = 2
    perfect_l2: bool = False
    perfect_dl1: bool = False
    prefetcher: str = "none"
    prefetch_degree: int = 2

    def validate(self) -> None:
        self.il1.validate()
        self.dl1.validate()
        self.l2.validate()
        _non_negative("memory_latency", self.memory_latency)
        _positive("memory_ports", self.memory_ports)
        if self.prefetcher not in ("none", "next_line", "stride"):
            raise ConfigurationError(f"unknown prefetcher {self.prefetcher!r}")
        _positive("prefetch_degree", self.prefetch_degree)


@dataclass
class BranchConfig:
    """Branch-predictor configuration (16K-history gshare in Table 1)."""

    kind: str = "gshare"
    history_entries: int = 16 * 1024
    penalty: int = 10
    btb_entries: int = 4096
    perfect: bool = False

    def validate(self) -> None:
        if self.kind not in ("gshare", "static_taken", "static_not_taken", "bimodal"):
            raise ConfigurationError(f"unknown branch predictor kind {self.kind!r}")
        _power_of_two("branch.history_entries", self.history_entries)
        _power_of_two("branch.btb_entries", self.btb_entries)
        _non_negative("branch.penalty", self.penalty)


@dataclass
class FunctionalUnitConfig:
    """Counts and latencies of the execution resources (Table 1)."""

    int_alu_count: int = 4
    int_alu_latency: int = 1
    int_mul_count: int = 2
    int_mul_latency: int = 3
    int_div_latency: int = 20
    fp_count: int = 4
    fp_latency: int = 2
    fp_div_latency: int = 20
    agen_latency: int = 1

    def validate(self) -> None:
        for name in ("int_alu_count", "int_mul_count", "fp_count"):
            _positive(f"fu.{name}", getattr(self, name))
        for name in (
            "int_alu_latency",
            "int_mul_latency",
            "int_div_latency",
            "fp_latency",
            "fp_div_latency",
            "agen_latency",
        ):
            _positive(f"fu.{name}", getattr(self, name))


@dataclass
class CoreConfig:
    """Window sizes and widths of the out-of-order core."""

    fetch_width: int = 4
    commit_width: int = 4
    issue_width: int = 4
    rob_size: int = 4096
    int_queue_size: int = 4096
    fp_queue_size: int = 4096
    lsq_size: int = 4096
    physical_registers: int = 4096
    fu: FunctionalUnitConfig = field(default_factory=FunctionalUnitConfig)

    def validate(self) -> None:
        for name in (
            "fetch_width",
            "commit_width",
            "issue_width",
            "rob_size",
            "int_queue_size",
            "fp_queue_size",
            "lsq_size",
            "physical_registers",
        ):
            _positive(f"core.{name}", getattr(self, name))
        self.fu.validate()


@dataclass
class CheckpointConfig:
    """Checkpoint-table parameters for the out-of-order-commit machine."""

    table_size: int = 8
    branch_threshold: int = 64
    instruction_threshold: int = 512
    store_threshold: int = 64
    policy: str = "paper"

    def validate(self) -> None:
        _positive("checkpoint.table_size", self.table_size)
        _positive("checkpoint.branch_threshold", self.branch_threshold)
        _positive("checkpoint.instruction_threshold", self.instruction_threshold)
        _positive("checkpoint.store_threshold", self.store_threshold)
        if self.policy not in ("paper", "every_n", "branch_only", "store_only"):
            raise ConfigurationError(f"unknown checkpoint policy {self.policy!r}")
        if self.instruction_threshold < self.branch_threshold:
            raise ConfigurationError(
                "checkpoint.instruction_threshold must be >= branch_threshold"
            )


@dataclass
class SLIQConfig:
    """Pseudo-ROB + Slow Lane Instruction Queue parameters."""

    enabled: bool = True
    size: int = 2048
    pseudo_rob_size: int = 128
    reinsert_width: int = 4
    reinsert_delay: int = 4

    def validate(self) -> None:
        _positive("sliq.size", self.size)
        _positive("sliq.pseudo_rob_size", self.pseudo_rob_size)
        _positive("sliq.reinsert_width", self.reinsert_width)
        _non_negative("sliq.reinsert_delay", self.reinsert_delay)


@dataclass
class RegisterAllocationConfig:
    """Late (virtual-tag) register allocation used by Figure 14.

    When ``late_allocation`` is false (the default) physical registers are
    allocated at rename, as in a conventional machine.  When true, rename
    hands out a *virtual tag* and the physical register is only claimed
    when the producing instruction writes back; ``virtual_tags`` then
    limits the number of in-flight destinations.
    """

    late_allocation: bool = False
    virtual_tags: int = 4096

    def validate(self) -> None:
        _positive("regalloc.virtual_tags", self.virtual_tags)


@dataclass(frozen=True)
class SamplingPlan:
    """How a sampled (fast-forward + detailed windows) run slices a trace.

    The trace is divided into periods of ``period`` dynamic instructions.
    Within each period the simulator runs ``warmup`` instructions in
    detailed mode to refill the pipeline (unmeasured), measures the next
    ``window`` instructions cycle-accurately, and *functionally
    fast-forwards* the remaining ``period - warmup - window``
    instructions — retiring them in program order while still driving
    the caches, prefetchers and branch predictors so the next detailed
    window starts warm.  ``seed`` deterministically randomizes where in
    the first period the first detailed window sits (0 keeps it at the
    period start), decorrelating the windows from periodic program
    structure.

    ``period == warmup + window`` leaves nothing to fast-forward: the
    run degenerates to one continuous detailed simulation whose result
    (cycles, IPC, every statistic) is bit-identical to the unsampled
    run, with per-window attribution layered on top.
    """

    period: int
    window: int
    warmup: int = 0
    seed: int = 0

    def validate(self) -> "SamplingPlan":
        _positive("sampling.period", self.period)
        _positive("sampling.window", self.window)
        _non_negative("sampling.warmup", self.warmup)
        _non_negative("sampling.seed", self.seed)
        if self.warmup + self.window > self.period:
            raise ConfigurationError(
                f"sampling: warmup + window ({self.warmup} + {self.window}) "
                f"must fit in the period ({self.period})"
            )
        return self

    @property
    def fast_forward_per_period(self) -> int:
        """Instructions functionally fast-forwarded in each full period."""
        return self.period - self.warmup - self.window

    @property
    def detail_fraction(self) -> float:
        """Fraction of the trace simulated in detailed (cycle-level) mode."""
        return (self.warmup + self.window) / self.period

    def first_window_offset(self) -> int:
        """Trace position where the first detailed region (warmup) starts.

        Deterministic in ``seed``: seed 0 pins the window to the period
        start; any other seed places it uniformly within the period's
        fast-forward slack.
        """
        slack = self.fast_forward_per_period
        if self.seed == 0 or slack == 0:
            return 0
        import random

        return random.Random(self.seed).randrange(slack + 1)

    def schedule(self, total: int) -> list:
        """Split ``total`` instructions into ``(skip, warmup, measure)`` triples.

        ``skip`` instructions are fast-forwarded, ``warmup`` run detailed
        but unmeasured, ``measure`` run detailed and measured.  The
        triples cover the trace exactly; a tail too short to hold a
        warmed window becomes a pure fast-forward segment.
        """
        self.validate()
        segments = []
        pos = 0
        next_detail = self.first_window_offset()
        while pos < total:
            skip = min(max(0, next_detail - pos), total - pos)
            remaining = total - pos - skip
            if remaining <= self.warmup:
                # Tail too short for a measured window: fast-forward it all.
                segments.append((skip + remaining, 0, 0))
                break
            warm = min(self.warmup, remaining)
            measure = min(self.window, remaining - warm)
            segments.append((skip, warm, measure))
            pos += skip + warm + measure
            next_detail += self.period
        return segments

    # -- serialization / identity ------------------------------------------
    def to_dict(self) -> Dict[str, int]:
        return {
            "period": self.period,
            "window": self.window,
            "warmup": self.warmup,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SamplingPlan":
        return cls(
            period=int(data["period"]),
            window=int(data["window"]),
            warmup=int(data.get("warmup", 0)),
            seed=int(data.get("seed", 0)),
        )

    #: Field names of the CLI form, in positional order.
    PARSE_FIELDS = ("period", "window", "warmup", "seed")

    @classmethod
    def parse(cls, spec: str) -> "SamplingPlan":
        """Parse the CLI form ``PERIOD:WINDOW[:WARMUP[:SEED]]``.

        Raises :class:`ConfigurationError` (a ``ValueError``) naming the
        offending field: too few/many ``:``-separated fields, a
        non-integer field, a non-positive period or window, a negative
        warmup or seed, or a window+warmup that overflows the period.
        """
        parts = spec.split(":")
        if not 2 <= len(parts) <= 4:
            raise ConfigurationError(
                f"sampling spec {spec!r} must be PERIOD:WINDOW[:WARMUP[:SEED]] "
                f"(2 to 4 ':'-separated integers, got {len(parts)} fields)"
            )
        numbers = []
        for name, part in zip(cls.PARSE_FIELDS, parts):
            try:
                numbers.append(int(part))
            except ValueError:
                raise ConfigurationError(
                    f"sampling spec {spec!r}: {name} must be an integer, "
                    f"got {part!r}"
                ) from None
        plan = cls(
            period=numbers[0],
            window=numbers[1],
            warmup=numbers[2] if len(numbers) > 2 else 0,
            seed=numbers[3] if len(numbers) > 3 else 0,
        )
        # validate() names the bad field too (e.g. "sampling.period must
        # be > 0"), so every rejection points at what to fix.
        return plan.validate()

    def describe(self) -> str:
        return (
            f"period={self.period} window={self.window} "
            f"warmup={self.warmup} seed={self.seed} "
            f"({100 * self.detail_fraction:.1f}% detailed)"
        )


@dataclass
class ProcessorConfig:
    """Complete description of one simulated machine.

    ``mode`` names a machine organization registered in
    :mod:`repro.core.registry_machines` — ``"baseline"`` and ``"cooo"``
    ship with the paper's two machines; ``repro modes`` lists the rest,
    and :func:`~repro.core.registry_machines.register_machine` adds new
    ones without touching this module.
    """

    mode: str = "baseline"
    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    branch: BranchConfig = field(default_factory=BranchConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    sliq: SLIQConfig = field(default_factory=SLIQConfig)
    regalloc: RegisterAllocationConfig = field(default_factory=RegisterAllocationConfig)
    deadlock_cycles: int = 2_000_000
    name: str = ""

    def validate(self) -> "ProcessorConfig":
        # The machine registry is the single source of truth for valid
        # modes; imported lazily so repro.common stays importable on its
        # own (the registry lives in repro.core, which imports us).
        from ..core.registry_machines import get_machine

        machine = get_machine(self.mode)  # raises, listing registered modes
        self.core.validate()
        self.memory.validate()
        self.branch.validate()
        self.checkpoint.validate()
        self.sliq.validate()
        self.regalloc.validate()
        _positive("deadlock_cycles", self.deadlock_cycles)
        if self.regalloc.late_allocation and not machine.supports_late_allocation:
            raise ConfigurationError(
                f"late register allocation is not modelled by machine "
                f"{self.mode!r} (the cooo family opts in via "
                f"supports_late_allocation)"
            )
        return self

    def describe(self) -> Dict[str, object]:
        """Flat dictionary view, convenient for result tables."""
        return {
            "name": self.name or self.mode,
            "mode": self.mode,
            "rob_size": self.core.rob_size,
            "iq_size": self.core.int_queue_size,
            "lsq_size": self.core.lsq_size,
            "physical_registers": self.core.physical_registers,
            "checkpoints": self.checkpoint.table_size,
            "sliq_size": self.sliq.size if self.sliq.enabled else 0,
            "pseudo_rob_size": self.sliq.pseudo_rob_size if self.sliq.enabled else 0,
            "memory_latency": self.memory.memory_latency,
            "perfect_l2": self.memory.perfect_l2,
            "virtual_tags": self.regalloc.virtual_tags,
            "late_allocation": self.regalloc.late_allocation,
        }

    def copy(self, **changes: object) -> "ProcessorConfig":
        """Return a deep copy with top-level fields replaced."""
        cfg = dataclasses.replace(self, **changes)  # type: ignore[arg-type]
        return _deep_copy_config(cfg)

    # -- serialization / identity ------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Nested plain-dict view, round-trippable via :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProcessorConfig":
        """Rebuild a config from :meth:`to_dict` output (e.g. after JSON)."""
        core_data = dict(data["core"])
        core_data["fu"] = FunctionalUnitConfig(**core_data["fu"])
        memory_data = dict(data["memory"])
        for level in ("il1", "dl1", "l2"):
            memory_data[level] = CacheConfig(**memory_data[level])
        return cls(
            mode=data["mode"],
            core=CoreConfig(**core_data),
            memory=MemoryConfig(**memory_data),
            branch=BranchConfig(**data["branch"]),
            checkpoint=CheckpointConfig(**data["checkpoint"]),
            sliq=SLIQConfig(**data["sliq"]),
            regalloc=RegisterAllocationConfig(**data["regalloc"]),
            deadlock_cycles=data["deadlock_cycles"],
            name=data.get("name", ""),
        )

    def stable_hash(self) -> str:
        """Content hash of every field, stable across processes and runs.

        This is the config component of the sweep engine's persistent
        cache key: two configs hash equal iff every parameter (including
        ``name``) is equal.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __hash__(self) -> int:
        return hash(self.stable_hash())


def _deep_copy_config(cfg: ProcessorConfig) -> ProcessorConfig:
    return ProcessorConfig(
        mode=cfg.mode,
        core=replace(cfg.core, fu=replace(cfg.core.fu)),
        memory=replace(
            cfg.memory,
            il1=replace(cfg.memory.il1),
            dl1=replace(cfg.memory.dl1),
            l2=replace(cfg.memory.l2),
        ),
        branch=replace(cfg.branch),
        checkpoint=replace(cfg.checkpoint),
        sliq=replace(cfg.sliq),
        regalloc=replace(cfg.regalloc),
        deadlock_cycles=cfg.deadlock_cycles,
        name=cfg.name,
    )


def table1_baseline(memory_latency: int = 1000, perfect_l2: bool = False) -> ProcessorConfig:
    """The baseline machine of Table 1 (4096-entry everything)."""
    cfg = ProcessorConfig(
        mode="baseline",
        core=CoreConfig(),
        memory=MemoryConfig(memory_latency=memory_latency, perfect_l2=perfect_l2),
        branch=BranchConfig(),
        name=f"table1-baseline-lat{memory_latency}" + ("-perfectL2" if perfect_l2 else ""),
    )
    return cfg.validate()


def scaled_baseline(
    window: int,
    memory_latency: int = 1000,
    perfect_l2: bool = False,
    physical_registers: Optional[int] = None,
) -> ProcessorConfig:
    """Baseline with ROB, queues, LSQ and registers scaled to ``window``.

    This is the family of machines behind Figure 1 and the reference lines
    of Figures 9 and 11.
    """
    _positive("window", window)
    # Scale the register file with the window but keep the 64 architectural
    # mappings on top, so the ROB/queues (not renaming) are the limiter.
    regs = physical_registers if physical_registers is not None else window + 64
    cfg = ProcessorConfig(
        mode="baseline",
        core=CoreConfig(
            rob_size=window,
            int_queue_size=window,
            fp_queue_size=window,
            lsq_size=window,
            physical_registers=regs,
        ),
        memory=MemoryConfig(memory_latency=memory_latency, perfect_l2=perfect_l2),
        name=f"baseline-{window}-lat{memory_latency}" + ("-perfectL2" if perfect_l2 else ""),
    )
    return cfg.validate()


def cooo_config(
    iq_size: int = 128,
    sliq_size: int = 2048,
    checkpoints: int = 8,
    memory_latency: int = 1000,
    pseudo_rob_size: Optional[int] = None,
    reinsert_delay: int = 4,
    physical_registers: int = 4096,
    lsq_size: int = 4096,
    virtual_tags: Optional[int] = None,
    late_allocation: bool = False,
    perfect_l2: bool = False,
) -> ProcessorConfig:
    """The paper's Commit Out-of-Order machine.

    ``iq_size`` is both the general-purpose issue queue size and the
    pseudo-ROB size (the paper always sets them equal); ``sliq_size`` is
    the secondary buffer; ``checkpoints`` is the checkpoint-table size.
    """
    _positive("iq_size", iq_size)
    prob = pseudo_rob_size if pseudo_rob_size is not None else iq_size
    cfg = ProcessorConfig(
        mode="cooo",
        core=CoreConfig(
            rob_size=4096,  # unused by the cooo machine but kept for symmetry
            int_queue_size=iq_size,
            fp_queue_size=iq_size,
            lsq_size=lsq_size,
            physical_registers=physical_registers,
        ),
        memory=MemoryConfig(memory_latency=memory_latency, perfect_l2=perfect_l2),
        checkpoint=CheckpointConfig(table_size=checkpoints),
        sliq=SLIQConfig(
            enabled=True,
            size=sliq_size,
            pseudo_rob_size=prob,
            reinsert_delay=reinsert_delay,
        ),
        regalloc=RegisterAllocationConfig(
            late_allocation=late_allocation,
            virtual_tags=virtual_tags if virtual_tags is not None else 4096,
        ),
        name=f"cooo-iq{iq_size}-sliq{sliq_size}-ckpt{checkpoints}-lat{memory_latency}",
    )
    return cfg.validate()
