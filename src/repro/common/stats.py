"""Statistics collection for the simulator.

Every hardware model registers its counters, histograms and samplers in a
shared :class:`StatsRegistry`.  The registry is deliberately simple — a
flat namespace of named statistics — so the experiment harness can dump
everything into result tables without knowing which module produced which
number.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing (or explicitly settable) scalar statistic.

    ``kind`` declares the counter's cross-registry merge rule: ``"sum"``
    counters accumulate, ``"peak"`` counters are high-watermarks that
    combine by maximum (e.g. register-file peak occupancy).  Declaring
    the rule at registration keeps per-window worker registries mergeable
    into a parent bit-exactly.
    """

    __slots__ = ("name", "value", "kind")

    def __init__(self, name: str, value: float = 0, kind: str = "sum") -> None:
        self.name = name
        self.value = value
        self.kind = kind

    def add(self, amount: float = 1) -> None:
        """Increment the counter by ``amount`` (default 1)."""
        self.value += amount

    def set(self, value: float) -> None:
        """Overwrite the counter value."""
        self.value = value

    def peak(self, value: float) -> None:
        """Raise the counter to ``value`` if it is a new high-watermark."""
        if value > self.value:
            self.value = value

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class RunningMean:
    """Streaming mean/min/max over sampled values (e.g. per-cycle occupancy)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def sample(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def sample_many(self, value: float, count: int) -> None:
        """Record ``count`` observations of the same ``value``.

        Used by the event-driven simulation kernel to integrate a
        constant occupancy over a span of skipped cycles.  For integer
        samples (every occupancy is one) ``total`` accumulates exactly
        the same value as ``count`` individual :meth:`sample` calls, so
        skipped and per-cycle runs produce bit-identical means.
        """
        if count <= 0:
            return
        self.count += count
        self.total += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunningMean({self.name}: mean={self.mean:.3f}, n={self.count})"


class Histogram:
    """A bucketed histogram keyed by integer (or string) bucket labels."""

    __slots__ = ("name", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: Dict[object, float] = {}

    def add(self, bucket: object, amount: float = 1) -> None:
        self.buckets[bucket] = self.buckets.get(bucket, 0) + amount

    def total(self) -> float:
        return sum(self.buckets.values())

    def fraction(self, bucket: object) -> float:
        """Fraction of all observations falling in ``bucket``."""
        total = self.total()
        if total == 0:
            return 0.0
        return self.buckets.get(bucket, 0) / total

    def as_dict(self) -> Dict[object, float]:
        return dict(self.buckets)

    def reset(self) -> None:
        self.buckets.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}: {self.buckets})"


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of an already-sorted sequence.

    ``fraction`` is in [0, 1].  An empty sequence returns 0.0.
    """
    if not sorted_values:
        return 0.0
    if fraction <= 0:
        return sorted_values[0]
    if fraction >= 1:
        return sorted_values[-1]
    position = fraction * (len(sorted_values) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return sorted_values[lower]
    weight = position - lower
    interpolated = sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight
    # Clamp against floating-point rounding so the result always lies
    # between the two bracketing samples.
    return min(max(interpolated, sorted_values[lower]), sorted_values[upper])


class WeightedDistribution:
    """A distribution of values weighted by how many cycles each was observed.

    Used for the Figure 7 style "X% of the time the window held fewer than
    N instructions" percentile curves.
    """

    __slots__ = ("name", "_weights")

    def __init__(self, name: str) -> None:
        self.name = name
        self._weights: Dict[int, int] = {}

    def sample(self, value: int, weight: int = 1) -> None:
        self._weights[value] = self._weights.get(value, 0) + weight

    @property
    def total_weight(self) -> int:
        return sum(self._weights.values())

    def percentile(self, fraction: float) -> int:
        """Smallest value v such that at least ``fraction`` of the weight is <= v."""
        total = self.total_weight
        if total == 0:
            return 0
        target = fraction * total
        cumulative = 0
        for value in sorted(self._weights):
            cumulative += self._weights[value]
            if cumulative >= target:
                return value
        return max(self._weights)

    def mean(self) -> float:
        total = self.total_weight
        if total == 0:
            return 0.0
        return sum(v * w for v, w in self._weights.items()) / total

    def reset(self) -> None:
        self._weights.clear()


class StatsRegistry:
    """Flat namespace of statistics shared by all hardware models."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._means: Dict[str, RunningMean] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._distributions: Dict[str, WeightedDistribution] = {}

    # -- creation -----------------------------------------------------
    def counter(self, name: str, kind: str = "sum") -> Counter:
        """Return (creating if needed) the counter called ``name``.

        ``kind`` (``"sum"`` or ``"peak"``) only applies on creation; the
        model that registers a counter declares its merge rule once and
        every registry — parent or worker — registers it identically.
        """
        if name not in self._counters:
            self._counters[name] = Counter(name, kind=kind)
        return self._counters[name]

    def running_mean(self, name: str) -> RunningMean:
        if name not in self._means:
            self._means[name] = RunningMean(name)
        return self._means[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def distribution(self, name: str) -> WeightedDistribution:
        if name not in self._distributions:
            self._distributions[name] = WeightedDistribution(name)
        return self._distributions[name]

    # -- access -------------------------------------------------------
    def value(self, name: str, default: float = 0.0) -> float:
        """Value of counter ``name`` or ``default`` if it was never created."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else default

    def mean(self, name: str, default: float = 0.0) -> float:
        mean = self._means.get(name)
        return mean.mean if mean is not None else default

    def counters(self) -> Mapping[str, Counter]:
        return dict(self._counters)

    def histograms(self) -> Mapping[str, Histogram]:
        return dict(self._histograms)

    def snapshot(self) -> Dict[str, object]:
        """Serialise everything into plain Python values."""
        data: Dict[str, object] = {}
        for name, counter in self._counters.items():
            data[name] = counter.value
        for name, mean in self._means.items():
            data[name + ".mean"] = mean.mean
            data[name + ".max"] = mean.max
        for name, histogram in self._histograms.items():
            data[name] = histogram.as_dict()
        for name, dist in self._distributions.items():
            data[name] = {
                "weights": {int(k): v for k, v in dist._weights.items()},
                "mean": dist.mean(),
            }
        return data

    def reset(self) -> None:
        for group in (self._counters, self._means, self._histograms, self._distributions):
            for stat in group.values():
                stat.reset()

    # -- cross-process merge -------------------------------------------
    def dump_state(self) -> Dict[str, list]:
        """Raw internals of every statistic, in registration order.

        Unlike :meth:`snapshot` (which reduces means to ``.mean``/``.max``)
        this preserves the mergeable internals — counts, totals, bucket
        weights — so a registry populated in a worker process can be
        folded into the parent's registry by :meth:`merge_state` with the
        exact values a single shared registry would have accumulated.
        """
        return {
            "counters": [(name, c.value, c.kind) for name, c in self._counters.items()],
            "means": [
                (name, m.count, m.total, m.min, m.max) for name, m in self._means.items()
            ],
            "histograms": [
                (name, list(h.buckets.items())) for name, h in self._histograms.items()
            ],
            "distributions": [
                (name, list(d._weights.items())) for name, d in self._distributions.items()
            ],
        }

    def merge_state(self, state: Mapping[str, list]) -> None:
        """Fold a :meth:`dump_state` dump into this registry.

        Counters/totals/weights add; min/max combine.  Statistics the
        dump names but this registry lacks are created, in dump order, so
        merging per-window worker dumps in window order reproduces the
        registration order (and, for integer-valued statistics, the
        bit-exact values) of a serial run over the same windows.
        """
        for name, value, kind in state.get("counters", ()):
            counter = self.counter(name, kind)
            if kind == "peak":
                counter.peak(value)
            else:
                counter.value += value
        for name, count, total, minimum, maximum in state.get("means", ()):
            mean = self.running_mean(name)
            mean.count += count
            mean.total += total
            if minimum is not None and (mean.min is None or minimum < mean.min):
                mean.min = minimum
            if maximum is not None and (mean.max is None or maximum > mean.max):
                mean.max = maximum
        for name, buckets in state.get("histograms", ()):
            histogram = self.histogram(name)
            for bucket, amount in buckets:
                histogram.add(bucket, amount)
        for name, weights in state.get("distributions", ()):
            distribution = self.distribution(name)
            for value, weight in weights:
                distribution.sample(value, weight)


def ratio(numerator: float, denominator: float) -> float:
    """Safe division helper used all over the reporting code."""
    return numerator / denominator if denominator else 0.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; zero or negative inputs fall back to arithmetic mean."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        return sum(values) / len(values)
    log_sum = sum(math.log(v) for v in values)
    return math.exp(log_sum / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def harmonic_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return len(values) / sum(1.0 / v for v in values)
