"""Exception hierarchy for the simulator.

Every error raised by the package derives from :class:`ReproError`, so
callers embedding the simulator can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a configuration object is internally inconsistent.

    Also a :class:`ValueError`: malformed user input (a bad ``--sample``
    spec, an out-of-range knob) is a value error to callers that do not
    know the package hierarchy.
    """


class TraceError(ReproError):
    """Raised when a trace is malformed or a cursor is misused."""


class StructuralHazardError(ReproError):
    """Raised when a hardware structure is asked to exceed its capacity.

    The pipeline normally checks for free entries before allocating, so
    this error indicates a simulator bug rather than a modelled stall.
    """


class RenameError(ReproError):
    """Raised on inconsistent register-renaming state."""


class CheckpointError(ReproError):
    """Raised on inconsistent checkpoint-table state."""


class SimulationError(ReproError):
    """Raised when the simulation cannot make forward progress."""


class DeadlockError(SimulationError):
    """Raised when no instruction commits for an implausible number of cycles."""


class InjectedFaultError(ReproError):
    """Raised by a :class:`repro.robustness.FaultInjector` fault site.

    Deliberately distinguishable from every organic simulator error so
    recovery tests can assert that an *injected* failure (and nothing
    else) travelled the retry/quarantine path.
    """


class CellTimeoutError(ReproError):
    """Raised when one sweep cell exceeds its wall-clock watchdog budget."""


class SweepInterrupted(ReproError):
    """A sweep stopped early on SIGINT after draining in-flight cells.

    Carries enough for a one-line summary: how many cells finished (and
    were flushed to cache/journal) and how many remain pending.
    """

    def __init__(self, completed: int, pending: int, journal=None) -> None:
        self.completed = completed
        self.pending = pending
        self.journal = journal
        message = f"{completed} cell(s) completed, {pending} pending"
        if journal is not None:
            message += f" (resume with --resume --journal {journal})"
        super().__init__(message)
