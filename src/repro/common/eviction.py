"""LRU eviction for on-disk keyed stores (sweep cache, warm checkpoints).

Both persistent stores in the package — the sweep engine's
``ResultCache`` (``<key>.json``) and the sampled driver's warm-state
checkpoints (``<key>.warm.gz``) — are flat directories of
content-addressed files.  This module gives them one shared size-cap
policy: keep the most recently *used* entries, evict the rest.  "Used"
is the file's mtime; stores refresh it on every load hit (``os.utime``),
so recency survives process restarts the way an in-memory LRU cannot.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Tuple


def directory_size(directory: os.PathLike, suffix: str) -> int:
    """Total bytes of the ``suffix`` entries in ``directory`` (0 if absent)."""
    total = 0
    for path in _entries(directory, suffix):
        try:
            total += path.stat().st_size
        except OSError:
            continue
    return total


def touch(path: os.PathLike) -> None:
    """Refresh a store entry's recency (best-effort; races are harmless)."""
    try:
        os.utime(path, None)
    except OSError:
        pass


def evict_lru(
    directory: os.PathLike, max_bytes: Optional[int], suffix: str
) -> Tuple[int, int]:
    """Delete oldest-mtime ``suffix`` files until the store fits ``max_bytes``.

    Returns ``(files_removed, bytes_freed)``.  ``max_bytes`` of None (no
    cap) or a missing directory removes nothing.  Races with concurrent
    writers are tolerated: a file that disappears mid-scan is simply
    skipped, and a store momentarily over budget is trimmed on the next
    call.
    """
    if max_bytes is None:
        return 0, 0
    entries: List[Tuple[float, int, Path]] = []
    for path in _entries(directory, suffix):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, stat.st_size, path))
    total = sum(size for _mtime, size, _path in entries)
    if total <= max_bytes:
        return 0, 0
    removed = 0
    freed = 0
    for _mtime, size, path in sorted(entries):
        if total <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        freed += size
        removed += 1
    return removed, freed


def _entries(directory: os.PathLike, suffix: str) -> List[Path]:
    root = Path(directory).expanduser()
    if not root.is_dir():
        return []
    return [path for path in root.iterdir() if path.name.endswith(suffix) and path.is_file()]
