"""Baseline map-table register renaming.

The conventional machine renames through a RAM map table: one entry per
logical register holding the physical register that currently provides its
value.  The previous mapping of the destination travels with the
instruction (``old_phys_dest``) and is freed when the instruction commits,
exactly as in an R10000-style design.

Because the simulator never fetches wrong-path instructions (a predicted-
wrong branch stalls fetch until it resolves), the map table is never
polluted by speculation and needs no shadow copies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.errors import RenameError
from ..common.stats import StatsRegistry
from ..isa import registers as regs
from ..isa.instruction import DynInst
from .regfile import PhysicalRegisterFile


class MapTableRenamer:
    """Logical→physical map table backed by a :class:`PhysicalRegisterFile`."""

    __slots__ = ("regfile", "_map", "_renames")

    def __init__(self, regfile: PhysicalRegisterFile, stats: StatsRegistry) -> None:
        if regfile.num_regs < regs.NUM_LOGICAL_REGS:
            raise RenameError(
                "need at least one physical register per logical register "
                f"({regs.NUM_LOGICAL_REGS}), got {regfile.num_regs}"
            )
        self.regfile = regfile
        self._map: List[int] = []
        self._renames = stats.counter("rename.instructions")
        self.reset()

    def reset(self) -> None:
        """Map every logical register to a fresh, ready physical register."""
        self.regfile.reset()
        self._map = [self.regfile.allocate() for _ in range(regs.NUM_LOGICAL_REGS)]
        self.regfile.mark_all_ready(self._map)

    # -- queries -----------------------------------------------------------
    def mapping(self, logical: int) -> int:
        """Current physical register of ``logical``."""
        return self._map[logical]

    def mappings(self) -> Dict[int, int]:
        """Copy of the whole map table."""
        return {logical: phys for logical, phys in enumerate(self._map)}

    def can_rename(self, inst: DynInst) -> bool:
        """True if a free destination register is available (or none is needed)."""
        return inst.dest is None or self.regfile.has_free()

    # -- renaming ------------------------------------------------------------
    def rename(self, inst: DynInst) -> Tuple[List[int], Optional[int], Optional[int]]:
        """Rename ``inst`` in place and return (srcs, dest, old_dest).

        The caller must have checked :meth:`can_rename`.
        """
        phys_srcs = [self._map[src] for src in inst.srcs]
        phys_dest: Optional[int] = None
        old_phys_dest: Optional[int] = None
        if inst.dest is not None:
            phys_dest = self.regfile.allocate()
            old_phys_dest = self._map[inst.dest]
            self._map[inst.dest] = phys_dest
        inst.phys_srcs = phys_srcs
        inst.phys_dest = phys_dest
        inst.old_phys_dest = old_phys_dest
        self._renames.add()
        return phys_srcs, phys_dest, old_phys_dest

    # -- commit-time release ----------------------------------------------------
    def release_on_commit(self, inst: DynInst) -> None:
        """Free the previous mapping of the committing instruction's destination."""
        if inst.old_phys_dest is not None:
            self.regfile.free(inst.old_phys_dest)

    # -- squash-time undo --------------------------------------------------------
    def undo_rename(self, inst: DynInst) -> None:
        """Reverse the renaming of a squashed instruction.

        Must be called in reverse program order (youngest first) so that
        the map table currently points at this instruction's destination.
        """
        if inst.phys_dest is None:
            return
        if inst.dest is None or inst.old_phys_dest is None:
            raise RenameError(f"cannot undo rename of seq={inst.seq}: missing old mapping")
        if self._map[inst.dest] != inst.phys_dest:
            raise RenameError(
                f"undo out of order: {regs.reg_name(inst.dest)} maps to "
                f"{self._map[inst.dest]}, expected {inst.phys_dest}"
            )
        self._map[inst.dest] = inst.old_phys_dest
        self.regfile.free(inst.phys_dest)
