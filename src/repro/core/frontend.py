"""The fetch engine: trace cursor, branch prediction and fetch redirects.

Because the simulator is trace-driven it cannot synthesise wrong-path
instructions.  Instead, when the front end fetches a branch whose
prediction disagrees with the trace outcome (or a taken branch that misses
in the BTB), it marks the branch mispredicted and *keeps fetching* the
following (correct-path) instructions as stand-ins for the wrong path:
they occupy the window, consume bandwidth and are squashed when the branch
resolves, at which point the cursor is rewound and fetch restarts after
the redirect penalty.  This reproduces the first-order cost of a
misprediction — recovery distance and pipeline refill — which is exactly
what distinguishes pseudo-ROB recovery from checkpoint rollback in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..branch import BranchTargetBuffer, GSharePredictor, build_predictor
from ..common.config import BranchConfig, MemoryConfig
from ..common.stats import StatsRegistry
from ..isa.instruction import Instruction
from ..memory.hierarchy import CacheHierarchy
from ..trace.trace import Trace, TraceCursor


@dataclass(slots=True)
class FetchedInstruction:
    """One instruction handed to the pipeline by the front end."""

    trace_index: int
    instr: Instruction
    predicted_taken: Optional[bool]
    mispredicted: bool
    #: Global branch history as of fetching this instruction (gshare
    #: only); checkpoints snapshot it for rollback repair.
    history: Optional[int] = None


class FetchUnit:
    """Fetches instructions from a replayable trace through the I-cache."""

    __slots__ = (
        "cursor",
        "config",
        "hierarchy",
        "fetch_width",
        "predictor",
        "btb",
        "_gshare",
        "_stall_branch_seq",
        "_resume_cycle",
        "_resolved_branches",
        "_fetched",
        "_stall_cycles",
        "_redirects",
    )

    def __init__(
        self,
        trace: Trace,
        branch_config: BranchConfig,
        hierarchy: CacheHierarchy,
        stats: StatsRegistry,
        fetch_width: int,
    ) -> None:
        self.cursor = TraceCursor(trace)
        self.config = branch_config
        self.hierarchy = hierarchy
        self.fetch_width = fetch_width
        self.predictor = build_predictor(branch_config, stats)
        self.btb = BranchTargetBuffer(branch_config, stats)
        self._gshare = isinstance(self.predictor, GSharePredictor)
        self._stall_branch_seq: Optional[int] = None
        self._resume_cycle = 0
        #: Trace indices of branches the back end has already resolved
        #: through a checkpoint rollback.  A trace index names one
        #: *dynamic* branch, so its outcome is architecturally known on
        #: re-fetch: recovery hardware resumes on the correct path
        #: rather than re-predicting (and re-training on) the same
        #: branch — re-prediction is what makes a deterministic
        #: mispredict-rollback-replay livelock possible.
        self._resolved_branches: set = set()
        self._fetched = stats.counter("fetch.instructions")
        self._stall_cycles = stats.counter("fetch.mispredict_stall_cycles")
        self._redirects = stats.counter("fetch.redirects")

    # -- status -----------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return self.cursor.exhausted

    @property
    def stalled(self) -> bool:
        return self._stall_branch_seq is not None

    @property
    def resume_cycle(self) -> int:
        """Earliest cycle at which fetch can deliver again (may be past).

        Used by the event-driven kernel as the "front end wakes up"
        event when fetch is waiting out an I-cache miss or a redirect
        penalty.
        """
        return self._resume_cycle

    def can_fetch(self, cycle: int) -> bool:
        """True if the front end may fetch this cycle."""
        if self.exhausted or self.stalled:
            return False
        return cycle >= self._resume_cycle

    # -- fetching ------------------------------------------------------------------
    def fetch_block(self, cycle: int) -> List[FetchedInstruction]:
        """Fetch up to ``fetch_width`` instructions starting at ``cycle``.

        The block ends early at a taken branch (one redirect per cycle).
        Mispredicted branches do not stop fetch: the following correct-path
        instructions stand in for the wrong path until the branch resolves
        and the pipeline squashes them (see the module docstring).
        """
        block: List[FetchedInstruction] = []
        if not self.can_fetch(cycle):
            if self.stalled:
                self._stall_cycles.add()
            return block
        first = self.cursor.peek()
        if first is not None:
            icache_latency = self.hierarchy.inst_access(first.pc, cycle)
            if icache_latency > self.hierarchy.config.il1.latency:
                # An instruction-cache miss simply delays the next fetch.
                self._resume_cycle = cycle + icache_latency
        while len(block) < self.fetch_width:
            instr = self.cursor.peek()
            if instr is None:
                break
            trace_index = self.cursor.position
            self.cursor.fetch()
            self._fetched.add()
            # History *before* this instruction's own prediction: the
            # state a re-fetch after a checkpoint rollback must resume
            # under (otherwise the rolled-back wrong path leaves the
            # history register polluted and the same branch can
            # mispredict on every re-execution — a commit livelock).
            history = self.predictor.snapshot_history() if self._gshare else None
            predicted: Optional[bool] = None
            mispredicted = False
            if instr.is_branch:
                predicted, mispredicted = self._handle_branch(instr, trace_index)
            block.append(
                FetchedInstruction(trace_index, instr, predicted, mispredicted, history)
            )
            if instr.is_branch and instr.branch_taken:
                self._redirects.add()
                break
        return block

    def _handle_branch(self, instr: Instruction, trace_index: int) -> tuple:
        """Predict one branch, train the tables and detect a misprediction."""
        if self.config.perfect:
            return instr.branch_taken, False
        if trace_index in self._resolved_branches:
            # This dynamic branch already resolved and caused a checkpoint
            # rollback; its re-fetch takes the known-correct path.  The
            # history register still sees the outcome (so younger
            # predictions stay consistent) but the tables are not trained
            # again — repeat training on the same dynamic branch is what
            # sustains counter oscillation.
            actual = instr.branch_taken
            if actual:
                self.btb.update(instr.pc, instr.branch_target or 0)
            self.predictor.record_outcome(actual, actual)
            if isinstance(self.predictor, GSharePredictor):
                self.predictor.warm(instr.pc, actual)
            return actual, False
        history = None
        if isinstance(self.predictor, GSharePredictor):
            history = self.predictor.snapshot_history()
        predicted = self.predictor.predict(instr.pc)
        actual = instr.branch_taken
        target_known = True
        if actual:
            target_known = self.btb.lookup(instr.pc) is not None
            self.btb.update(instr.pc, instr.branch_target or 0)
        mispredicted = predicted != actual or (actual and not target_known)
        self.predictor.record_outcome(predicted, actual)
        if isinstance(self.predictor, GSharePredictor):
            self.predictor.update(instr.pc, actual, history)
            if mispredicted:
                self.predictor.correct_history(history, actual)
        else:
            self.predictor.update(instr.pc, actual)
        return predicted, mispredicted

    # -- redirects and stalls --------------------------------------------------------------
    def redirect(self, trace_index: int, resume_cycle: int) -> None:
        """Rewind fetch to ``trace_index`` and restart at ``resume_cycle``.

        Used both for misprediction recovery (resume right after the
        resolved branch) and for checkpoint rollback (resume at the
        checkpointed instruction).
        """
        self.cursor.rewind_to(trace_index)
        self._stall_branch_seq = None
        self._resume_cycle = max(self._resume_cycle, resume_cycle)

    def stall_for_branch(self, seq: int) -> None:
        """Stop fetching until the branch with dynamic sequence ``seq`` resolves.

        Kept for stall-based front-end experiments and unit tests; the
        default pipelines use :meth:`redirect`-based recovery instead.
        """
        self._stall_branch_seq = seq

    def branch_resolved(self, seq: int, cycle: int) -> None:
        """The back end resolved the mispredicted branch ``seq``."""
        if self._stall_branch_seq == seq:
            self._stall_branch_seq = None
            self._resume_cycle = max(self._resume_cycle, cycle + self.config.penalty)

    def clear_stall(self, resume_cycle: int) -> None:
        """Forget any pending stall (used by checkpoint rollback)."""
        self._stall_branch_seq = None
        self._resume_cycle = max(self._resume_cycle, resume_cycle)

    def rewind(self, trace_index: int) -> None:
        """Move the fetch cursor back for checkpoint-rollback re-execution."""
        self.cursor.rewind_to(trace_index)

    def note_resolved(self, trace_index: int) -> None:
        """Record that the dynamic branch at ``trace_index`` has resolved.

        Called on checkpoint rollback; every later fetch of this index
        predicts the (now architecturally known) outcome.
        """
        self._resolved_branches.add(trace_index)

    def repair_history(self, history: Optional[int]) -> None:
        """Restore the gshare history register after a checkpoint rollback.

        ``history`` is the fetch-time snapshot the checkpointed
        instruction was predicted under (``None`` for non-gshare front
        ends, where there is nothing to repair).
        """
        if self._gshare and history is not None:
            self.predictor.repair_history(history)
