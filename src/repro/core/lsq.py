"""The load/store queue.

Per the paper, the LSQ is modelled "pseudo-perfect": it is sized large
enough (4096 entries in Table 1) to never be the bottleneck, but the
mechanics are still implemented — entries are allocated at dispatch in
program order, loads forward from older resident stores to the same word,
and stores keep their entry until they drain to the cache at (checkpoint)
commit, which is exactly why the paper needs the 64-store checkpoint
threshold to avoid deadlock.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..common.errors import StructuralHazardError
from ..common.stats import StatsRegistry
from ..isa.instruction import DynInst


def _word_address(addr: int) -> int:
    """Addresses are compared at 8-byte-word granularity for forwarding."""
    return addr >> 3


class LoadStoreQueue:
    """Tracks in-flight memory instructions and store-to-load forwarding."""

    __slots__ = (
        "capacity",
        "_occupancy",
        "_stores_by_word",
        "_inserts",
        "_forwards",
        "_full_stalls",
        "_occupancy_mean",
    )

    def __init__(self, capacity: int, stats: StatsRegistry) -> None:
        if capacity <= 0:
            raise StructuralHazardError("LSQ capacity must be positive")
        self.capacity = capacity
        self._occupancy = 0
        self._stores_by_word: Dict[int, List[DynInst]] = {}
        self._inserts = stats.counter("lsq.inserts")
        self._forwards = stats.counter("lsq.store_forwards")
        self._full_stalls = stats.counter("lsq.full_stalls")
        self._occupancy_mean = stats.running_mean("lsq.occupancy")

    # -- capacity --------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self._occupancy

    @property
    def is_full(self) -> bool:
        return self._occupancy >= self.capacity

    def free_entries(self) -> int:
        return self.capacity - self._occupancy

    def note_full_stall(self, cycles: int = 1) -> None:
        self._full_stalls.add(cycles)

    def sample_occupancy(self, cycles: int = 1) -> None:
        self._occupancy_mean.sample_many(self._occupancy, cycles)

    # -- allocation ---------------------------------------------------------------------
    def allocate(self, inst: DynInst) -> None:
        """Give ``inst`` (a load or store) an LSQ entry at dispatch."""
        if not inst.is_memory:
            raise StructuralHazardError("only memory instructions occupy the LSQ")
        if self.is_full:
            raise StructuralHazardError("LSQ overflow")
        inst.lsq_index = inst.seq
        self._occupancy += 1
        self._inserts.add()
        if inst.is_store:
            word = _word_address(inst.instr.mem_addr or 0)
            self._stores_by_word.setdefault(word, []).append(inst)

    def release(self, inst: DynInst) -> None:
        """Free the entry (at commit / store drain / squash)."""
        if inst.lsq_index is None:
            return
        inst.lsq_index = None
        self._occupancy -= 1
        if self._occupancy < 0:
            raise StructuralHazardError("LSQ occupancy underflow")
        if inst.is_store:
            word = _word_address(inst.instr.mem_addr or 0)
            stores = self._stores_by_word.get(word)
            if stores and inst in stores:
                stores.remove(inst)
                if not stores:
                    del self._stores_by_word[word]

    # -- forwarding ----------------------------------------------------------------------
    def forwarding_store(self, load: DynInst) -> Optional[DynInst]:
        """Youngest older resident store writing the load's word, if any."""
        word = _word_address(load.instr.mem_addr or 0)
        stores = self._stores_by_word.get(word)
        if not stores:
            return None
        for store in reversed(stores):
            if store.squashed or store.lsq_index is None:
                continue
            if store.seq < load.seq:
                self._forwards.add()
                return store
        return None

    # -- squash --------------------------------------------------------------------------
    def remove_squashed(self, squashed: List[DynInst]) -> None:
        """Release the entries of squashed memory instructions."""
        for inst in squashed:
            if inst.is_memory and inst.lsq_index is not None:
                self.release(inst)
