"""Sampled execution: functional fast-forward plus detailed sample windows.

Detailed cycle-level simulation costs tens of microseconds per
instruction; the regimes this paper cares about (thousands of in-flight
instructions hiding ~kilocycle memory latencies) only show up on long
traces.  This module implements the standard way out — statistical
sampling in the SMARTS tradition:

1. most of the trace is **functionally fast-forwarded**: instructions
   retire in program order with no pipeline timing, but every one still
   drives the memory hierarchy (tag/LRU/dirty state, prefetcher
   training, MSHR-free fills) and the branch predictor/BTB, so
   long-lived microarchitectural state stays warm;
2. periodically a **detailed window** runs on the real pipeline: a
   ``warmup`` span refills the (short-lived) pipeline structures
   unmeasured, then ``window`` instructions are measured
   cycle-accurately;
3. per-window IPCs feed a CLT confidence interval and the
   instruction-weighted ratio estimator extrapolates whole-trace IPC.

The orchestration lives in :func:`run_sampled`; the schedule comes from
:class:`~repro.common.config.SamplingPlan`.  Each detailed window is an
independent pipeline over a trace slice that *adopts* the shared warm
hierarchy/predictor state (``PipelineBase.adopt_warm_state``), which
makes "drain in-flight state at window boundaries" exact by
construction: a window runs to completion, and the hierarchy's MSHR
timers are retired between windows (:meth:`CacheHierarchy.drain`).

Sampling is strictly opt-in.  Nothing here runs unless a
:class:`SamplingPlan` is passed to :class:`repro.api.Simulation` /
:func:`repro.api.run` / ``run_many`` or ``--sample`` on the CLI, and a
plan whose period leaves nothing to fast-forward degenerates to one
continuous detailed run whose result is bit-identical to the unsampled
simulator.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Tuple

from ..branch import BranchTargetBuffer, build_predictor
from ..common.config import ProcessorConfig, SamplingPlan
from ..common.stats import StatsRegistry, ratio
from ..memory.hierarchy import CacheHierarchy
from ..trace.trace import Trace
from .registry_machines import create_pipeline, get_machine
from .result import SimulationResult


class FunctionalWarmer:
    """Retires instructions in program order without modeling timing.

    The warmer owns nothing: it drives the *shared* hierarchy, direction
    predictor and BTB that the detailed windows adopt.  Per instruction
    it touches the instruction side, trains the branch structures with
    the trace outcome (predictors end in exactly the state a detailed
    front end would leave — see ``GSharePredictor.warm``), and performs
    the MSHR-free data-access path (fills, recency, prefetcher
    training).  Only the ``sampling.*`` accounting counters are bumped,
    so detailed-mode statistics stay uncontaminated.
    """

    __slots__ = ("hierarchy", "predictor", "btb", "_perfect_branches", "_fast_forwarded")

    def __init__(
        self,
        config: ProcessorConfig,
        hierarchy: CacheHierarchy,
        predictor,
        btb: BranchTargetBuffer,
        stats: StatsRegistry,
    ) -> None:
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.btb = btb
        self._perfect_branches = config.branch.perfect
        self._fast_forwarded = stats.counter("sampling.fast_forwarded_instructions")

    def fast_forward(self, trace: Trace, start: int, count: int) -> int:
        """Functionally retire ``trace[start:start+count]``; returns the new position."""
        hierarchy = self.hierarchy
        warm_inst = hierarchy.warm_inst
        warm_data = hierarchy.warm_data
        predictor_warm = self.predictor.warm
        btb_update = self.btb.update
        train_branches = not self._perfect_branches
        # The detailed front end touches the I-cache once per fetch block,
        # not per instruction; warming at line granularity matches that
        # (and is the hot-loop win — most instructions share a line).
        line_shift = hierarchy.config.il1.line_bytes.bit_length() - 1
        last_line = -1
        for instr in trace.instructions_between(start, start + count):
            pc = instr.pc
            pc_line = pc >> line_shift
            if pc_line != last_line:
                warm_inst(pc)
                last_line = pc_line
            if instr.is_branch:
                if train_branches:
                    predictor_warm(pc, instr.branch_taken)
                    if instr.branch_taken:
                        btb_update(pc, instr.branch_target or 0)
            elif instr.is_memory:
                warm_data(instr.mem_addr or 0, instr.is_store, pc=pc)
        self._fast_forwarded.add(count)
        return start + count


#: Two-sided 97.5% Student-t quantiles by degrees of freedom; sampled runs
#: often have only a handful of windows, where the normal 1.96 would
#: undercover badly (df=2 needs 4.30).
_T_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093,
    20: 2.086, 25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}


def _t_quantile(df: int) -> float:
    """Quantile for ``df`` degrees of freedom, never narrower than the truth.

    Between table entries the quantile decreases with df, so rounding
    *down* to the largest tabulated df at or below the requested one
    always yields a multiplier at least as wide as the exact value.
    """
    exact = _T_975.get(df)
    if exact is not None:
        return exact
    return _T_975[max(key for key in _T_975 if key <= df)]


def _confidence_interval(ipcs: Sequence[float]) -> float:
    """Half-width of the 95% CI on the mean of per-window IPCs.

    Student-t with ``n - 1`` degrees of freedom: window counts are often
    small (an XL trace under the default plans yields 3-7 windows), so
    the small-sample multiplier matters for honest coverage.
    """
    n = len(ipcs)
    if n < 2:
        return 0.0
    mean = sum(ipcs) / n
    variance = sum((value - mean) ** 2 for value in ipcs) / (n - 1)
    return _t_quantile(n - 1) * math.sqrt(variance / n)


def _window_record(start: int, instructions: int, cycles: int) -> Dict[str, object]:
    return {
        "start": start,
        "instructions": instructions,
        "cycles": cycles,
        "ipc": ratio(instructions, cycles),
    }


def _merge_marked_windows(
    boundaries: List[Tuple[int, int]], start: int = 0
) -> List[Dict[str, object]]:
    """Per-window records from (committed, cycle) boundaries.

    ``start`` is the trace position of the first boundary; subsequent
    window starts accumulate from it.  On the checkpointed machine
    commits arrive a whole checkpoint at a time, so consecutive
    boundaries can share a cycle; zero-cycle spans are folded into the
    following window (or the previous one at the tail) to keep every
    reported window's IPC finite.
    """
    windows: List[Dict[str, object]] = []
    acc_instr = 0
    acc_cycles = 0
    win_start = start
    previous = boundaries[0]
    for boundary in boundaries[1:]:
        acc_instr += boundary[0] - previous[0]
        acc_cycles += boundary[1] - previous[1]
        previous = boundary
        if acc_instr > 0 and acc_cycles > 0:
            windows.append(_window_record(win_start, acc_instr, acc_cycles))
            win_start += acc_instr
            acc_instr = 0
            acc_cycles = 0
    if acc_instr or acc_cycles:
        if windows:
            last = windows[-1]
            last["instructions"] = int(last["instructions"]) + acc_instr
            last["cycles"] = int(last["cycles"]) + acc_cycles
            last["ipc"] = ratio(last["instructions"], last["cycles"])
        elif acc_instr:
            windows.append(_window_record(win_start, acc_instr, acc_cycles))
    return windows


def _run_continuous(
    config: ProcessorConfig,
    trace: Trace,
    plan: SamplingPlan,
    *,
    probes: Sequence = (),
    default_probes: bool = True,
    force_per_cycle: bool = False,
    max_cycles: Optional[int] = None,
    progress=None,
    progress_interval: int = 8192,
    tracer=None,
) -> SimulationResult:
    """Fully-detailed degenerate case: window attribution over one exact run.

    Used when the plan leaves nothing to fast-forward (``period ==
    warmup + window``) or the trace is too short to hold a warmed
    window.  The underlying simulation is the ordinary kernel, so
    cycles, IPC and every statistic are bit-identical to the unsampled
    run; only the sampling metadata (windows, CI) is layered on top.
    """
    import dataclasses

    pipeline = create_pipeline(
        config, trace, None, probes=probes, default_probes=default_probes
    )
    total = len(trace)
    marks = list(range(plan.window, total, plan.window))
    span = (
        tracer.span("sampling:window", category="sampling", start=0, instructions=total)
        if tracer is not None
        else nullcontext()
    )
    with span:
        result = pipeline.run(
            max_cycles=max_cycles,
            progress=progress,
            progress_interval=progress_interval,
            force_per_cycle=force_per_cycle,
            commit_marks=marks,
        )
    boundaries = [(0, 0)]
    boundaries.extend(
        (target, cycle) for target, cycle, _fetched in pipeline.commit_mark_records
    )
    if not boundaries or boundaries[-1][0] < result.committed_instructions:
        boundaries.append((result.committed_instructions, result.cycles))
    windows = _merge_marked_windows(boundaries)
    ipcs = [float(window["ipc"]) for window in windows]
    return dataclasses.replace(
        result, sampled=True, windows=windows, ipc_ci95=_confidence_interval(ipcs)
    )


def run_sampled(
    config: ProcessorConfig,
    trace: Trace,
    plan: SamplingPlan,
    *,
    probes: Sequence = (),
    default_probes: bool = True,
    force_per_cycle: bool = False,
    max_cycles: Optional[int] = None,
    progress=None,
    progress_interval: int = 8192,
    tracer=None,
) -> SimulationResult:
    """Run ``trace`` under ``plan``; returns an extrapolated result.

    The returned :class:`SimulationResult` has ``sampled=True``:
    ``cycles``/``committed_instructions`` cover the measured windows (so
    ``ipc`` is the instruction-weighted sampled estimator), ``windows``
    holds the per-window records behind ``ipc_ci95``, and ``stats``
    covers detailed execution — fast-forwarded instructions appear only
    under ``sampling.fast_forwarded_instructions``.

    ``max_cycles`` bounds each detailed window individually (one window
    is one pipeline run); ``probes`` attach to every window's pipeline
    in turn.

    ``tracer`` is an optional :class:`repro.telemetry.Tracer`: each
    fast-forward stretch opens a ``sampling:fast-forward`` span and each
    detailed segment a ``sampling:window`` span, splitting the run's
    wall clock into warm-up vs measurement.  Purely observational — the
    clock lives behind the tracer (this module never reads time itself)
    and the simulated result is bit-identical with or without one.
    """
    config.validate()
    plan.validate()
    segments = plan.schedule(len(trace))
    if plan.fast_forward_per_period == 0 or not any(
        measure for _skip, _warm, measure in segments
    ):
        # Nothing to fast-forward (period == warmup + window) or nothing
        # to sample around: the whole trace is one detailed run.
        return _run_continuous(
            config,
            trace,
            plan,
            probes=probes,
            default_probes=default_probes,
            force_per_cycle=force_per_cycle,
            max_cycles=max_cycles,
            progress=progress,
            progress_interval=progress_interval,
            tracer=tracer,
        )

    # Warm state must mirror what the machine actually simulates: variant
    # machines (perfect-l2, unbounded-rob) force config fields at pipeline
    # construction, and the windows adopt *this* hierarchy/predictor.
    effective = get_machine(config.mode).pipeline_class.effective_config(config)
    stats = StatsRegistry()
    hierarchy = CacheHierarchy(effective.memory, stats)
    predictor = build_predictor(effective.branch, stats)
    btb = BranchTargetBuffer(effective.branch, stats)
    warmer = FunctionalWarmer(effective, hierarchy, predictor, btb, stats)
    window_counter = stats.counter("sampling.windows")
    detailed_counter = stats.counter("sampling.detailed_instructions")
    degenerate_counter = stats.counter("sampling.degenerate_windows")
    commit_width = config.core.commit_width

    windows: List[Dict[str, object]] = []
    measured_cycles = 0
    measured_instructions = 0
    measured_fetched = 0
    position = 0
    for skip, warmup, measure in segments:
        if skip:
            ff_span = (
                tracer.span(
                    "sampling:fast-forward", category="sampling", instructions=skip
                )
                if tracer is not None
                else nullcontext()
            )
            with ff_span:
                position = warmer.fast_forward(trace, position, skip)
        detailed = warmup + measure
        if detailed == 0:
            continue
        segment_trace = trace.slice(position, position + detailed)
        pipeline = create_pipeline(
            config, segment_trace, stats, probes=probes, default_probes=default_probes
        )
        pipeline.adopt_warm_state(hierarchy, predictor, btb)
        hierarchy.drain()
        window_span = (
            tracer.span(
                "sampling:window",
                category="sampling",
                start=position,
                warmup=warmup,
                instructions=detailed,
            )
            if tracer is not None
            else nullcontext()
        )
        with window_span:
            segment_result = pipeline.run(
                max_cycles=max_cycles,
                progress=progress,
                progress_interval=progress_interval,
                force_per_cycle=force_per_cycle,
                commit_marks=[warmup] if warmup else None,
            )
        detailed_counter.add(detailed)
        if warmup and pipeline.commit_mark_records:
            _target, warm_cycle, warm_fetched = pipeline.commit_mark_records[0]
        else:
            warm_cycle, warm_fetched = 0, 0
        # Both boundaries are commit events (the warmup crossing and the
        # segment's final commit), so the pipeline-depth and memory-latency
        # offset each carries cancels out of the measured span.  On the
        # checkpointed machine the crossing snaps to a checkpoint drain;
        # windows spanning several checkpoint quanta keep that snap small.
        window_cycles = segment_result.cycles - warm_cycle
        window_instructions = detailed - warmup
        window_start = position + warmup
        if window_cycles <= 0 or window_instructions > window_cycles * commit_width:
            # A window thinner than the machine's commit quantum: the whole
            # segment committed in one drain burst and the boundary span
            # implies a physically impossible rate (above commit width).
            # Fall back to whole-segment measurement — biased by fill and
            # drain, but sane — and flag it so callers can widen the plan.
            window_cycles = segment_result.cycles
            window_instructions = detailed
            window_start = position
            warm_fetched = 0
            degenerate_counter.add()
        windows.append(_window_record(window_start, window_instructions, window_cycles))
        window_counter.add()
        measured_cycles += window_cycles
        measured_instructions += window_instructions
        measured_fetched += max(0, segment_result.fetched_instructions - warm_fetched)
        position += detailed
    ipcs = [float(window["ipc"]) for window in windows]
    return SimulationResult(
        config_name=config.name or config.mode,
        mode=config.mode,
        workload=trace.name,
        cycles=measured_cycles,
        committed_instructions=measured_instructions,
        fetched_instructions=measured_fetched,
        stats=stats.snapshot(),
        sampled=True,
        windows=windows,
        ipc_ci95=_confidence_interval(ipcs),
    )
