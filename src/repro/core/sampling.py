"""Sampled execution: functional fast-forward plus detailed sample windows.

Detailed cycle-level simulation costs tens of microseconds per
instruction; the regimes this paper cares about (thousands of in-flight
instructions hiding ~kilocycle memory latencies) only show up on long
traces.  This module implements the standard way out — statistical
sampling in the SMARTS tradition:

1. one **functional pass** covers the whole trace: instructions retire
   in program order with no pipeline timing, but every one still drives
   the memory hierarchy (tag/LRU/dirty state, prefetcher training,
   MSHR-free fills) and the branch predictor/BTB, so long-lived
   microarchitectural state stays warm.  At each detailed-window
   boundary the pass *snapshots* that warm state;
2. each **detailed window** runs on the real pipeline over its trace
   slice, adopting its boundary snapshot
   (``PipelineBase.adopt_warm_state``): a ``warmup`` span refills the
   (short-lived) pipeline structures unmeasured, then ``window``
   instructions are measured cycle-accurately;
3. per-window IPCs feed a CLT confidence interval and the
   instruction-weighted ratio estimator extrapolates whole-trace IPC.

Because every window starts from a snapshot of the *functional* pass —
never from another window's detailed leftovers — the windows are
independent by construction.  That buys two things on top of PR 5's
serial driver:

* **Parallel windows** (``parallel_windows=N`` /  ``--sample-jobs N``):
  the windows fan out across a supervised
  :class:`~repro.robustness.pool.ResilientPool`, each worker simulating
  one window and returning its cycle attribution plus a raw statistics
  dump; the parent reduces the dumps in window order, so the result —
  windows, IPC, CI, every statistic — is bit-identical to the serial
  driver.
* **Reusable warm-state checkpoints** (``checkpoint_dir=``): the
  snapshots are persisted as a sha256-keyed
  :class:`~repro.trace.io.WarmCheckpoint` file.  The key covers only
  what shapes warm state (trace digest, sampling plan, hierarchy and
  predictor parameters, simulator version — see
  :mod:`repro.core.warmstate`), so machine configs differing in
  ROB/checkpoint/SLIQ/latency knobs share one functional pass: an
  N-machine XL sweep warms up once, not N times.

Sampling is strictly opt-in.  Nothing here runs unless a
:class:`SamplingPlan` is passed to :class:`repro.api.Simulation` /
:func:`repro.api.run` / ``run_many`` or ``--sample`` on the CLI, and a
plan whose period leaves nothing to fast-forward degenerates to one
continuous detailed run whose result is bit-identical to the unsampled
simulator.  Parallelism and checkpoint reuse are opt-in on top of that
and never change the result, only where the time is spent.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..branch import BranchTargetBuffer
from ..common.config import ProcessorConfig, SamplingPlan
from ..common.errors import ConfigurationError, SimulationError
from ..common.eviction import evict_lru
from ..common.stats import StatsRegistry, ratio
from ..memory.hierarchy import CacheHierarchy
from ..trace.io import CHECKPOINT_SUFFIX, WarmCheckpoint
from ..trace.trace import Trace
from . import warmstate
from .registry_machines import create_pipeline, get_machine
from .result import SimulationResult

#: Functional warm-up passes executed by this process (tests assert that
#: checkpoint reuse makes an N-machine sweep warm up once, mirroring the
#: ``TRACE_BUILDS`` counter in :mod:`repro.experiments.sweep`).
WARM_PASSES = 0


class FunctionalWarmer:
    """Retires instructions in program order without modeling timing.

    The warmer owns nothing: it drives the hierarchy, direction
    predictor and BTB whose boundary snapshots the detailed windows
    adopt.  Per instruction it touches the instruction side, trains the
    branch structures with the trace outcome (predictors end in exactly
    the state a detailed front end would leave — see
    ``GSharePredictor.warm``), and performs the MSHR-free data-access
    path (fills, recency, prefetcher training).  Only the ``sampling.*``
    accounting counters are bumped, so detailed-mode statistics stay
    uncontaminated.
    """

    __slots__ = ("hierarchy", "predictor", "btb", "_perfect_branches", "_fast_forwarded")

    def __init__(
        self,
        config: ProcessorConfig,
        hierarchy: CacheHierarchy,
        predictor,
        btb: BranchTargetBuffer,
        stats: StatsRegistry,
    ) -> None:
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.btb = btb
        self._perfect_branches = config.branch.perfect
        self._fast_forwarded = stats.counter("sampling.fast_forwarded_instructions")

    def fast_forward(self, trace: Trace, start: int, count: int, record: bool = True) -> int:
        """Functionally retire ``trace[start:start+count]``; returns the new position.

        ``record=False`` advances warm state without bumping the
        fast-forward counter — used when the functional pass walks
        *through* a detailed region purely for state continuity, so
        ``sampling.fast_forwarded_instructions`` keeps meaning "skipped,
        never simulated in detail" and the accounting identity
        ``detailed + fast_forwarded == len(trace)`` holds.
        """
        hierarchy = self.hierarchy
        warm_inst = hierarchy.warm_inst
        warm_data = hierarchy.warm_data
        predictor_warm = self.predictor.warm
        btb_update = self.btb.update
        train_branches = not self._perfect_branches
        # The detailed front end touches the I-cache once per fetch block,
        # not per instruction; warming at line granularity matches that
        # (and is the hot-loop win — most instructions share a line).
        line_shift = hierarchy.config.il1.line_bytes.bit_length() - 1
        last_line = -1
        for instr in trace.instructions_between(start, start + count):
            pc = instr.pc
            pc_line = pc >> line_shift
            if pc_line != last_line:
                warm_inst(pc)
                last_line = pc_line
            if instr.is_branch:
                if train_branches:
                    predictor_warm(pc, instr.branch_taken)
                    if instr.branch_taken:
                        btb_update(pc, instr.branch_target or 0)
            elif instr.is_memory:
                warm_data(instr.mem_addr or 0, instr.is_store, pc=pc)
        if record:
            self._fast_forwarded.add(count)
        return start + count


#: Two-sided 97.5% Student-t quantiles by degrees of freedom; sampled runs
#: often have only a handful of windows, where the normal 1.96 would
#: undercover badly (df=2 needs 4.30).
_T_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093,
    20: 2.086, 25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}


def _t_quantile(df: int) -> float:
    """Quantile for ``df`` degrees of freedom, never narrower than the truth.

    Between table entries the quantile decreases with df, so rounding
    *down* to the largest tabulated df at or below the requested one
    always yields a multiplier at least as wide as the exact value.
    """
    exact = _T_975.get(df)
    if exact is not None:
        return exact
    return _T_975[max(key for key in _T_975 if key <= df)]


def _confidence_interval(ipcs: Sequence[float]) -> float:
    """Half-width of the 95% CI on the mean of per-window IPCs.

    Student-t with ``n - 1`` degrees of freedom: window counts are often
    small (an XL trace under the default plans yields 3-7 windows), so
    the small-sample multiplier matters for honest coverage.
    """
    n = len(ipcs)
    if n < 2:
        return 0.0
    mean = sum(ipcs) / n
    variance = sum((value - mean) ** 2 for value in ipcs) / (n - 1)
    return _t_quantile(n - 1) * math.sqrt(variance / n)


def _window_record(start: int, instructions: int, cycles: int) -> Dict[str, object]:
    return {
        "start": start,
        "instructions": instructions,
        "cycles": cycles,
        "ipc": ratio(instructions, cycles),
    }


def _merge_marked_windows(
    boundaries: List[Tuple[int, int]], start: int = 0
) -> List[Dict[str, object]]:
    """Per-window records from (committed, cycle) boundaries.

    ``start`` is the trace position of the first boundary; subsequent
    window starts accumulate from it.  On the checkpointed machine
    commits arrive a whole checkpoint at a time, so consecutive
    boundaries can share a cycle; zero-cycle spans are folded into the
    following window (or the previous one at the tail) to keep every
    reported window's IPC finite.
    """
    windows: List[Dict[str, object]] = []
    acc_instr = 0
    acc_cycles = 0
    win_start = start
    previous = boundaries[0]
    for boundary in boundaries[1:]:
        acc_instr += boundary[0] - previous[0]
        acc_cycles += boundary[1] - previous[1]
        previous = boundary
        if acc_instr > 0 and acc_cycles > 0:
            windows.append(_window_record(win_start, acc_instr, acc_cycles))
            win_start += acc_instr
            acc_instr = 0
            acc_cycles = 0
    if acc_instr or acc_cycles:
        if windows:
            last = windows[-1]
            last["instructions"] = int(last["instructions"]) + acc_instr
            last["cycles"] = int(last["cycles"]) + acc_cycles
            last["ipc"] = ratio(last["instructions"], last["cycles"])
        elif acc_instr:
            windows.append(_window_record(win_start, acc_instr, acc_cycles))
    return windows


def _run_continuous(
    config: ProcessorConfig,
    trace: Trace,
    plan: SamplingPlan,
    *,
    probes: Sequence = (),
    default_probes: bool = True,
    force_per_cycle: bool = False,
    max_cycles: Optional[int] = None,
    progress=None,
    progress_interval: int = 8192,
    tracer=None,
) -> SimulationResult:
    """Fully-detailed degenerate case: window attribution over one exact run.

    Used when the plan leaves nothing to fast-forward (``period ==
    warmup + window``) or the trace is too short to hold a warmed
    window.  The underlying simulation is the ordinary kernel, so
    cycles, IPC and every statistic are bit-identical to the unsampled
    run; only the sampling metadata (windows, CI) is layered on top.
    """
    import dataclasses

    pipeline = create_pipeline(
        config, trace, None, probes=probes, default_probes=default_probes
    )
    total = len(trace)
    marks = list(range(plan.window, total, plan.window))
    span = (
        tracer.span("sampling:window", category="sampling", start=0, instructions=total)
        if tracer is not None
        else nullcontext()
    )
    with span:
        result = pipeline.run(
            max_cycles=max_cycles,
            progress=progress,
            progress_interval=progress_interval,
            force_per_cycle=force_per_cycle,
            commit_marks=marks,
        )
    boundaries = [(0, 0)]
    boundaries.extend(
        (target, cycle) for target, cycle, _fetched in pipeline.commit_mark_records
    )
    if not boundaries or boundaries[-1][0] < result.committed_instructions:
        boundaries.append((result.committed_instructions, result.cycles))
    windows = _merge_marked_windows(boundaries)
    ipcs = [float(window["ipc"]) for window in windows]
    return dataclasses.replace(
        result, sampled=True, windows=windows, ipc_ci95=_confidence_interval(ipcs)
    )


def _functional_pass(
    effective: ProcessorConfig,
    trace: Trace,
    segments: Sequence[Tuple[int, int, int]],
    stats: StatsRegistry,
    tracer=None,
) -> Tuple[List[int], List[Dict[str, Any]]]:
    """One functional pass over the whole trace, snapshotting at boundaries.

    Returns ``(boundaries, snapshots)``: the trace position where each
    detailed region starts and the warm state captured there.  The pass
    walks *through* detailed regions too (uncounted), so window N+1's
    snapshot never depends on how window N executed in detail — the
    property that makes windows order-independent and parallelizable.
    """
    global WARM_PASSES
    WARM_PASSES += 1
    hierarchy, predictor, btb = warmstate.build_warm_structures(effective, stats)
    warmer = FunctionalWarmer(effective, hierarchy, predictor, btb, stats)
    boundaries: List[int] = []
    snapshots: List[Dict[str, Any]] = []
    position = 0
    for skip, warmup, measure in segments:
        detailed = warmup + measure
        span = (
            tracer.span(
                "sampling:fast-forward",
                category="sampling",
                instructions=skip + detailed,
            )
            if tracer is not None
            else nullcontext()
        )
        with span:
            if skip:
                position = warmer.fast_forward(trace, position, skip)
            if detailed:
                boundaries.append(position)
                snapshots.append(warmstate.capture_warm_state(hierarchy, predictor, btb))
                position = warmer.fast_forward(trace, position, detailed, record=False)
    return boundaries, snapshots


def _warm_snapshots(
    effective: ProcessorConfig,
    trace: Trace,
    plan: SamplingPlan,
    segments: Sequence[Tuple[int, int, int]],
    tracer=None,
    checkpoint_dir=None,
    checkpoint_max_bytes: Optional[int] = None,
) -> Tuple[List[int], List[Dict[str, Any]], Dict[str, list]]:
    """Warm snapshots for every detailed region, checkpoint-aware.

    With a ``checkpoint_dir``, a checkpoint matching the sha256 key of
    ``(trace digest, plan, warm parameters, simulator version)`` is
    adopted instead of re-running the functional pass; a miss runs the
    pass and persists it (evicting LRU files past
    ``checkpoint_max_bytes``).  Returns ``(boundaries, snapshots,
    warm_stats_dump)`` — the dump carries the pass's statistic
    contributions so hit and miss runs produce identical results.
    """
    expected = []
    position = 0
    for skip, warmup, measure in segments:
        position += skip
        if warmup + measure:
            expected.append(position)
            position += warmup + measure
    key = None
    if checkpoint_dir is not None:
        key = warmstate.checkpoint_key(trace.digest(), plan, effective)
        span = (
            tracer.span("sampling:checkpoint-load", category="sampling", key=key)
            if tracer is not None
            else nullcontext()
        )
        with span:
            checkpoint = warmstate.load_matching_checkpoint(checkpoint_dir, key)
        if (
            checkpoint is not None
            and checkpoint.instructions == len(trace)
            and checkpoint.boundaries == expected
        ):
            try:
                # Trial-merge into a scratch registry: a checkpoint whose
                # stats dump will not fold cleanly is treated as a miss
                # rather than crashing mid-run.
                StatsRegistry().merge_state(checkpoint.warm_stats)
            except (ValueError, TypeError):
                checkpoint = None
            else:
                return checkpoint.boundaries, checkpoint.snapshots, checkpoint.warm_stats
    warm_stats = StatsRegistry()
    boundaries, snapshots = _functional_pass(effective, trace, segments, warm_stats, tracer)
    warm_dump = warm_stats.dump_state()
    if checkpoint_dir is not None:
        from .. import __version__

        checkpoint = WarmCheckpoint(
            key=key,
            simulator_version=__version__,
            trace_digest=trace.digest(),
            trace_name=trace.name,
            instructions=len(trace),
            plan=plan.to_dict(),
            params=warmstate.warm_parameters(effective),
            boundaries=boundaries,
            snapshots=snapshots,
            warm_stats=warm_dump,
        )
        span = (
            tracer.span("sampling:checkpoint-save", category="sampling", key=key)
            if tracer is not None
            else nullcontext()
        )
        with span:
            warmstate.store_checkpoint(checkpoint_dir, checkpoint)
            evict_lru(checkpoint_dir, checkpoint_max_bytes, CHECKPOINT_SUFFIX)
    return boundaries, snapshots, warm_dump


def warm_checkpoint(
    config: ProcessorConfig,
    trace: Trace,
    plan: SamplingPlan,
    checkpoint_dir,
    *,
    checkpoint_max_bytes: Optional[int] = None,
    tracer=None,
) -> Tuple["Path", str, bool]:
    """Build (or reuse) the warm checkpoint for ``(config, trace, plan)``.

    Runs the functional warm pass exactly as :func:`run_sampled` would
    and persists it under ``checkpoint_dir``, without simulating any
    detailed windows — the ``repro checkpoint save`` entry point.
    Returns ``(path, key, reused)`` where ``reused`` is True when a
    matching checkpoint was already on disk.  Raises
    :class:`ConfigurationError` for a plan that degenerates to one
    continuous run (there is no warm state to checkpoint).
    """
    config.validate()
    plan.validate()
    segments = plan.schedule(len(trace))
    if plan.fast_forward_per_period == 0 or not any(
        measure for _skip, _warm, measure in segments
    ):
        raise ConfigurationError(
            f"sampling plan {plan.describe()!r} runs {trace.name} as one "
            "continuous window; there is no warm state to checkpoint"
        )
    effective = get_machine(config.mode).pipeline_class.effective_config(config)
    key = warmstate.checkpoint_key(trace.digest(), plan, effective)
    before = WARM_PASSES
    _warm_snapshots(
        effective, trace, plan, segments, tracer, checkpoint_dir, checkpoint_max_bytes
    )
    return warmstate.checkpoint_path(checkpoint_dir, key), key, WARM_PASSES == before


def _execute_window(
    config: ProcessorConfig,
    effective: ProcessorConfig,
    trace: Trace,
    start: int,
    warmup: int,
    measure: int,
    snapshot: Dict[str, Any],
    stats: StatsRegistry,
    *,
    probes: Sequence = (),
    default_probes: bool = True,
    force_per_cycle: bool = False,
    max_cycles: Optional[int] = None,
    progress=None,
    progress_interval: int = 8192,
) -> Dict[str, Any]:
    """Simulate one detailed window from its boundary snapshot.

    Builds fresh warm structures against ``stats``, restores the
    snapshot, and runs the window's pipeline over its trace slice.
    Returns the scalars the parent needs for commit-watermark cycle
    attribution; the caller owns how ``stats`` is aggregated (shared
    registry when serial, per-window dump/merge when parallel).
    """
    detailed = warmup + measure
    segment_trace = trace.slice(start, start + detailed)
    hierarchy, predictor, btb = warmstate.build_warm_structures(effective, stats)
    warmstate.restore_warm_state(snapshot, hierarchy, predictor, btb)
    pipeline = create_pipeline(
        config, segment_trace, stats, probes=probes, default_probes=default_probes
    )
    pipeline.adopt_warm_state(hierarchy, predictor, btb)
    result = pipeline.run(
        max_cycles=max_cycles,
        progress=progress,
        progress_interval=progress_interval,
        force_per_cycle=force_per_cycle,
        commit_marks=[warmup] if warmup else None,
    )
    if warmup and pipeline.commit_mark_records:
        _target, warm_cycle, warm_fetched = pipeline.commit_mark_records[0]
    else:
        warm_cycle, warm_fetched = 0, 0
    return {
        "cycles": result.cycles,
        "fetched": result.fetched_instructions,
        "warm_cycle": warm_cycle,
        "warm_fetched": warm_fetched,
    }


#: Fork-inherited job description for the window worker pool.  Set by
#: :func:`_run_windows_parallel` immediately before the pool forks its
#: workers (the same pattern the sweep engine uses for worker traces),
#: so task payloads stay a single window index.
_WINDOW_JOB: Optional[Dict[str, Any]] = None


def _window_worker(payload, attempt: int) -> Dict[str, Any]:
    """Pool worker: simulate window ``payload`` and return its raw results.

    Runs against a worker-local :class:`StatsRegistry` whose
    ``dump_state()`` travels back with the cycle attribution; the parent
    merges the dumps in window order, reproducing a shared registry
    bit-exactly.
    """
    job = _WINDOW_JOB
    if job is None:  # pragma: no cover - guards a mis-wired pool
        raise SimulationError("window worker started without a job description")
    index = int(payload)
    injector = job.get("injector")
    if injector is not None:
        injector.crash_point(f"{job['trace'].name}:{index}:a{attempt}")
    start, warmup, measure = job["windows"][index]
    stats = StatsRegistry()
    outcome = _execute_window(
        job["config"],
        job["effective"],
        job["trace"],
        start,
        warmup,
        measure,
        job["snapshots"][index],
        stats,
        default_probes=job["default_probes"],
        force_per_cycle=job["force_per_cycle"],
        max_cycles=job["max_cycles"],
    )
    outcome["stats"] = stats.dump_state()
    return outcome


def _run_windows_parallel(
    config: ProcessorConfig,
    effective: ProcessorConfig,
    trace: Trace,
    window_segments: Sequence[Tuple[int, int, int]],
    snapshots: Sequence[Dict[str, Any]],
    jobs: int,
    stats: StatsRegistry,
    *,
    default_probes: bool = True,
    force_per_cycle: bool = False,
    max_cycles: Optional[int] = None,
    injector=None,
    tracer=None,
) -> List[Dict[str, Any]]:
    """Fan the detailed windows out across a supervised worker pool.

    Workers are forked after ``_WINDOW_JOB`` is published, inherit the
    trace and snapshots by memory, and each return one window's scalars
    plus a statistics dump.  Crashed or hung workers are respawned and
    their windows retried (windows are deterministic, so a retry
    reproduces the lost result exactly); a window that keeps failing
    raises :class:`SimulationError`.  Returns the per-window outcome
    dicts in window order after merging every dump into ``stats``.
    """
    global _WINDOW_JOB
    from ..robustness.pool import ResilientPool

    indices = list(range(len(window_segments)))
    _WINDOW_JOB = {
        "config": config,
        "effective": effective,
        "trace": trace,
        "windows": list(window_segments),
        "snapshots": list(snapshots),
        "default_probes": default_probes,
        "force_per_cycle": force_per_cycle,
        "max_cycles": max_cycles,
        "injector": injector,
    }
    try:
        pool = ResilientPool(_window_worker, workers=min(jobs, len(indices)))
        span = (
            tracer.span(
                "sampling:parallel-windows",
                category="sampling",
                windows=len(indices),
                workers=min(jobs, len(indices)),
            )
            if tracer is not None
            else nullcontext()
        )
        with span:
            pool_outcome = pool.run([(index, index, trace.name) for index in indices])
    finally:
        _WINDOW_JOB = None
    if pool_outcome.failures:
        failure = next(iter(pool_outcome.failures.values()))
        raise SimulationError(
            f"{len(pool_outcome.failures)} sampled window(s) failed in the "
            f"worker pool (first: window {failure.task_id}: {failure.error})"
        )
    outcomes = [pool_outcome.results[index] for index in indices]
    for outcome in outcomes:
        stats.merge_state(outcome["stats"])
    return outcomes


def run_sampled(
    config: ProcessorConfig,
    trace: Trace,
    plan: SamplingPlan,
    *,
    probes: Sequence = (),
    default_probes: bool = True,
    force_per_cycle: bool = False,
    max_cycles: Optional[int] = None,
    progress=None,
    progress_interval: int = 8192,
    tracer=None,
    parallel_windows: Optional[int] = None,
    checkpoint_dir=None,
    checkpoint_max_bytes: Optional[int] = None,
    injector=None,
) -> SimulationResult:
    """Run ``trace`` under ``plan``; returns an extrapolated result.

    The returned :class:`SimulationResult` has ``sampled=True``:
    ``cycles``/``committed_instructions`` cover the measured windows (so
    ``ipc`` is the instruction-weighted sampled estimator), ``windows``
    holds the per-window records behind ``ipc_ci95``, and ``stats``
    covers detailed execution — fast-forwarded instructions appear only
    under ``sampling.fast_forwarded_instructions``.

    ``max_cycles`` bounds each detailed window individually (one window
    is one pipeline run); ``probes`` attach to every window's pipeline
    in turn.

    ``parallel_windows=N`` (N > 1) fans the detailed windows out across
    a supervised worker pool; the result is bit-identical to the serial
    driver.  Window workers cannot carry probes or progress callbacks
    across the process boundary, so combining them raises
    :class:`ConfigurationError` rather than silently dropping observers.

    ``checkpoint_dir`` persists (and reuses) the functional pass's
    boundary snapshots as a keyed :class:`WarmCheckpoint` file; see
    :mod:`repro.core.warmstate` for the key derivation and the
    cross-config sharing rule.  ``injector`` is a
    :class:`~repro.robustness.faults.FaultInjector` exercised by the
    robustness tests (``worker.crash`` fires inside window workers).

    ``tracer`` is an optional :class:`repro.telemetry.Tracer`: the
    functional pass opens ``sampling:fast-forward`` spans, each detailed
    segment a ``sampling:window`` span (or one ``sampling:parallel-windows``
    span around the fan-out), and checkpoint traffic
    ``sampling:checkpoint-load``/``-save`` spans.  Purely observational —
    the clock lives behind the tracer (this module never reads time
    itself) and the simulated result is bit-identical with or without
    one.
    """
    config.validate()
    plan.validate()
    segments = plan.schedule(len(trace))
    if plan.fast_forward_per_period == 0 or not any(
        measure for _skip, _warm, measure in segments
    ):
        # Nothing to fast-forward (period == warmup + window) or nothing
        # to sample around: the whole trace is one detailed run.
        return _run_continuous(
            config,
            trace,
            plan,
            probes=probes,
            default_probes=default_probes,
            force_per_cycle=force_per_cycle,
            max_cycles=max_cycles,
            progress=progress,
            progress_interval=progress_interval,
            tracer=tracer,
        )

    # Warm state must mirror what the machine actually simulates: variant
    # machines (perfect-l2, unbounded-rob) force config fields at pipeline
    # construction, and the windows adopt snapshots of *this* state.
    effective = get_machine(config.mode).pipeline_class.effective_config(config)
    stats = StatsRegistry()
    window_counter = stats.counter("sampling.windows")
    detailed_counter = stats.counter("sampling.detailed_instructions")
    degenerate_counter = stats.counter("sampling.degenerate_windows")
    commit_width = config.core.commit_width

    boundaries, snapshots, warm_dump = _warm_snapshots(
        effective,
        trace,
        plan,
        segments,
        tracer,
        checkpoint_dir,
        checkpoint_max_bytes,
    )
    stats.merge_state(warm_dump)

    window_segments = [
        (start, warmup, measure)
        for start, (_skip, warmup, measure) in zip(
            boundaries, (seg for seg in segments if seg[1] + seg[2])
        )
    ]
    jobs = int(parallel_windows or 0)
    use_parallel = jobs > 1 and len(window_segments) > 1
    if use_parallel and (probes or progress is not None):
        raise ConfigurationError(
            "parallel sampled windows cannot carry probes or progress "
            "callbacks across worker processes; drop them or run with "
            "parallel_windows=1"
        )

    if use_parallel:
        outcomes = _run_windows_parallel(
            config,
            effective,
            trace,
            window_segments,
            snapshots,
            jobs,
            stats,
            default_probes=default_probes,
            force_per_cycle=force_per_cycle,
            max_cycles=max_cycles,
            injector=injector,
            tracer=tracer,
        )
    else:
        outcomes = []
        for (start, warmup, measure), snapshot in zip(window_segments, snapshots):
            window_span = (
                tracer.span(
                    "sampling:window",
                    category="sampling",
                    start=start,
                    warmup=warmup,
                    instructions=warmup + measure,
                )
                if tracer is not None
                else nullcontext()
            )
            with window_span:
                outcomes.append(
                    _execute_window(
                        config,
                        effective,
                        trace,
                        start,
                        warmup,
                        measure,
                        snapshot,
                        stats,
                        probes=probes,
                        default_probes=default_probes,
                        force_per_cycle=force_per_cycle,
                        max_cycles=max_cycles,
                        progress=progress,
                        progress_interval=progress_interval,
                    )
                )

    windows: List[Dict[str, object]] = []
    measured_cycles = 0
    measured_instructions = 0
    measured_fetched = 0
    for (start, warmup, measure), outcome in zip(window_segments, outcomes):
        detailed = warmup + measure
        detailed_counter.add(detailed)
        warm_cycle = outcome["warm_cycle"]
        warm_fetched = outcome["warm_fetched"]
        # Both boundaries are commit events (the warmup crossing and the
        # segment's final commit), so the pipeline-depth and memory-latency
        # offset each carries cancels out of the measured span.  On the
        # checkpointed machine the crossing snaps to a checkpoint drain;
        # windows spanning several checkpoint quanta keep that snap small.
        window_cycles = outcome["cycles"] - warm_cycle
        window_instructions = measure
        window_start = start + warmup
        if window_cycles <= 0 or window_instructions > window_cycles * commit_width:
            # A window thinner than the machine's commit quantum: the whole
            # segment committed in one drain burst and the boundary span
            # implies a physically impossible rate (above commit width).
            # Fall back to whole-segment measurement — biased by fill and
            # drain, but sane — and flag it so callers can widen the plan.
            window_cycles = outcome["cycles"]
            window_instructions = detailed
            window_start = start
            warm_fetched = 0
            degenerate_counter.add()
        windows.append(_window_record(window_start, window_instructions, window_cycles))
        window_counter.add()
        measured_cycles += window_cycles
        measured_instructions += window_instructions
        measured_fetched += max(0, outcome["fetched"] - warm_fetched)
    ipcs = [float(window["ipc"]) for window in windows]
    return SimulationResult(
        config_name=config.name or config.mode,
        mode=config.mode,
        workload=trace.name,
        cycles=measured_cycles,
        committed_instructions=measured_instructions,
        fetched_instructions=measured_fetched,
        stats=stats.snapshot(),
        sampled=True,
        windows=windows,
        ipc_ci95=_confidence_interval(ipcs),
    )
