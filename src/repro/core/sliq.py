"""Slow Lane Instruction Queuing: dependence tracking and the SLIQ buffer.

Two cooperating pieces implement the paper's Section 3:

* :class:`LongLatencyTracker` — the 32-bit-per-register-file dependence
  mask.  When a long-latency load is detected at pseudo-ROB retirement its
  destination *logical* register is marked; later retirees that read a
  marked register are dependent and mark their own destination in turn;
  an independent retiree that redefines a marked register clears the mark.
  Each marked register remembers the *root* load's destination physical
  register, which is the wake-up tag the SLIQ entry is filed under.

* :class:`SlowLaneQueue` — the large, cheap, in-order secondary buffer.
  Dependent instructions are moved here from the issue queue, filed under
  the physical register whose readiness should wake them.  When that
  register is written, the matching entries are gathered (in order) into a
  re-insertion stream that flows back into the issue queue at
  ``reinsert_width`` instructions per cycle after a ``reinsert_delay``
  start-up penalty — the two knobs swept by Figure 10.  A woken
  instruction that turns out to still depend on another parked producer is
  *re-filed* under that producer instead of occupying an issue-queue slot
  (the same policy the WIB design uses), which keeps the tiny issue queues
  free for instructions that can actually execute.

Waiting entries are stored bucketed by wake-up register (insertion order
preserved within a bucket), so a wake-up touches exactly the entries it
wakes instead of scanning the whole buffer — the buffer is by design the
largest structure in the machine (2048 entries in Table 1).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Union

from ..common.config import SLIQConfig
from ..common.errors import StructuralHazardError
from ..common.stats import StatsRegistry
from ..isa.instruction import DynInst

#: The re-insertion callback returns True (accepted into an issue queue),
#: False (stall: try again next cycle), or a physical-register id meaning
#: "re-file this entry in the SLIQ keyed on that register".
ReinsertResult = Union[bool, int]


class LongLatencyTracker:
    """The logical-register dependence mask of the SLIQ mechanism."""

    __slots__ = ("_mask",)

    def __init__(self) -> None:
        # logical register -> physical register of the root long-latency load
        self._mask: Dict[int, int] = {}

    # -- queries ----------------------------------------------------------------
    @property
    def marked_registers(self) -> Set[int]:
        return set(self._mask)

    def is_marked(self, logical: int) -> bool:
        return logical in self._mask

    def dependence_root(self, inst: DynInst) -> Optional[int]:
        """Root wake-up register if ``inst`` reads any marked register."""
        mask = self._mask
        if not mask:
            return None
        for src in inst.srcs:
            root = mask.get(src)
            if root is not None:
                return root
        return None

    # -- updates -------------------------------------------------------------------
    def mark_long_latency_load(self, inst: DynInst) -> None:
        """A load that missed in L2 was retired from the pseudo-ROB."""
        if inst.dest is not None and inst.phys_dest is not None:
            self._mask[inst.dest] = inst.phys_dest

    def mark_dependent(self, inst: DynInst, root: int) -> None:
        """A dependent instruction propagates the mark to its destination."""
        if inst.dest is not None:
            self._mask[inst.dest] = root

    def clear_redefinition(self, inst: DynInst) -> None:
        """An independent instruction redefining a marked register clears it."""
        if inst.dest is not None:
            self._mask.pop(inst.dest, None)

    def clear_root(self, root_preg: int) -> None:
        """Drop every mark whose root load (physical register) completed."""
        stale = [logical for logical, root in self._mask.items() if root == root_preg]
        for logical in stale:
            del self._mask[logical]

    def reset(self) -> None:
        self._mask.clear()


class SlowLaneQueue:
    """The SLIQ buffer plus its paced re-insertion engine."""

    __slots__ = (
        "config",
        "capacity",
        "_ready_fn",
        "_waiting",
        "_waiting_count",
        "_reinsert_stream",
        "_parked_dests",
        "_startup_delay",
        "_inserts",
        "_refiles",
        "_reinserts",
        "_full_stalls",
        "_occupancy_mean",
        "_wakeups",
    )

    def __init__(
        self,
        config: SLIQConfig,
        stats: StatsRegistry,
        ready_fn: Optional[Callable[[int], bool]] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.capacity = config.size
        self._ready_fn = ready_fn
        # wake-up register -> waiting entries filed under it, oldest first.
        self._waiting: Dict[int, List[DynInst]] = {}
        self._waiting_count = 0
        self._reinsert_stream: Deque[DynInst] = deque()
        self._parked_dests: Dict[int, int] = {}
        self._startup_delay = 0
        self._inserts = stats.counter("sliq.inserts")
        self._refiles = stats.counter("sliq.refiles")
        self._reinserts = stats.counter("sliq.reinserts")
        self._full_stalls = stats.counter("sliq.full_stalls")
        self._occupancy_mean = stats.running_mean("sliq.occupancy")
        self._wakeups = stats.counter("sliq.wakeup_events")

    # -- capacity ---------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self._waiting_count + len(self._reinsert_stream)

    @property
    def is_full(self) -> bool:
        return self.occupancy >= self.capacity

    @property
    def is_empty(self) -> bool:
        return self.occupancy == 0

    @property
    def reinsert_pending(self) -> bool:
        """True while the re-insertion engine has per-cycle work to do."""
        return bool(self._reinsert_stream)

    def note_full_stall(self, cycles: int = 1) -> None:
        self._full_stalls.add(cycles)

    def sample_occupancy(self, cycles: int = 1) -> None:
        self._occupancy_mean.sample_many(self.occupancy, cycles)

    # -- queries used by the pipeline ----------------------------------------------------
    def has_waiters(self, preg: int) -> bool:
        """True if some SLIQ entry is filed under ``preg``."""
        return preg in self._waiting

    def is_parked_dest(self, preg: int) -> bool:
        """True if the producer of ``preg`` is currently parked in the SLIQ."""
        return preg in self._parked_dests

    # -- bookkeeping helpers ---------------------------------------------------------------
    def _park(self, inst: DynInst, wakeup_preg: int) -> None:
        inst.in_sliq = True
        inst.sliq_wakeup_preg = wakeup_preg
        dest = inst.phys_dest
        if dest is not None:
            parked = self._parked_dests
            parked[dest] = parked.get(dest, 0) + 1

    def _unpark(self, inst: DynInst) -> None:
        inst.in_sliq = False
        dest = inst.phys_dest
        if dest is not None:
            parked = self._parked_dests
            count = parked.get(dest, 0) - 1
            if count > 0:
                parked[dest] = count
            else:
                parked.pop(dest, None)

    # -- insertion ------------------------------------------------------------------------
    def insert(self, inst: DynInst, wakeup_preg: int, cycle: int, force: bool = False) -> None:
        """File a dependent instruction in the SLIQ under ``wakeup_preg``.

        If the wake-up register is already ready (the root completed before
        the dependent was moved) the instruction goes straight to the
        re-insertion stream.  ``force`` permits a transient one-entry
        overshoot and is used only by the issue-queue pressure eviction,
        which immediately removes another entry from the stream.
        """
        if not force and self.occupancy >= self.capacity:
            raise StructuralHazardError("SLIQ overflow")
        if inst.sliq_enter_cycle is None:
            inst.sliq_enter_cycle = cycle
            self._inserts.add()
        else:
            self._refiles.add()
        ready_fn = self._ready_fn
        already_ready = ready_fn(wakeup_preg) if ready_fn is not None else False
        self._park(inst, wakeup_preg)
        if already_ready:
            self._push_stream([inst])
        else:
            bucket = self._waiting.get(wakeup_preg)
            if bucket is None:
                self._waiting[wakeup_preg] = [inst]
            else:
                bucket.append(inst)
            self._waiting_count += 1

    # -- wakeup --------------------------------------------------------------------------
    def notify_ready(self, preg: int) -> None:
        """Register ``preg`` was written: wake every entry filed under it."""
        bucket = self._waiting.pop(preg, None)
        if bucket is None:
            return
        self._wakeups.add()
        self._waiting_count -= len(bucket)
        matched: List[DynInst] = []
        for inst in bucket:
            if inst.squashed:
                self._unpark(inst)
            else:
                matched.append(inst)
        self._push_stream(matched)

    # Backwards-compatible alias used by older call sites and tests.
    notify_root_complete = notify_ready

    def _push_stream(self, insts: List[DynInst]) -> None:
        if not insts:
            return
        was_idle = not self._reinsert_stream
        self._reinsert_stream.extend(insts)
        if was_idle:
            self._startup_delay = self.config.reinsert_delay

    # -- per-cycle re-insertion -------------------------------------------------------------
    def step(self, reinsert_callback: Callable[[DynInst], ReinsertResult], cycle: int = 0) -> int:
        """Advance the re-insertion engine by one cycle.

        ``reinsert_callback(inst)`` returns True if the instruction was
        accepted back into its issue queue, False if the queue is full
        (stalls the stream), or a physical register id to re-file the entry
        under (it still depends on a parked producer).  Returns the number
        of instructions taken out of the stream this cycle.
        """
        stream = self._reinsert_stream
        if not stream:
            return 0
        if self._startup_delay > 0:
            self._startup_delay -= 1
            return 0
        processed = 0
        while stream and processed < self.config.reinsert_width:
            inst = stream[0]
            if inst.squashed:
                stream.popleft()
                self._unpark(inst)
                continue
            result = reinsert_callback(inst)
            if result is False:
                break
            stream.popleft()
            self._unpark(inst)
            processed += 1
            if result is True:
                self._reinserts.add()
            else:
                # Still dependent on a parked producer: re-file under it.
                self.insert(inst, int(result), cycle)
        return processed

    # -- squash ---------------------------------------------------------------------------------
    def remove_squashed(self) -> List[DynInst]:
        """Drop squashed instructions from the buffer and the stream."""
        removed: List[DynInst] = []
        for preg in list(self._waiting):
            bucket = self._waiting[preg]
            dead = [inst for inst in bucket if inst.squashed]
            if not dead:
                continue
            for inst in dead:
                self._unpark(inst)
            removed.extend(dead)
            self._waiting_count -= len(dead)
            kept = [inst for inst in bucket if not inst.squashed]
            if kept:
                self._waiting[preg] = kept
            else:
                del self._waiting[preg]
        stream_removed = [inst for inst in self._reinsert_stream if inst.squashed]
        if stream_removed:
            for inst in stream_removed:
                self._unpark(inst)
            self._reinsert_stream = deque(
                inst for inst in self._reinsert_stream if not inst.squashed
            )
        removed.extend(stream_removed)
        return removed

    def reset_wakeups(self) -> None:
        """Reset the re-insertion start-up delay (after a pipeline flush)."""
        self._startup_delay = 0

    def __len__(self) -> int:
        return self.occupancy
