"""Additional registered machine variants beyond the paper's two.

These demonstrate (and exercise) the machine registry: each variant is a
small :class:`~repro.core.pipeline.PipelineBase` subclass registered
with :func:`~repro.core.registry_machines.register_machine` — no edits
to ``pipeline.py``, ``config.py`` or ``cli.py`` are needed to make a
variant configurable, runnable from the CLI and sweepable (with its own
sweep-cache keys, since ``mode`` is part of every cache key).

* ``perfect-l2`` — the baseline organization with an ideal, always-
  hitting L2.  The paper frames its Figure 1 limit study against a
  perfect L2; this machine gives that reference point as a first-class
  mode instead of a memory-config flag.
* ``unbounded-rob`` — an idealised conventional machine whose ROB,
  issue queues, LSQ and register file are large enough to never bound
  the window.  The remaining limits (fetch/issue width, functional
  units, memory) are what the kilo-instruction studies compare against.
"""

from __future__ import annotations

from ..common.config import ProcessorConfig
from .pipeline import BaselinePipeline
from .registry_machines import register_machine


@register_machine(
    "perfect-l2",
    description="baseline organization with an ideal always-hitting L2 (limit study)",
)
class PerfectL2Pipeline(BaselinePipeline):
    """Baseline machine in front of a perfect L2.

    The memory hierarchy flag is forced through :meth:`effective_config`
    (applied at construction and by the sampled-execution warmer), so
    any baseline config re-aimed at ``mode="perfect-l2"`` becomes the
    paper's perfect-memory reference machine on every execution path.
    """

    @classmethod
    def effective_config(cls, config: ProcessorConfig) -> ProcessorConfig:
        config = super().effective_config(config).copy()
        config.memory.perfect_l2 = True
        return config


@register_machine(
    "unbounded-rob",
    description="idealised baseline whose ROB/queues/registers never bound the window",
)
class UnboundedROBPipeline(BaselinePipeline):
    """Conventional machine with effectively infinite window resources.

    Every window structure is resized to ``UNBOUNDED_WINDOW`` entries —
    far beyond what any shipped trace can fill — so IPC is limited only
    by widths, functional units, branches and the memory system.  This
    is the ideal machine the checkpointed design is chasing.
    """

    #: Large enough that no shipped workload can fill the window.
    UNBOUNDED_WINDOW = 1 << 16

    @classmethod
    def effective_config(cls, config: ProcessorConfig) -> ProcessorConfig:
        config = super().effective_config(config).copy()
        window = cls.UNBOUNDED_WINDOW
        config.core.rob_size = window
        config.core.int_queue_size = window
        config.core.fp_queue_size = window
        config.core.lsq_size = window
        # Architectural mappings stay pinned on top of the window.
        config.core.physical_registers = window + 64
        return config
