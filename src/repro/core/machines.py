"""Additional registered machine variants beyond the paper's two.

These demonstrate (and exercise) the machine registry: each variant is a
small :class:`~repro.core.pipeline.PipelineBase` subclass registered
with :func:`~repro.core.registry_machines.register_machine` — no edits
to ``pipeline.py``, ``config.py`` or ``cli.py`` are needed to make a
variant configurable, runnable from the CLI and sweepable (with its own
sweep-cache keys, since ``mode`` is part of every cache key).

* ``perfect-l2`` — the baseline organization with an ideal, always-
  hitting L2.  The paper frames its Figure 1 limit study against a
  perfect L2; this machine gives that reference point as a first-class
  mode instead of a memory-config flag.
* ``unbounded-rob`` — an idealised conventional machine whose ROB,
  issue queues, LSQ and register file are large enough to never bound
  the window.  The remaining limits (fetch/issue width, functional
  units, memory) are what the kilo-instruction studies compare against.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..common.config import ProcessorConfig
from ..common.stats import StatsRegistry
from ..trace.trace import Trace
from .pipeline import BaselinePipeline
from .probes import Probe
from .registry_machines import register_machine


@register_machine(
    "perfect-l2",
    description="baseline organization with an ideal always-hitting L2 (limit study)",
)
class PerfectL2Pipeline(BaselinePipeline):
    """Baseline machine in front of a perfect L2.

    The memory hierarchy flag is forced at construction, so any baseline
    config re-aimed at ``mode="perfect-l2"`` becomes the paper's
    perfect-memory reference machine.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        trace: Trace,
        stats: Optional[StatsRegistry] = None,
        probes: Optional[Sequence[Probe]] = None,
    ) -> None:
        config = config.copy()
        config.memory.perfect_l2 = True
        super().__init__(config, trace, stats, probes)


@register_machine(
    "unbounded-rob",
    description="idealised baseline whose ROB/queues/registers never bound the window",
)
class UnboundedROBPipeline(BaselinePipeline):
    """Conventional machine with effectively infinite window resources.

    Every window structure is resized to ``UNBOUNDED_WINDOW`` entries —
    far beyond what any shipped trace can fill — so IPC is limited only
    by widths, functional units, branches and the memory system.  This
    is the ideal machine the checkpointed design is chasing.
    """

    #: Large enough that no shipped workload can fill the window.
    UNBOUNDED_WINDOW = 1 << 16

    def __init__(
        self,
        config: ProcessorConfig,
        trace: Trace,
        stats: Optional[StatsRegistry] = None,
        probes: Optional[Sequence[Probe]] = None,
    ) -> None:
        config = config.copy()
        window = self.UNBOUNDED_WINDOW
        config.core.rob_size = window
        config.core.int_queue_size = window
        config.core.fp_queue_size = window
        config.core.lsq_size = window
        # Architectural mappings stay pinned on top of the window.
        config.core.physical_registers = window + 64
        super().__init__(config, trace, stats, probes)
