"""The pluggable machine registry: one source of truth for ``config.mode``.

The paper is a comparison of machine *organizations*; this module makes
an organization a first-class, registrable thing instead of a hard-coded
string.  A machine is a :class:`~repro.core.pipeline.PipelineBase`
subclass registered under a mode name::

    from repro.core.pipeline import BaselinePipeline
    from repro.core.registry_machines import register_machine

    @register_machine("my-variant", description="baseline with a twist")
    class MyVariantPipeline(BaselinePipeline):
        ...

From that point on the variant behaves exactly like a built-in: a
``ProcessorConfig`` with ``mode="my-variant"`` validates, simulates
through :func:`repro.api.run`, sweeps through the sweep engine (with its
own cache keys), and shows up in ``repro modes`` and the CLI's
``--machine`` choices — with zero edits to ``pipeline.py``,
``config.py`` or ``cli.py``.

``ProcessorConfig.validate`` and the CLI derive the set of valid modes
from this registry; :func:`create_pipeline` is the canonical factory
(the old ``build_pipeline`` is a deprecation shim around it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..common.errors import ConfigurationError

#: Builder turning CLI arguments into a ProcessorConfig for one machine.
#: Receives any object with the ``simulate`` subcommand's attributes
#: (window, iq_size, memory_latency, ...) plus the registered mode name.
CLIConfigFn = Callable[[object, str], "ProcessorConfig"]  # noqa: F821


@dataclass(frozen=True, slots=True)
class MachineSpec:
    """One registered machine organization."""

    name: str
    pipeline_class: type
    description: str
    cli_config: CLIConfigFn

    @property
    def supports_late_allocation(self) -> bool:
        """Whether the machine models Figure 14's late register allocation."""
        return bool(getattr(self.pipeline_class, "supports_late_allocation", False))

    def build_cli_config(self, args: object) -> "ProcessorConfig":  # noqa: F821
        """Translate parsed CLI arguments into this machine's config."""
        return self.cli_config(args, self.name)


_REGISTRY: Dict[str, MachineSpec] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the modules that register the shipped machines (idempotent)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # Flag first to guard against reentrancy while the imports execute;
    # cleared again on failure so the real ImportError resurfaces on the
    # next query instead of a misleading empty registry.
    _BUILTINS_LOADED = True
    try:
        from . import machines, pipeline  # noqa: F401  (registration side effects)
    except BaseException:
        _BUILTINS_LOADED = False
        raise


# ---------------------------------------------------------------------------
# CLI configuration profiles
# ---------------------------------------------------------------------------

#: Default values of the ``simulate`` subcommand's machine knobs.  The
#: CLI parser and the profile builders below both read from here, so an
#: args object missing an attribute builds the same machine the CLI
#: would with that flag left at its default.
CLI_DEFAULTS: Dict[str, object] = {
    "window": 128,
    "iq_size": 128,
    "sliq_size": 2048,
    "checkpoints": 8,
    "memory_latency": 1000,
    "reinsert_delay": 4,
    "virtual_tags": None,
    "physical_registers": None,
    "perfect_l2": False,
    "late_allocation": False,
}


def _arg(args: object, name: str):
    return getattr(args, name, CLI_DEFAULTS[name])


def _retarget(config, mode: str):
    """Re-aim a helper-built config at a registered variant mode."""
    if config.mode == mode:
        return config
    return config.copy(mode=mode, name=f"{mode}:{config.name}" if config.name else mode)


def baseline_cli_config(args: object, mode: str):
    """``simulate`` arguments -> a baseline-family config (window knobs)."""
    from ..common.config import scaled_baseline

    config = _retarget(
        scaled_baseline(
            window=_arg(args, "window"),
            memory_latency=_arg(args, "memory_latency"),
            perfect_l2=_arg(args, "perfect_l2"),
        ),
        mode,
    )
    return config.validate()


def cooo_cli_config(args: object, mode: str):
    """``simulate`` arguments -> a checkpoint-machine config (cooo knobs)."""
    from ..common.config import cooo_config

    physical_registers = _arg(args, "physical_registers")
    config = _retarget(
        cooo_config(
            iq_size=_arg(args, "iq_size"),
            sliq_size=_arg(args, "sliq_size"),
            checkpoints=_arg(args, "checkpoints"),
            memory_latency=_arg(args, "memory_latency"),
            reinsert_delay=_arg(args, "reinsert_delay"),
            perfect_l2=_arg(args, "perfect_l2"),
            virtual_tags=_arg(args, "virtual_tags"),
            physical_registers=physical_registers if physical_registers is not None else 4096,
            late_allocation=_arg(args, "late_allocation"),
        ),
        mode,
    )
    return config.validate()


# ---------------------------------------------------------------------------
# Registration and lookup
# ---------------------------------------------------------------------------


def register_machine(
    name: str,
    *,
    description: str = "",
    cli_config: Optional[CLIConfigFn] = None,
) -> Callable[[type], type]:
    """Class decorator registering a pipeline class as machine ``name``.

    ``description`` is the one-liner shown by ``repro modes``; when
    omitted, the first line of the class docstring is used.
    ``cli_config`` builds a config from ``repro simulate`` arguments and
    defaults to the baseline profile (window-style knobs).
    Re-registering the *same* class under the same name is a no-op;
    registering a different class under a taken name raises.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"machine name must be a non-empty string, got {name!r}")

    def decorator(cls: type) -> type:
        existing = _REGISTRY.get(name)
        if existing is not None:
            if existing.pipeline_class is cls:
                return cls  # idempotent re-import
            raise ConfigurationError(
                f"machine {name!r} is already registered to "
                f"{existing.pipeline_class.__name__}; unregister it first or pick "
                f"another name"
            )
        doc = (cls.__doc__ or "").strip().splitlines()
        cls.mode = name
        _REGISTRY[name] = MachineSpec(
            name=name,
            pipeline_class=cls,
            description=description or (doc[0] if doc else ""),
            cli_config=cli_config or baseline_cli_config,
        )
        return cls

    return decorator


def unregister_machine(name: str) -> None:
    """Remove a registered machine (primarily for tests and plugins)."""
    _ensure_builtins()
    if name not in _REGISTRY:
        raise KeyError(f"machine {name!r} is not registered")
    del _REGISTRY[name]


def machine_names() -> List[str]:
    """Sorted names of every registered machine."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def machine_specs() -> List[MachineSpec]:
    """Every registered machine, sorted by name."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_machine(name: str) -> MachineSpec:
    """The spec registered under ``name``; raises with the valid names."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown processor mode {name!r}; registered machines: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from exc


def create_pipeline(
    config,
    trace,
    stats=None,
    probes: Sequence = (),
    *,
    default_probes: bool = True,
):
    """Build the registered machine selected by ``config.mode``.

    ``probes`` are attached on top of the built-in default probes
    (occupancy accounting); pass ``default_probes=False`` for a bare
    pipeline with no probes at all beyond ``probes`` — the fastest path,
    at the price of the occupancy statistics.
    """
    from .probes import default_probes as _defaults

    spec = get_machine(config.mode)
    attached = (_defaults() if default_probes else []) + list(probes)
    return spec.pipeline_class(config, trace, stats, probes=attached)
