"""The conventional reorder buffer used by the baseline machine."""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..common.errors import StructuralHazardError
from ..common.stats import StatsRegistry
from ..isa.instruction import DynInst, InstState


class ReorderBuffer:
    """A FIFO of in-flight instructions committed in program order."""

    __slots__ = ("capacity", "_entries", "_inserts", "_commits", "_full_stalls")

    def __init__(self, capacity: int, stats: StatsRegistry) -> None:
        if capacity <= 0:
            raise StructuralHazardError("ROB capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[DynInst] = deque()
        self._inserts = stats.counter("rob.inserts")
        self._commits = stats.counter("rob.commits")
        self._full_stalls = stats.counter("rob.full_stalls")

    # -- capacity ------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def free_entries(self) -> int:
        return self.capacity - len(self._entries)

    def note_full_stall(self, cycles: int = 1) -> None:
        """Statistic hook called by dispatch when it stalls on a full ROB."""
        self._full_stalls.add(cycles)

    # -- contents ---------------------------------------------------------------
    def insert(self, inst: DynInst) -> None:
        """Append ``inst`` at the tail (dispatch order == program order)."""
        if self.is_full:
            raise StructuralHazardError("ROB overflow")
        inst.rob_index = len(self._entries)
        self._entries.append(inst)
        self._inserts.add()

    def head(self) -> Optional[DynInst]:
        """Oldest in-flight instruction, or None when empty."""
        return self._entries[0] if self._entries else None

    def commit_head(self) -> DynInst:
        """Remove and return the oldest instruction (caller checked it is DONE)."""
        if not self._entries:
            raise StructuralHazardError("commit from an empty ROB")
        inst = self._entries.popleft()
        self._commits.add()
        return inst

    def committable(self, width: int) -> List[DynInst]:
        """Up to ``width`` oldest instructions that are DONE, in order."""
        ready: List[DynInst] = []
        for inst in self._entries:
            if len(ready) >= width:
                break
            if inst.state is not InstState.DONE:
                break
            ready.append(inst)
        return ready

    def squash_younger_than(self, seq: int) -> List[DynInst]:
        """Remove every entry younger than ``seq`` (misprediction recovery).

        Entries are returned youngest-first, which is the order the renamer
        needs to undo their mappings.
        """
        squashed: List[DynInst] = []
        while self._entries and self._entries[-1].seq > seq:
            squashed.append(self._entries.pop())
        return squashed

    def __iter__(self):
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
