"""The out-of-order core models: the machines and all their structures."""

from .cam_rename import CAMRenamer, RenameSnapshot
from .checkpoint import Checkpoint, CheckpointPolicy, CheckpointTable
from .frontend import FetchUnit
from .fu import ExecutionUnits, FunctionalUnitPool
from .iq import InstructionQueue, WakeupNetwork
from .lsq import LoadStoreQueue
from .machines import PerfectL2Pipeline, UnboundedROBPipeline
from .pipeline import BaselinePipeline, OoOCommitPipeline, PipelineBase, build_pipeline
from .probes import CallbackProbe, OccupancyProbe, Probe, default_probes
from .processor import Processor, average_ipc, simulate
from .pseudo_rob import PseudoROB
from .regfile import PhysicalPool, PhysicalRegisterFile
from .registry_machines import (
    MachineSpec,
    create_pipeline,
    get_machine,
    machine_names,
    machine_specs,
    register_machine,
    unregister_machine,
)
from .rename_map import MapTableRenamer
from .result import SimulationResult, build_result
from .rob import ReorderBuffer
from .sliq import LongLatencyTracker, SlowLaneQueue

__all__ = [
    "PerfectL2Pipeline",
    "UnboundedROBPipeline",
    "CallbackProbe",
    "OccupancyProbe",
    "Probe",
    "default_probes",
    "MachineSpec",
    "create_pipeline",
    "get_machine",
    "machine_names",
    "machine_specs",
    "register_machine",
    "unregister_machine",
    "CAMRenamer",
    "RenameSnapshot",
    "Checkpoint",
    "CheckpointPolicy",
    "CheckpointTable",
    "FetchUnit",
    "ExecutionUnits",
    "FunctionalUnitPool",
    "InstructionQueue",
    "WakeupNetwork",
    "LoadStoreQueue",
    "BaselinePipeline",
    "OoOCommitPipeline",
    "PipelineBase",
    "build_pipeline",
    "Processor",
    "average_ipc",
    "simulate",
    "PseudoROB",
    "PhysicalPool",
    "PhysicalRegisterFile",
    "MapTableRenamer",
    "SimulationResult",
    "build_result",
    "ReorderBuffer",
    "LongLatencyTracker",
    "SlowLaneQueue",
]
