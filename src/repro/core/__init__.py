"""The out-of-order core models: both machines and all their structures."""

from .cam_rename import CAMRenamer, RenameSnapshot
from .checkpoint import Checkpoint, CheckpointPolicy, CheckpointTable
from .frontend import FetchUnit
from .fu import ExecutionUnits, FunctionalUnitPool
from .iq import InstructionQueue, WakeupNetwork
from .lsq import LoadStoreQueue
from .pipeline import BaselinePipeline, OoOCommitPipeline, PipelineBase, build_pipeline
from .processor import Processor, average_ipc, simulate
from .pseudo_rob import PseudoROB
from .regfile import PhysicalPool, PhysicalRegisterFile
from .rename_map import MapTableRenamer
from .result import SimulationResult, build_result
from .rob import ReorderBuffer
from .sliq import LongLatencyTracker, SlowLaneQueue

__all__ = [
    "CAMRenamer",
    "RenameSnapshot",
    "Checkpoint",
    "CheckpointPolicy",
    "CheckpointTable",
    "FetchUnit",
    "ExecutionUnits",
    "FunctionalUnitPool",
    "InstructionQueue",
    "WakeupNetwork",
    "LoadStoreQueue",
    "BaselinePipeline",
    "OoOCommitPipeline",
    "PipelineBase",
    "build_pipeline",
    "Processor",
    "average_ipc",
    "simulate",
    "PseudoROB",
    "PhysicalPool",
    "PhysicalRegisterFile",
    "MapTableRenamer",
    "SimulationResult",
    "build_result",
    "ReorderBuffer",
    "LongLatencyTracker",
    "SlowLaneQueue",
]
