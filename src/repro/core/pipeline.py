"""The cycle-level pipelines: conventional baseline and out-of-order commit.

:class:`PipelineBase` owns everything the machines share — fetch, rename
bookkeeping, issue queues, execution units, the memory hierarchy,
write-back and the probe event plumbing.  The two built-in subclasses
implement the parts the paper changes:

* :class:`BaselinePipeline` — dispatch allocates a ROB entry; commit
  retires in order from the ROB head (Table 1's machine).
* :class:`OoOCommitPipeline` — dispatch associates instructions with
  checkpoints, inserts them into the pseudo-ROB and (through pseudo-ROB
  retirement) the SLIQ; commit retires whole checkpoints whose pending
  counters reached zero, draining their stores and freeing their Future
  Free registers.

Machines are registered in :mod:`repro.core.registry_machines`; further
variants (``perfect-l2``, ``unbounded-rob``, user plugins) live in
:mod:`repro.core.machines` and need no edits here.  Observation happens
through :mod:`repro.core.probes`: the occupancy statistics behind
Figures 7 and 11 are an :class:`~repro.core.probes.OccupancyProbe`
attached by default.
"""

from __future__ import annotations

import heapq
import warnings
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..common.config import ProcessorConfig
from ..common.errors import DeadlockError, SimulationError
from ..common.stats import StatsRegistry
from ..isa.instruction import DynInst, InstState, RetireClass
from ..isa.opcodes import OpClass, is_fp
from ..memory.hierarchy import CacheHierarchy
from ..trace.trace import Trace
from .cam_rename import CAMRenamer
from .checkpoint import Checkpoint, CheckpointPolicy, CheckpointTable
from .frontend import FetchUnit
from .fu import ExecutionUnits
from .iq import InstructionQueue, WakeupNetwork
from .lsq import LoadStoreQueue
from .probes import PROBE_EVENTS, Probe, default_probes, hook_for
from .pseudo_rob import PseudoROB
from .regfile import PhysicalPool, PhysicalRegisterFile
from .registry_machines import cooo_cli_config, register_machine
from .rename_map import MapTableRenamer
from .result import SimulationResult, build_result
from .rob import ReorderBuffer
from .sliq import LongLatencyTracker, SlowLaneQueue


def _by_seq(inst: DynInst) -> int:
    """Sort key for age-ordered selection (module-level: no per-call closure)."""
    return inst.seq


class PipelineBase:
    """Shared machinery of every simulated machine."""

    mode = "base"
    #: Whether the machine models Figure 14's late register allocation;
    #: ``ProcessorConfig.validate`` checks the flag through the registry.
    supports_late_allocation = False

    @classmethod
    def effective_config(cls, config: ProcessorConfig) -> ProcessorConfig:
        """The config as this machine actually simulates it.

        Variant machines that force structure sizes or memory flags at
        construction (``perfect-l2``, ``unbounded-rob``) override this.
        Every pipeline applies it on construction, and any driver that
        replicates machine state *outside* a pipeline — the sampled
        execution warmer keeps its own hierarchy/predictor — must build
        from the effective config, not the raw one, or the replicated
        state silently diverges from what the machine simulates.
        Overrides must be idempotent: the hook runs again on the config
        it already transformed when a driver hands the effective config
        to a pipeline constructor.
        """
        return config

    def __init__(
        self,
        config: ProcessorConfig,
        trace: Trace,
        stats: Optional[StatsRegistry] = None,
        probes: Optional[Sequence[Probe]] = None,
    ) -> None:
        config = self.effective_config(config)
        config.validate()
        self.config = config
        self.trace = trace
        self.stats = stats if stats is not None else StatsRegistry()
        self.cycle = 0
        self.hierarchy = CacheHierarchy(config.memory, self.stats)
        self.regfile = PhysicalRegisterFile(self._register_identifier_count(), self.stats)
        self.wakeup = WakeupNetwork()
        self.int_queue = InstructionQueue("iq.int", config.core.int_queue_size, self.stats)
        self.fp_queue = InstructionQueue("iq.fp", config.core.fp_queue_size, self.stats)
        self.lsq = LoadStoreQueue(config.core.lsq_size, self.stats)
        self.units = ExecutionUnits(config.core.fu, config.memory.memory_ports, self.stats)
        self.frontend = FetchUnit(
            trace, config.branch, self.hierarchy, self.stats, config.core.fetch_width
        )
        self.fetch_buffer: Deque[DynInst] = deque()
        self._writeback_heap: List[Tuple[int, int, DynInst]] = []
        self._next_seq = 0
        self.committed = 0
        self.fetched = 0
        self._last_commit_cycle = 0
        self._dispatched_in_cycle = 0
        # Hot-loop constants, bound once so the per-cycle stages do not
        # chase config attribute chains.
        self._fetch_width = config.core.fetch_width
        self._fetch_buffer_cap = 2 * config.core.fetch_width
        self._issue_width = config.core.issue_width

        # Probes: the occupancy/liveness accounting of Figures 7 and 11
        # lives in the default OccupancyProbe; ``probes=None`` attaches it,
        # an explicit (possibly empty) sequence replaces the defaults.
        self.occupancy = None  # set by an attaching OccupancyProbe
        self._probes: List[Probe] = []
        #: Bulk idle-span hooks of skip-aware probes (see Probe.on_idle_cycles).
        self._hooks_idle_cycles: List[Callable] = []
        #: True once a probe subscribes to on_cycle without an
        #: on_idle_cycles counterpart — the kernel then steps every cycle.
        self._per_cycle_only = False
        for event in PROBE_EVENTS:
            setattr(self, f"_hooks_{event[3:]}", [])
        for probe in default_probes() if probes is None else probes:
            self.attach_probe(probe)
        self._exceptions_delivered = self.stats.counter("exceptions.delivered")
        self._dispatch_stalls = self.stats.counter("dispatch.stall_cycles")
        self._committed_counter = self.stats.counter("commit.instructions")
        #: Commit watermarks (sampled execution): ascending committed-count
        #: targets still to be crossed, and the (target, cycle, fetched)
        #: records of the ones already crossed.  Empty unless ``run`` was
        #: given ``commit_marks``, so the per-commit check is one falsy test.
        self._pending_marks: List[int] = []
        self.commit_mark_records: List[Tuple[int, int, int]] = []

    # -- probe plumbing ---------------------------------------------------------
    @property
    def probes(self) -> Tuple[Probe, ...]:
        """The probes currently observing this pipeline."""
        return tuple(self._probes)

    def attach_probe(self, probe: Probe) -> Probe:
        """Attach an observer; only the events it overrides are bound.

        A probe that overrides ``on_cycle`` but not ``on_idle_cycles``
        needs to see every simulated cycle, so its attachment switches
        the kernel to per-cycle stepping.  Skip-aware probes (both
        overridden, like the default :class:`OccupancyProbe`) keep the
        event-driven fast path.
        """
        self._probes.append(probe)
        probe.on_attach(self)
        idle_hook = hook_for(probe, "on_idle_cycles")
        if idle_hook is not None:
            self._hooks_idle_cycles.append(idle_hook)
        for event in PROBE_EVENTS:
            hook = hook_for(probe, event)
            if hook is not None:
                getattr(self, f"_hooks_{event[3:]}").append(hook)
                if event == "on_cycle" and idle_hook is None:
                    self._per_cycle_only = True
        return probe

    # -- sampled execution ------------------------------------------------------
    def adopt_warm_state(self, hierarchy, predictor=None, btb=None) -> None:
        """Swap in pre-warmed long-lived structures before :meth:`run`.

        The sampled-execution driver keeps one memory hierarchy, branch
        predictor and BTB alive across fast-forward and detailed phases;
        each detailed window builds a fresh pipeline (empty queues, seq 0,
        cycle 0) and adopts the warm structures through this hook.  Every
        cached reference is rebound, so subclasses that stash their own
        must override and chain up.
        """
        self.hierarchy = hierarchy
        self.frontend.hierarchy = hierarchy
        if predictor is not None:
            self.frontend.predictor = predictor
        if btb is not None:
            self.frontend.btb = btb

    # -- subclass hooks ---------------------------------------------------------
    def _register_identifier_count(self) -> int:
        """How many renameable identifiers the regfile provides."""
        return self.config.core.physical_registers

    def _dispatch_stage(self) -> None:
        raise NotImplementedError

    def _commit_stage(self) -> None:
        raise NotImplementedError

    def _on_complete(self, inst: DynInst) -> None:
        """Mode-specific actions at write-back."""

    def _resolve_branch(self, inst: DynInst) -> None:
        """Mode-specific misprediction recovery."""
        raise NotImplementedError

    def _handle_exception(self, inst: DynInst) -> None:
        """Mode-specific exception handling at completion time."""

    def _extra_cycle_work(self) -> None:
        """Hook run once per cycle after the standard stages."""

    # -- squash bookkeeping shared by both machines ------------------------------
    def _squash_bookkeeping(self, inst: DynInst) -> None:
        """Release everything a squashed instruction occupies (except renaming)."""
        if self._hooks_squash:
            # Before teardown, so probes still see the state it died in.
            for hook in self._hooks_squash:
                hook(self, inst)
        if inst.in_iq:
            queue: InstructionQueue = inst.iq
            queue.remove(inst)
        if inst.is_memory and inst.lsq_index is not None:
            self.lsq.release(inst)
        inst.mark_squashed()

    # -- top-level driver ---------------------------------------------------------
    @property
    def total_instructions(self) -> int:
        return len(self.trace)

    def finished(self) -> bool:
        return self.committed >= self.total_instructions

    def run(
        self,
        max_cycles: Optional[int] = None,
        *,
        progress: Optional[Callable[["PipelineBase"], None]] = None,
        progress_interval: int = 8192,
        stop: Optional[Callable[["PipelineBase"], bool]] = None,
        force_per_cycle: bool = False,
        commit_marks: Optional[Sequence[int]] = None,
    ) -> SimulationResult:
        """Simulate until every trace instruction committed.

        ``progress`` is invoked with the pipeline every
        ``progress_interval`` cycles; ``stop`` is an early-stop predicate
        checked each cycle — when it returns True the run ends and the
        (partial) result is built from whatever has committed so far.

        ``commit_marks`` is a sequence of committed-instruction counts;
        as the run first reaches (or passes) each, a ``(target, cycle,
        fetched)`` record is appended to :attr:`commit_mark_records`.
        The sampled-execution driver uses these to attribute cycles to
        measurement windows without per-cycle callbacks: commit-time
        crossings at *both* window boundaries carry the same pipeline
        and memory-latency offset, which therefore cancels out of the
        measured span.  Marks never disturb the event-driven fast path
        (commits cannot happen inside a skipped span, so crossing cycles
        are exact).

        The driver is **event-driven**: whenever no stage can make
        progress next cycle, the clock jumps to the next interesting
        cycle (write-back heap head, front-end wake-up, watchdog) in one
        step, integrating the per-cycle statistics over the skipped span
        so the result is bit-identical to stepping every cycle.  The
        kernel falls back to per-cycle stepping when ``force_per_cycle``
        is set (the debug escape hatch), when a ``stop`` predicate is
        given (it must be evaluated every cycle), or when an attached
        probe subscribes to ``on_cycle`` without being skip-aware.
        """
        limit = max_cycles if max_cycles is not None else float("inf")
        if commit_marks:
            self._pending_marks = sorted(commit_marks)
            self.commit_mark_records = []
        event_driven = not (force_per_cycle or stop is not None or self._per_cycle_only)
        progress_stride = progress_interval if progress is not None else 0
        deadlock_cycles = self.config.deadlock_cycles
        step = self.step
        finished = self.finished
        while not finished():
            if self.cycle >= limit:
                raise SimulationError(
                    f"exceeded max_cycles={max_cycles} with "
                    f"{self.committed}/{self.total_instructions} committed"
                )
            if event_driven:
                self._advance_past_idle(max_cycles, progress_stride)
            step()
            if self.cycle - self._last_commit_cycle > deadlock_cycles:
                raise DeadlockError(self._deadlock_report())
            if progress is not None and self.cycle % progress_interval == 0:
                progress(self)
            if stop is not None and stop(self):
                break
        return build_result(
            self.config,
            self.trace.name,
            self.cycle,
            self.committed,
            self.fetched,
            self.stats,
        )

    def step(self) -> None:
        """Advance the machine by one cycle."""
        self.cycle += 1
        self._commit_stage()
        if self._writeback_heap:
            self._writeback_stage()
        self._issue_stage()
        self._dispatch_stage()
        self._fetch_stage()
        self._extra_cycle_work()
        if self._hooks_cycle:
            for hook in self._hooks_cycle:
                hook(self)
        self._sample_occupancy()

    # -- event-driven time advance ------------------------------------------------
    def _advance_past_idle(self, limit: Optional[int], progress_stride: int) -> None:
        """Jump ``self.cycle`` to just before the next interesting cycle.

        The next cycle is *idle* when every stage is provably a no-op:
        no write-back is due, the front end cannot deliver, no issue
        candidate is ready, and the mode-specific stages (dispatch,
        commit, SLIQ re-insertion, pseudo-ROB drain) can neither move an
        instruction nor mutate state.  An idle cycle still has per-cycle
        side effects — occupancy samples and stall counters — which stay
        constant across the span, so they are applied in bulk by
        :meth:`_account_idle_cycles` and the clock jumps straight to the
        earliest of:

        * the write-back heap head (memory completions included — MSHR
          fill timers are passive and surface through load completions);
        * the front end's ``resume_cycle`` (I-cache miss / redirect);
        * the deadlock watchdog threshold, ``max_cycles`` and (when a
          progress callback is bound) the next reporting cycle, so those
          fire exactly as they would per cycle.
        """
        cycle = self.cycle
        horizon = cycle + 1
        target: Optional[int] = None
        heap = self._writeback_heap
        if heap:
            head = heap[0][0]
            if head <= horizon:
                return
            target = head
        frontend = self.frontend
        if len(self.fetch_buffer) < self._fetch_buffer_cap and not frontend.exhausted:
            if frontend.stalled:
                return  # stall-mode front ends count per-cycle statistics
            resume = frontend.resume_cycle
            if resume <= horizon:
                return
            if target is None or resume < target:
                target = resume
        if self.int_queue.has_ready() or self.fp_queue.has_ready():
            return
        idle_effects = self._idle_cycle_effects()
        if idle_effects is None:
            return
        watchdog = self._last_commit_cycle + self.config.deadlock_cycles + 1
        if target is None or watchdog < target:
            target = watchdog
        if limit is not None and limit < target:
            target = limit
        if progress_stride:
            next_report = cycle - cycle % progress_stride + progress_stride
            if next_report < target:
                target = next_report
        skipped = target - horizon
        if skipped <= 0:
            return
        self._account_idle_cycles(skipped, idle_effects)
        self.cycle = target - 1

    def _idle_cycle_effects(self) -> Optional[Tuple[Callable[[int], None], ...]]:
        """Can the machine-specific stages do nothing next cycle?

        Returns ``None`` when some stage would make progress or mutate
        state (no skipping), otherwise the per-cycle statistic effects an
        idle cycle would have (each called with the number of skipped
        cycles).  The base implementation refuses to skip, so machines
        with custom stage behaviour stay correct-by-default; the two
        shipped machines override this with their exact stall signature.
        """
        return None

    def _extra_idle_work(self, cycles: int) -> None:
        """Bulk counterpart of :meth:`_extra_cycle_work` for skipped spans."""

    def _account_idle_cycles(
        self, cycles: int, effects: Tuple[Callable[[int], None], ...]
    ) -> None:
        """Apply the per-cycle side effects of ``cycles`` idle cycles at once."""
        for effect in effects:
            effect(cycles)
        self.int_queue.sample_occupancy(cycles)
        self.fp_queue.sample_occupancy(cycles)
        self.lsq.sample_occupancy(cycles)
        self._extra_idle_work(cycles)
        if self._hooks_idle_cycles:
            for hook in self._hooks_idle_cycles:
                hook(self, cycles)

    # -- fetch ------------------------------------------------------------------------
    def _fetch_stage(self) -> None:
        buffer = self.fetch_buffer
        if len(buffer) >= self._fetch_buffer_cap:
            return
        cycle = self.cycle
        for fetched in self.frontend.fetch_block(cycle):
            inst = DynInst(seq=self._next_seq, trace_index=fetched.trace_index, instr=fetched.instr)
            self._next_seq += 1
            self.fetched += 1
            inst.fetch_cycle = cycle
            inst.predicted_taken = fetched.predicted_taken
            inst.mispredicted = fetched.mispredicted
            inst.fetch_history = fetched.history
            buffer.append(inst)

    # -- dispatch helpers shared by both machines -----------------------------------------
    def _queue_for(self, inst: DynInst) -> InstructionQueue:
        return self.fp_queue if is_fp(inst.op) else self.int_queue

    def _enter_window(self, inst: DynInst) -> None:
        """Common bookkeeping when an instruction is dispatched."""
        inst.state = InstState.DISPATCHED
        inst.dispatch_cycle = self.cycle
        if self._hooks_dispatch:
            for hook in self._hooks_dispatch:
                hook(self, inst)

    def _retire_from_window(self, inst: DynInst) -> None:
        """An instruction retired architecturally (probe notification)."""
        if self._hooks_commit:
            for hook in self._hooks_commit:
                hook(self, inst)

    # -- issue --------------------------------------------------------------------------
    def _issue_stage(self) -> None:
        int_queue = self.int_queue
        fp_queue = self.fp_queue
        if not int_queue.maybe_ready and not fp_queue.maybe_ready:
            return
        width = self._issue_width
        issued = 0
        candidates: List[DynInst] = []
        for queue in (int_queue, fp_queue):
            pop_ready = queue.pop_ready
            for _ in range(width):
                inst = pop_ready()
                if inst is None:
                    break
                candidates.append(inst)
        if not candidates:
            return
        candidates.sort(key=_by_seq)
        try_issue = self._try_issue
        for inst in candidates:
            if issued < width and try_issue(inst):
                issued += 1
            else:
                inst.iq.unpop(inst)

    def _try_issue(self, inst: DynInst) -> bool:
        cycle = self.cycle
        if not self.units.try_issue(inst.op, cycle):
            return False
        queue: InstructionQueue = inst.iq
        queue.remove(inst)
        queue.record_issue()
        inst.state = InstState.EXECUTING
        inst.issue_cycle = cycle
        completion = cycle + self._execution_time(inst)
        if self._hooks_issue:
            # After _execution_time, so probes see the L2-miss verdict.
            for hook in self._hooks_issue:
                hook(self, inst)
        heapq.heappush(self._writeback_heap, (completion, inst.seq, inst))
        return True

    def _execution_time(self, inst: DynInst) -> int:
        """Cycles from issue to completion, including any memory access."""
        base = self.units.latency(inst.op)
        if inst.is_load:
            forwarding_store = self.lsq.forwarding_store(inst)
            if forwarding_store is not None:
                return base + 1
            access = self.hierarchy.data_access(
                inst.instr.mem_addr or 0, False, self.cycle, pc=inst.instr.pc
            )
            inst.l2_miss = access.l2_miss
            inst.dl1_miss = access.dl1_miss
            if access.l2_miss:
                inst.long_latency = True
            return base + access.latency
        if inst.is_store:
            # Address generation only; the write happens when the store drains.
            return base
        return base

    # -- write-back --------------------------------------------------------------------------
    def _writeback_stage(self) -> None:
        heap = self._writeback_heap
        cycle = self.cycle
        heappop = heapq.heappop
        while heap and heap[0][0] <= cycle:
            inst = heappop(heap)[2]
            if inst.state is InstState.SQUASHED:
                continue
            if not self._complete_instruction(inst):
                # Structural stall (late register allocation): retry next cycle.
                heapq.heappush(heap, (cycle + 1, inst.seq, inst))

    def _complete_instruction(self, inst: DynInst) -> bool:
        """Finish one instruction; False requests a retry next cycle."""
        if not self._claim_writeback_resources(inst):
            return False
        inst.state = InstState.DONE
        inst.complete_cycle = self.cycle
        phys_dest = inst.phys_dest
        if phys_dest is not None:
            self.regfile.set_ready(phys_dest)
            for waiter in self.wakeup.notify_ready(phys_dest):
                waiter.iq.mark_ready(waiter)
        if self._hooks_complete:
            for hook in self._hooks_complete:
                hook(self, inst)
        self._on_complete(inst)
        if inst.is_branch and inst.mispredicted:
            self._resolve_branch(inst)
        if inst.instr.raises_exception:
            self._handle_exception(inst)
        return True

    def _claim_writeback_resources(self, inst: DynInst) -> bool:
        """Hook for the late-allocation model (claims a physical register)."""
        return True

    # -- occupancy sampling ------------------------------------------------------------------------
    def _sample_occupancy(self) -> None:
        """Per-structure occupancy; window occupancy lives in OccupancyProbe."""
        self.int_queue.sample_occupancy()
        self.fp_queue.sample_occupancy()
        self.lsq.sample_occupancy()

    # -- bookkeeping --------------------------------------------------------------------------------
    def _note_commit(self, count: int = 1) -> None:
        self.committed += count
        self._committed_counter.add(count)
        self._last_commit_cycle = self.cycle
        if self._pending_marks:
            marks = self._pending_marks
            while marks and self.committed >= marks[0]:
                self.commit_mark_records.append((marks.pop(0), self.cycle, self.fetched))

    def _deadlock_report(self) -> str:
        in_flight = self.occupancy.in_flight if self.occupancy is not None else "n/a"
        # Report the simulated-cycle span without commit progress, not a
        # loop-iteration count: under the event-driven kernel one driver
        # iteration can cover thousands of simulated cycles, and the span
        # is what the deadlock_cycles threshold is measured in.
        stalled_span = self.cycle - self._last_commit_cycle
        return (
            f"{self.mode} pipeline made no commit progress for "
            f"{stalled_span} simulated cycles "
            f"(threshold {self.config.deadlock_cycles}) at cycle {self.cycle}: "
            f"committed={self.committed}/{self.total_instructions}, "
            f"in_flight={in_flight}, int_iq={self.int_queue.occupancy}, "
            f"fp_iq={self.fp_queue.occupancy}, lsq={self.lsq.occupancy}, "
            f"fetch_buffer={len(self.fetch_buffer)}, "
            f"frontend_stalled={self.frontend.stalled}"
        )


@register_machine(
    "baseline",
    description="conventional Table-1 machine: ROB-bounded window, in-order commit",
)
class BaselinePipeline(PipelineBase):
    """The conventional machine of Table 1: ROB + in-order commit."""

    def __init__(
        self,
        config: ProcessorConfig,
        trace: Trace,
        stats: Optional[StatsRegistry] = None,
        probes: Optional[Sequence[Probe]] = None,
    ) -> None:
        super().__init__(config, trace, stats, probes)
        config = self.config  # the effective config (variant machines force fields)
        self.renamer = MapTableRenamer(self.regfile, self.stats)
        self.rob = ReorderBuffer(config.core.rob_size, self.stats)
        self._rob_occupancy_mean = self.stats.running_mean("rob.occupancy")
        self._branch_recoveries = self.stats.counter("branch.recoveries")
        self._squashed_counter = self.stats.counter("squash.instructions")

    # -- dispatch -----------------------------------------------------------------------
    def _dispatch_stage(self) -> None:
        width = self.config.core.fetch_width
        dispatched = 0
        while self.fetch_buffer and dispatched < width:
            inst = self.fetch_buffer[0]
            queue = self._queue_for(inst)
            if self.rob.is_full:
                self.rob.note_full_stall()
                self._dispatch_stalls.add()
                return
            if queue.is_full:
                queue.note_full_stall()
                self._dispatch_stalls.add()
                return
            if inst.is_memory and self.lsq.is_full:
                self.lsq.note_full_stall()
                self._dispatch_stalls.add()
                return
            if not self.renamer.can_rename(inst):
                self._dispatch_stalls.add()
                return
            self.fetch_buffer.popleft()
            self.renamer.rename(inst)
            self.rob.insert(inst)
            if inst.is_memory:
                self.lsq.allocate(inst)
            queue.insert(inst, self.regfile, self.wakeup)
            self._enter_window(inst)
            dispatched += 1

    # -- commit ---------------------------------------------------------------------------
    def _commit_stage(self) -> None:
        head = self.rob.head()
        if head is None or head.state is not InstState.DONE:
            return
        for inst in self.rob.committable(self.config.core.commit_width):
            self.rob.commit_head()
            if inst.is_store:
                self.hierarchy.data_access(
                    inst.instr.mem_addr or 0, True, self.cycle, pc=inst.instr.pc
                )
                inst.store_drained = True
            if inst.is_memory:
                self.lsq.release(inst)
            self.renamer.release_on_commit(inst)
            if inst.instr.raises_exception:
                self._exceptions_delivered.add()
            inst.state = InstState.COMMITTED
            inst.commit_cycle = self.cycle
            self._retire_from_window(inst)
            self._note_commit()

    # -- misprediction recovery ------------------------------------------------------
    def _resolve_branch(self, branch: DynInst) -> None:
        """Squash everything younger than the branch and redirect fetch."""
        self._branch_recoveries.add()
        buffered = list(self.fetch_buffer)
        self.fetch_buffer.clear()
        for inst in reversed(buffered):
            self._squash_bookkeeping(inst)
            self._squashed_counter.add()
        for inst in self.rob.squash_younger_than(branch.seq):  # youngest first
            self.renamer.undo_rename(inst)
            self._squash_bookkeeping(inst)
            self._squashed_counter.add()
        self.frontend.redirect(
            branch.trace_index + 1, self.cycle + self.config.branch.penalty
        )

    def _extra_cycle_work(self) -> None:
        self._rob_occupancy_mean.sample(self.rob.occupancy)

    # -- event-driven kernel hooks ----------------------------------------------------
    def _idle_cycle_effects(self) -> Optional[Tuple[Callable[[int], None], ...]]:
        """Next-cycle no-op check mirroring ``_dispatch_stage``/``_commit_stage``.

        Skipping is refused (``None``) when the ROB head is completed
        (commit would retire it) or when dispatch could move the fetch
        buffer's head into the window.  Otherwise the returned effects
        are exactly the stall statistics one idle dispatch attempt
        bumps, in the order the real stage would.
        """
        head = self.rob.head()
        if head is not None and head.state is InstState.DONE:
            return None
        if not self.fetch_buffer:
            return ()
        inst = self.fetch_buffer[0]
        if self.rob.is_full:
            return (self.rob.note_full_stall, self._dispatch_stalls.add)
        queue = self._queue_for(inst)
        if queue.is_full:
            return (queue.note_full_stall, self._dispatch_stalls.add)
        if inst.is_memory and self.lsq.is_full:
            return (self.lsq.note_full_stall, self._dispatch_stalls.add)
        if not self.renamer.can_rename(inst):
            return (self._dispatch_stalls.add,)
        return None  # dispatch would make progress

    def _extra_idle_work(self, cycles: int) -> None:
        self._rob_occupancy_mean.sample_many(self.rob.occupancy, cycles)


@register_machine(
    "cooo",
    description="the paper's machine: checkpointed out-of-order commit + SLIQ",
    cli_config=cooo_cli_config,
)
class OoOCommitPipeline(PipelineBase):
    """The paper's machine: checkpointed out-of-order commit plus SLIQ."""

    supports_late_allocation = True

    def __init__(
        self,
        config: ProcessorConfig,
        trace: Trace,
        stats: Optional[StatsRegistry] = None,
        probes: Optional[Sequence[Probe]] = None,
    ) -> None:
        super().__init__(config, trace, stats, probes)
        config = self.config  # the effective config (variant machines force fields)
        self.renamer = CAMRenamer(self.regfile, self.stats)
        self.checkpoints = CheckpointTable(config.checkpoint.table_size, self.stats)
        self.policy = CheckpointPolicy(config.checkpoint)
        self.pseudo_rob = PseudoROB(config.sliq.pseudo_rob_size, self.stats)
        self.sliq = (
            SlowLaneQueue(config.sliq, self.stats, ready_fn=self.regfile.is_ready)
            if config.sliq.enabled
            else None
        )
        self.tracker = LongLatencyTracker()
        self._draining: Optional[Checkpoint] = None
        self._drain_position = 0
        self._careful_indices: Set[int] = set()
        self._phys_pool: Optional[PhysicalPool] = None
        self._claimed_tags: Set[int] = set()
        if config.regalloc.late_allocation:
            from ..isa.registers import NUM_LOGICAL_REGS

            self._phys_pool = PhysicalPool(
                config.core.physical_registers, self.stats, initially_claimed=NUM_LOGICAL_REGS
            )
        self._pseudo_rob_recoveries = self.stats.counter("branch.pseudo_rob_recoveries")
        self._checkpoint_recoveries = self.stats.counter("branch.checkpoint_recoveries")
        self._exception_rollbacks = self.stats.counter("exceptions.rollbacks")
        self._squashed_counter = self.stats.counter("squash.instructions")

    # -- configuration hooks ------------------------------------------------------------
    def _register_identifier_count(self) -> int:
        if self.config.regalloc.late_allocation:
            return self.config.regalloc.virtual_tags
        return self.config.core.physical_registers

    # -- dispatch --------------------------------------------------------------------------
    def _dispatch_stage(self) -> None:
        width = self.config.core.fetch_width
        dispatched = 0
        self._dispatched_in_cycle = 0
        while self.fetch_buffer and dispatched < width:
            inst = self.fetch_buffer[0]
            if not self._ensure_checkpoint(inst):
                self._dispatch_stalls.add()
                return
            if not self._ensure_pseudo_rob_space():
                self._dispatch_stalls.add()
                return
            queue = self._queue_for(inst)
            if queue.is_full:
                queue.note_full_stall()
                self._dispatch_stalls.add()
                return
            if inst.is_memory and self.lsq.is_full:
                self.lsq.note_full_stall()
                self._dispatch_stalls.add()
                return
            if not self.renamer.can_rename(inst):
                self._dispatch_stalls.add()
                return
            self.fetch_buffer.popleft()
            self.renamer.rename(inst)
            if inst.is_memory:
                self.lsq.allocate(inst)
            queue.insert(inst, self.regfile, self.wakeup)
            self.pseudo_rob.insert(inst)
            youngest = self.checkpoints.youngest()
            assert youngest is not None
            youngest.associate(inst)
            self.policy.account(inst)
            self._enter_window(inst)
            dispatched += 1
            self._dispatched_in_cycle = dispatched

    def _ensure_checkpoint(self, inst: DynInst) -> bool:
        """Create a checkpoint before ``inst`` if the policy (or safety) requires one.

        A full checkpoint table does *not* stall dispatch: the machine
        simply keeps associating instructions with the youngest checkpoint
        (its window grows past the thresholds) until the oldest checkpoint
        commits and frees an entry.  This is what lets the paper's machine
        keep thousands of instructions in flight with an 8-entry table.
        Only the initial checkpoint (there must always be one) is mandatory.
        """
        need = self.checkpoints.is_empty or self.policy.should_checkpoint(inst)
        if inst.trace_index in self._careful_indices:
            # Careful re-execution after an exception: a checkpoint right
            # before the excepting instruction gives a precise state.
            need = True
        if not need:
            return True
        if self.checkpoints.is_full:
            self.checkpoints.note_full_stall()
            return not self.checkpoints.is_empty
        snapshot = self.renamer.take_snapshot()
        harvested = self.renamer.harvest_future_free()
        checkpoint = self.checkpoints.create(
            resume_index=inst.trace_index,
            resume_seq=inst.seq,
            snapshot=snapshot,
            harvested_future_free=harvested,
            cycle=self.cycle,
            history=inst.fetch_history,
        )
        self.policy.checkpoint_taken()
        if self._hooks_checkpoint:
            for hook in self._hooks_checkpoint:
                hook(self, checkpoint)
        return True

    def _ensure_pseudo_rob_space(self) -> bool:
        """Retire the oldest pseudo-ROB entries until there is room for one more."""
        while self.pseudo_rob.is_full:
            if not self._retire_from_pseudo_rob():
                return False
        return True

    # -- pseudo-ROB retirement and SLIQ classification --------------------------------------------
    def _retire_from_pseudo_rob(self) -> bool:
        """Classify and retire the oldest pseudo-ROB entry; False if blocked."""
        inst = self.pseudo_rob.oldest()
        if inst is None:
            return True
        retire_class, move_root = self._classify_retirement(inst)
        if move_root is not None:
            if self.sliq is None or self.sliq.is_full:
                if self.sliq is not None:
                    self.sliq.note_full_stall()
                # Without SLIQ space the instruction simply stays in the
                # issue queue; it is retired as short-latency instead.
                retire_class, move_root = RetireClass.SHORT_LATENCY, None
            elif not inst.in_iq:
                # Raced with issue: it is executing, nothing to move.
                retire_class, move_root = RetireClass.SHORT_LATENCY, None
        self.pseudo_rob.retire_oldest()
        self.pseudo_rob.record_classification(retire_class)
        inst.retire_class = retire_class
        if move_root is not None and self.sliq is not None:
            queue: InstructionQueue = inst.iq
            queue.remove(inst)
            self.sliq.insert(inst, move_root, self.cycle)
        return True

    def _classify_retirement(self, inst: DynInst) -> Tuple[RetireClass, Optional[int]]:
        """Figure-12 classification of a pseudo-ROB retiree.

        Returns the retirement class and, for dependent instructions, the
        physical register of the root long-latency load whose completion
        should wake them from the SLIQ.
        """
        if inst.squashed:
            return RetireClass.FINISHED, None
        if inst.is_store:
            # Stores keep their own Figure-12 category, but a store whose
            # data depends on a long-latency chain is still moved out of the
            # issue queue (it would otherwise clog it until the chain
            # resolves and could block SLIQ re-insertions entirely).
            if inst.state is InstState.DISPATCHED:
                root = self.tracker.dependence_root(inst)
                if root is not None:
                    return RetireClass.STORE, root
            return RetireClass.STORE, None
        if inst.is_load:
            if inst.state is InstState.DONE or inst.state is InstState.COMMITTED:
                self.tracker.clear_redefinition(inst)
                return RetireClass.FINISHED_LOAD, None
            if inst.state is InstState.EXECUTING:
                if inst.l2_miss:
                    self.tracker.clear_redefinition(inst)
                    self.tracker.mark_long_latency_load(inst)
                    return RetireClass.LONG_LATENCY_LOAD, None
                self.tracker.clear_redefinition(inst)
                return RetireClass.FINISHED_LOAD, None
            root = self.tracker.dependence_root(inst)
            if root is not None:
                self.tracker.mark_dependent(inst, root)
                return RetireClass.MOVED, root
            if self.hierarchy.would_miss_l2(inst.instr.mem_addr or 0, self.cycle):
                self.tracker.clear_redefinition(inst)
                self.tracker.mark_long_latency_load(inst)
                # Mark the load itself long-latency so its completion wakes
                # any SLIQ entries filed under its destination register even
                # if the access ends up merging with an earlier miss.
                inst.long_latency = True
                return RetireClass.LONG_LATENCY_LOAD, None
            self.tracker.clear_redefinition(inst)
            return RetireClass.FINISHED_LOAD, None
        # Non-memory instructions.
        if inst.state in (InstState.DONE, InstState.COMMITTED):
            self.tracker.clear_redefinition(inst)
            return RetireClass.FINISHED, None
        if inst.state is InstState.EXECUTING:
            self.tracker.clear_redefinition(inst)
            return RetireClass.SHORT_LATENCY, None
        root = self.tracker.dependence_root(inst)
        if root is not None:
            self.tracker.mark_dependent(inst, root)
            return RetireClass.MOVED, root
        self.tracker.clear_redefinition(inst)
        return RetireClass.SHORT_LATENCY, None

    # -- write-back hooks -----------------------------------------------------------------------------
    def _claim_writeback_resources(self, inst: DynInst) -> bool:
        if self._phys_pool is None or inst.phys_dest is None:
            return True
        if inst.claimed_phys:
            return True
        if not self._phys_pool.try_claim():
            # Registers are released when redefining instructions complete,
            # and completions themselves need registers — so an exhausted
            # pool could deadlock the oldest window.  Instructions of the
            # oldest checkpoint therefore always obtain a register (the
            # reserve real late-allocation designs keep for the oldest,
            # non-speculative instructions).
            oldest = self.checkpoints.oldest()
            if oldest is None or inst.checkpoint_id != oldest.uid:
                return False
            self._phys_pool.force_claim()
            self.stats.counter("prf.late_alloc_forced_claims").add()
        inst.claimed_phys = True
        self._claimed_tags.add(inst.phys_dest)
        return True

    def _release_claimed_tag(self, tag: Optional[int]) -> None:
        """Early register recycling of the Figure-14 (ephemeral registers) model."""
        if self._phys_pool is None or tag is None:
            return
        if tag in self._claimed_tags:
            self._claimed_tags.discard(tag)
            self._phys_pool.release()

    def _on_complete(self, inst: DynInst) -> None:
        checkpoint = self.checkpoints.find(inst.checkpoint_id) if inst.checkpoint_id is not None else None
        if checkpoint is not None:
            checkpoint.instruction_finished()
        if self._phys_pool is not None:
            # Late allocation with early recycling: when a redefinition has
            # produced its own value, the displaced value's register dies.
            self._release_claimed_tag(inst.old_phys_dest)
        if inst.phys_dest is not None:
            if self.sliq is not None and self.sliq.has_waiters(inst.phys_dest):
                self.sliq.notify_ready(inst.phys_dest)
            if inst.is_load and inst.long_latency:
                self.tracker.clear_root(inst.phys_dest)
        if inst.is_memory and not inst.is_store:
            # Loads release their LSQ entry at completion; stores hold
            # theirs until their checkpoint commits and they drain.
            self.lsq.release(inst)

    def _resolve_branch(self, inst: DynInst) -> None:
        if self.pseudo_rob.contains(inst):
            # Cheap recovery: the pseudo-ROB still holds the branch, so
            # only strictly-younger instructions have to be unwound.
            self._pseudo_rob_recoveries.add()
            self._recover_via_pseudo_rob(inst)
            return
        self._checkpoint_recoveries.add()
        checkpoint = self.checkpoints.find(inst.checkpoint_id) if inst.checkpoint_id is not None else None
        if checkpoint is None:
            # The checkpoint already committed (should not happen for an
            # uncommitted branch); fall back to a plain fetch redirect.
            self.frontend.redirect(
                inst.trace_index + 1, self.cycle + self.config.branch.penalty
            )
            return
        # The rollback will re-fetch this branch; its outcome is now
        # architecturally known, so the re-fetch must not re-predict it.
        self.frontend.note_resolved(inst.trace_index)
        self._rollback_to(checkpoint)

    def _recover_via_pseudo_rob(self, branch: DynInst) -> None:
        """Walk-based recovery for a branch that is still in the pseudo-ROB.

        Checkpoints opened after the branch are discarded; instructions
        younger than the branch are squashed and their renamings undone in
        reverse order; fetch restarts right after the branch.
        """
        seq = branch.seq
        victims: List[DynInst] = []
        for discarded in self.checkpoints.discard_younger_than_seq(seq):
            victims.extend(discarded.instructions)
        own = self.checkpoints.youngest()
        own_victims: List[DynInst] = []
        if own is not None:
            own_victims = [inst for inst in own.instructions if inst.seq > seq]
            victims.extend(own_victims)
        victims.extend(self.fetch_buffer)
        self.fetch_buffer.clear()
        victims.sort(key=lambda entry: entry.seq, reverse=True)
        for inst in victims:
            if inst.dispatch_cycle is not None and inst.phys_dest is not None:
                self.renamer.undo_rename(inst)
                if inst.old_phys_dest is not None:
                    self.checkpoints.remove_from_pending_free(inst.old_phys_dest)
            self._squash(inst)
        if own is not None:
            for inst in own_victims:
                own.disassociate(inst)
        self.pseudo_rob.remove_squashed()
        if self.sliq is not None:
            self.sliq.remove_squashed()
        self.tracker.reset()
        self.frontend.redirect(
            branch.trace_index + 1, self.cycle + self.config.branch.penalty
        )

    def _handle_exception(self, inst: DynInst) -> None:
        if inst.trace_index in self._careful_indices:
            # Second, careful pass: the state at the preceding checkpoint is
            # precise; deliver the exception and continue.
            self._careful_indices.discard(inst.trace_index)
            self._exceptions_delivered.add()
            return
        checkpoint = self.checkpoints.find(inst.checkpoint_id) if inst.checkpoint_id is not None else None
        if checkpoint is None:
            self._exceptions_delivered.add()
            return
        self._careful_indices.add(inst.trace_index)
        self._exception_rollbacks.add()
        self._rollback_to(checkpoint)

    # -- rollback --------------------------------------------------------------------------------------------
    def _rollback_to(self, checkpoint: Checkpoint) -> None:
        """Restore the machine to ``checkpoint`` and replay from there."""
        if self._draining is checkpoint:
            raise SimulationError("cannot roll back to a checkpoint that is committing")
        discarded = self.checkpoints.discard_younger_than(checkpoint)
        victims: List[DynInst] = []
        for dead_checkpoint in discarded:
            victims.extend(dead_checkpoint.instructions)
        victims.extend(checkpoint.instructions)
        victims.extend(self.fetch_buffer)
        self.fetch_buffer.clear()
        for inst in victims:
            self._squash(inst)
        self.pseudo_rob.remove_squashed()
        if self.sliq is not None:
            self.sliq.remove_squashed()
            self.sliq.reset_wakeups()
        self.tracker.reset()
        reserved = self.checkpoints.reserved_registers(up_to=checkpoint)
        self.renamer.restore(checkpoint.snapshot, reserved)
        checkpoint.reset_window()
        self.policy.reset()
        self.frontend.redirect(
            checkpoint.resume_index, self.cycle + self.config.branch.penalty
        )
        # Restore the branch-history register to the checkpointed
        # instruction's fetch-time snapshot.  Without this, re-fetch
        # predicts through history polluted by the squashed wrong path —
        # a different (usually untrained, weakly-taken) gshare index on
        # every re-execution — and a rarely-taken branch checkpointed at
        # its own dispatch can mispredict and roll back forever.
        self.frontend.repair_history(checkpoint.history)

    def _squash(self, inst: DynInst) -> None:
        if inst.state is InstState.COMMITTED:
            raise SimulationError(f"attempted to squash committed instruction seq={inst.seq}")
        if inst.claimed_phys and self._phys_pool is not None:
            self._release_claimed_tag(inst.phys_dest)
            inst.claimed_phys = False
        self._squash_bookkeeping(inst)
        self._squashed_counter.add()

    # -- commit ----------------------------------------------------------------------------------------------
    def _commit_stage(self) -> None:
        if self._draining is not None:
            self._drain_stores()
            return
        oldest = self.checkpoints.oldest()
        if oldest is None or not oldest.ready_to_commit:
            return
        if not oldest.closed:
            if not self._end_of_trace():
                return
            # Close the final window: harvest its pending frees now.
            oldest.to_free |= self.renamer.harvest_future_free()
            oldest.closed = True
        self._draining = oldest
        self._drain_position = 0
        self._drain_stores()

    def _end_of_trace(self) -> bool:
        return self.frontend.exhausted and not self.fetch_buffer

    def _drain_stores(self) -> None:
        checkpoint = self._draining
        assert checkpoint is not None
        drained = 0
        while (
            self._drain_position < len(checkpoint.stores)
            and drained < self.config.core.commit_width
        ):
            store = checkpoint.stores[self._drain_position]
            self._drain_position += 1
            if store.squashed:
                continue
            self.hierarchy.data_access(
                store.instr.mem_addr or 0, True, self.cycle, pc=store.instr.pc
            )
            self.lsq.release(store)
            store.store_drained = True
            drained += 1
        if self._drain_position >= len(checkpoint.stores):
            self._finalize_checkpoint(checkpoint)

    def _finalize_checkpoint(self, checkpoint: Checkpoint) -> None:
        """All stores drained: free registers, retire the whole window."""
        if self._phys_pool is not None:
            # Safety net: anything not already recycled early dies here.
            for tag in checkpoint.to_free:
                self._release_claimed_tag(tag)
        self.renamer.free_registers(checkpoint.to_free)
        for inst in checkpoint.instructions:
            if inst.squashed:
                continue
            inst.state = InstState.COMMITTED
            inst.commit_cycle = self.cycle
            if inst.instr.raises_exception:
                # Exceptions were delivered at the careful-mode completion;
                # nothing more to do here.
                pass
            self._retire_from_window(inst)
        committed_now = checkpoint.instruction_count
        popped = self.checkpoints.pop_oldest()
        assert popped is checkpoint
        self._draining = None
        self._drain_position = 0
        if committed_now:
            self._note_commit(committed_now)

    # -- per-cycle extras -----------------------------------------------------------------------------------------
    def _extra_cycle_work(self) -> None:
        if self.sliq is not None:
            self.sliq.step(self._reinsert_from_sliq, self.cycle)
            self.sliq.sample_occupancy()
        # Pseudo-ROB retirement is normally driven by dispatch needing room,
        # but when dispatch is stalled (full issue queue, full LSQ) the
        # oldest entries must still drain so that dependent instructions
        # clogging the issue queues can move to the SLIQ and make room for
        # re-insertions — otherwise the machine can deadlock.
        if (
            self._dispatched_in_cycle == 0
            and (self.int_queue.is_full or self.fp_queue.is_full)
        ):
            for _ in range(self._fetch_width):
                if self.pseudo_rob.is_empty or not self._retire_from_pseudo_rob():
                    break
        self.pseudo_rob.sample_occupancy()
        self.checkpoints.sample_occupancy()

    # -- event-driven kernel hooks ----------------------------------------------------
    def _idle_cycle_effects(self) -> Optional[Tuple[Callable[[int], None], ...]]:
        """Next-cycle no-op check for the checkpointed machine.

        Skipping is refused whenever any of this machine's engines has
        per-cycle work: a draining checkpoint, an oldest checkpoint that
        will start committing, a non-empty SLIQ re-insertion stream, the
        stalled-dispatch pseudo-ROB drain, or a dispatch that would
        create a checkpoint / retire pseudo-ROB entries / move the fetch
        head into the window.  The returned effects replicate the stall
        counters an idle dispatch attempt bumps, in stage order.
        """
        if self._draining is not None:
            return None
        oldest = self.checkpoints.oldest()
        if (
            oldest is not None
            and oldest.ready_to_commit
            and (oldest.closed or self._end_of_trace())
        ):
            return None  # commit starts draining this checkpoint next cycle
        if self.sliq is not None and self.sliq.reinsert_pending:
            return None
        if (self.int_queue.is_full or self.fp_queue.is_full) and not self.pseudo_rob.is_empty:
            return None  # the stalled-dispatch pseudo-ROB drain runs every cycle
        if not self.fetch_buffer:
            return ()
        inst = self.fetch_buffer[0]
        effects: List[Callable[[int], None]] = []
        need = (
            self.checkpoints.is_empty
            or self.policy.should_checkpoint(inst)
            or inst.trace_index in self._careful_indices
        )
        if need:
            if not self.checkpoints.is_full:
                return None  # dispatch would open a checkpoint
            effects.append(self.checkpoints.note_full_stall)
        if self.pseudo_rob.is_full:
            return None  # dispatch would retire pseudo-ROB entries
        queue = self._queue_for(inst)
        if queue.is_full:
            effects.append(queue.note_full_stall)
            effects.append(self._dispatch_stalls.add)
        elif inst.is_memory and self.lsq.is_full:
            effects.append(self.lsq.note_full_stall)
            effects.append(self._dispatch_stalls.add)
        elif not self.renamer.can_rename(inst):
            effects.append(self._dispatch_stalls.add)
        else:
            return None  # dispatch would make progress
        return tuple(effects)

    def _extra_idle_work(self, cycles: int) -> None:
        if self.sliq is not None:
            self.sliq.sample_occupancy(cycles)
        self.pseudo_rob.sample_occupancy(cycles)
        self.checkpoints.sample_occupancy(cycles)

    def _reinsert_from_sliq(self, inst: DynInst):
        """Callback used by the SLIQ re-insertion engine.

        Returns True when the instruction re-enters its issue queue, False
        when that queue is full, or a physical register id when the
        instruction still depends on another parked producer and should be
        re-filed under it instead of occupying an issue-queue slot.
        """
        if inst.squashed or inst.state is not InstState.DISPATCHED:
            return True
        if self.sliq is not None:
            for preg in inst.phys_srcs:
                if not self.regfile.is_ready(preg) and self.sliq.is_parked_dest(preg):
                    return preg
        queue = self._queue_for(inst)
        if queue.is_full and not self._make_room_in_queue(queue):
            queue.note_full_stall()
            return False
        inst.sliq_exit_cycle = self.cycle
        queue.insert(inst, self.regfile, self.wakeup)
        return True

    def _make_room_in_queue(self, queue: InstructionQueue) -> bool:
        """Evict a waiting issue-queue entry into the SLIQ to unblock re-insertion.

        When the re-insertion stream is blocked by a full issue queue, the
        youngest resident that is still waiting on operands is spilled to
        the SLIQ (filed under one of its unready sources).  This mirrors
        the pseudo-ROB move datapath and guarantees forward progress: the
        entries blocking the stream are by construction younger than the
        stream head.
        """
        if self.sliq is None:
            return False
        waiting = queue.waiting_residents()
        if not waiting:
            return False
        victim = max(waiting, key=lambda entry: entry.seq)
        pending = [p for p in victim.phys_srcs if not self.regfile.is_ready(p)]
        if not pending:
            return False
        queue.remove(victim)
        # The caller immediately removes one entry from the re-insertion
        # stream, so the SLIQ occupancy only overshoots transiently.
        self.sliq.insert(victim, pending[0], self.cycle, force=True)
        self.stats.counter("sliq.pressure_evictions").add()
        return True


def build_pipeline(
    config: ProcessorConfig,
    trace: Trace,
    stats: Optional[StatsRegistry] = None,
    probes: Optional[Sequence[Probe]] = None,
) -> PipelineBase:
    """Deprecated factory; use :func:`repro.core.registry_machines.create_pipeline`.

    Selects the registered machine implied by ``config.mode``; kept as a
    shim so pre-registry callers keep working.
    """
    warnings.warn(
        "build_pipeline() is deprecated; use repro.api.Simulation or "
        "repro.core.registry_machines.create_pipeline()",
        DeprecationWarning,
        stacklevel=2,
    )
    from .registry_machines import create_pipeline

    return create_pipeline(config, trace, stats, probes=probes or ())
