"""Deprecated entry points, kept as thin shims over :mod:`repro.api`.

:class:`Processor` and :func:`simulate` predate the unified facade;
they still work (and are exercised by the test suite) but emit
:class:`DeprecationWarning` and simply delegate.  New code should use
``repro.api.Simulation`` / ``repro.api.run``.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, Mapping, Optional

from ..common.config import ProcessorConfig
from ..common.stats import StatsRegistry, arithmetic_mean
from ..trace.trace import Trace
from .pipeline import PipelineBase
from .registry_machines import create_pipeline
from .result import SimulationResult


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new}", DeprecationWarning, stacklevel=3
    )


class Processor:
    """Deprecated: one configured machine (use ``repro.api.Simulation``)."""

    def __init__(self, config: ProcessorConfig) -> None:
        self.config = config.validate()

    def run(self, trace: Trace, max_cycles: Optional[int] = None) -> SimulationResult:
        """Deprecated: simulate ``trace`` (use ``repro.api.run``)."""
        _deprecated("Processor.run()", "repro.api.run() / repro.api.Simulation.run()")
        from ..api import Simulation

        return Simulation(self.config, max_cycles=max_cycles).run(trace)

    def pipeline(self, trace: Trace, stats: Optional[StatsRegistry] = None) -> PipelineBase:
        """Build (but do not run) the pipeline — useful for step-by-step tests."""
        return create_pipeline(self.config, trace, stats)

    def run_suite(
        self,
        traces: Mapping[str, Trace],
        max_cycles: Optional[int] = None,
    ) -> Dict[str, SimulationResult]:
        """Deprecated: run a suite (use ``repro.api.Simulation.run_suite``)."""
        _deprecated("Processor.run_suite()", "repro.api.Simulation.run_suite()")
        from ..api import Simulation

        return Simulation(self.config, max_cycles=max_cycles).run_suite(traces)


def simulate(
    config: ProcessorConfig,
    trace: Trace,
    max_cycles: Optional[int] = None,
) -> SimulationResult:
    """Deprecated: run one trace on one configuration (use ``repro.api.run``)."""
    _deprecated("simulate()", "repro.api.run()")
    from ..api import Simulation

    return Simulation(config, max_cycles=max_cycles).run(trace)


def average_ipc(results: Iterable[SimulationResult]) -> float:
    """Arithmetic-mean IPC across a suite (the paper averages SPEC2000fp)."""
    return arithmetic_mean(result.ipc for result in results)
