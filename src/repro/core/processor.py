"""The user-facing simulator facade.

:class:`Processor` ties a :class:`~repro.common.config.ProcessorConfig`
to a trace and runs it to completion; :func:`simulate` is the one-call
convenience wrapper most examples and experiments use.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from ..common.config import ProcessorConfig
from ..common.stats import StatsRegistry, arithmetic_mean
from ..trace.trace import Trace
from .pipeline import PipelineBase, build_pipeline
from .result import SimulationResult


class Processor:
    """One configured machine, ready to run traces."""

    def __init__(self, config: ProcessorConfig) -> None:
        self.config = config.validate()

    def run(self, trace: Trace, max_cycles: Optional[int] = None) -> SimulationResult:
        """Simulate ``trace`` to completion on a fresh pipeline instance."""
        pipeline = self.pipeline(trace)
        return pipeline.run(max_cycles=max_cycles)

    def pipeline(self, trace: Trace, stats: Optional[StatsRegistry] = None) -> PipelineBase:
        """Build (but do not run) the pipeline — useful for step-by-step tests."""
        return build_pipeline(self.config, trace, stats)

    def run_suite(
        self,
        traces: Mapping[str, Trace],
        max_cycles: Optional[int] = None,
    ) -> Dict[str, SimulationResult]:
        """Run every trace of a suite; results are keyed by workload name."""
        return {name: self.run(trace, max_cycles=max_cycles) for name, trace in traces.items()}


def simulate(
    config: ProcessorConfig,
    trace: Trace,
    max_cycles: Optional[int] = None,
) -> SimulationResult:
    """Run one trace on one configuration and return the result."""
    return Processor(config).run(trace, max_cycles=max_cycles)


def average_ipc(results: Iterable[SimulationResult]) -> float:
    """Arithmetic-mean IPC across a suite (the paper averages SPEC2000fp)."""
    return arithmetic_mean(result.ipc for result in results)
