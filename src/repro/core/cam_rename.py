"""CAM-style register renaming with Future Free bits (paper Section 2).

The out-of-order-commit machine has no ROB, so the renamer itself carries
the information needed to (a) free physical registers when a checkpoint
commits and (b) restore the mapping when execution rolls back to a
checkpoint.  Per physical register the hardware keeps:

* the logical register it is mapped to (the CAM field),
* a **Valid** bit — this physical register holds the *current* mapping,
* a **Future Free** bit — this register was displaced by a younger
  redefinition and must be freed once the displacing window commits.

A checkpoint snapshots the Valid bits (plus the logical fields, which the
paper notes do not change while a register is live) and harvests the
accumulated Future Free bits; see :class:`RenameSnapshot`.

For simulation convenience the class also maintains the derived
logical→physical direct map, which is what the CAM lookup would return.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..common.errors import RenameError
from ..common.stats import StatsRegistry
from ..isa import registers as regs
from ..isa.instruction import DynInst
from .regfile import PhysicalRegisterFile


@dataclass(slots=True)
class RenameSnapshot:
    """State captured when a checkpoint is created.

    ``valid`` and ``mapping`` restore the architectural register mapping on
    rollback; the free list is not stored but *reconstructed* (a register
    is free iff it is neither valid in the snapshot nor reserved by an
    older, still uncommitted checkpoint's pending-free set).
    """

    valid: List[bool]
    mapping: List[int]

    def mapped_registers(self) -> Set[int]:
        """The set of physical registers that were valid at snapshot time."""
        return {phys for phys, is_valid in enumerate(self.valid) if is_valid}


class CAMRenamer:
    """The checkpointed CAM renaming mechanism of Figures 3–6."""

    __slots__ = (
        "regfile",
        "_num_regs",
        "_logical_of",
        "_valid",
        "_future_free",
        "_map",
        "_renames",
        "_checkpoint_restores",
    )

    def __init__(self, regfile: PhysicalRegisterFile, stats: StatsRegistry) -> None:
        if regfile.num_regs < regs.NUM_LOGICAL_REGS:
            raise RenameError(
                "need at least one physical register per logical register "
                f"({regs.NUM_LOGICAL_REGS}), got {regfile.num_regs}"
            )
        self.regfile = regfile
        self._num_regs = regfile.num_regs
        self._logical_of: List[Optional[int]] = [None] * self._num_regs
        self._valid: List[bool] = [False] * self._num_regs
        self._future_free: List[bool] = [False] * self._num_regs
        self._map: List[int] = []
        self._renames = stats.counter("rename.instructions")
        self._checkpoint_restores = stats.counter("rename.rollback_restores")
        self.reset()

    # -- initialisation ----------------------------------------------------------
    def reset(self) -> None:
        """Install the initial architectural mapping (all registers ready)."""
        self.regfile.reset()
        self._logical_of = [None] * self._num_regs
        self._valid = [False] * self._num_regs
        self._future_free = [False] * self._num_regs
        self._map = []
        for logical in range(regs.NUM_LOGICAL_REGS):
            phys = self.regfile.allocate()
            self._map.append(phys)
            self._logical_of[phys] = logical
            self._valid[phys] = True
        self.regfile.mark_all_ready(self._map)

    # -- queries ------------------------------------------------------------------
    def mapping(self, logical: int) -> int:
        """Physical register currently providing ``logical``."""
        return self._map[logical]

    def valid_bits(self) -> List[bool]:
        return list(self._valid)

    def future_free_bits(self) -> List[bool]:
        return list(self._future_free)

    def logical_of(self, phys: int) -> Optional[int]:
        return self._logical_of[phys]

    def can_rename(self, inst: DynInst) -> bool:
        """True if a free destination register is available (or none is needed)."""
        return inst.dest is None or self.regfile.has_free()

    # -- renaming -------------------------------------------------------------------
    def rename(self, inst: DynInst) -> Tuple[List[int], Optional[int], Optional[int]]:
        """Rename ``inst`` in place, maintaining Valid and Future Free bits."""
        phys_srcs = [self._map[src] for src in inst.srcs]
        phys_dest: Optional[int] = None
        old_phys_dest: Optional[int] = None
        if inst.dest is not None:
            phys_dest = self.regfile.allocate()
            old_phys_dest = self._map[inst.dest]
            # Displace the previous mapping: it is no longer valid and must
            # be freed when the window containing this instruction commits.
            self._valid[old_phys_dest] = False
            self._future_free[old_phys_dest] = True
            self._valid[phys_dest] = True
            self._logical_of[phys_dest] = inst.dest
            self._map[inst.dest] = phys_dest
        inst.phys_srcs = phys_srcs
        inst.phys_dest = phys_dest
        inst.old_phys_dest = old_phys_dest
        self._renames.add()
        return phys_srcs, phys_dest, old_phys_dest

    # -- squash-time undo --------------------------------------------------------------
    def undo_rename(self, inst: DynInst) -> None:
        """Reverse the renaming of a squashed instruction.

        Used by pseudo-ROB (walk-based) misprediction recovery, in reverse
        program order: the new physical register is returned to the free
        list and the displaced mapping becomes valid again.  The caller is
        responsible for removing the displaced register from any
        checkpoint's pending-free set it may have been harvested into.
        """
        if inst.phys_dest is None:
            return
        if inst.dest is None or inst.old_phys_dest is None:
            raise RenameError(f"cannot undo rename of seq={inst.seq}: missing old mapping")
        new, old = inst.phys_dest, inst.old_phys_dest
        if self._map[inst.dest] != new:
            raise RenameError(
                f"undo out of order: {regs.reg_name(inst.dest)} maps to "
                f"{self._map[inst.dest]}, expected {new}"
            )
        self._valid[new] = False
        self._future_free[new] = False
        self._logical_of[new] = None
        self.regfile.free(new)
        self._valid[old] = True
        self._future_free[old] = False
        self._logical_of[old] = inst.dest
        self._map[inst.dest] = old

    # -- checkpoint interface ----------------------------------------------------------
    def take_snapshot(self) -> RenameSnapshot:
        """Capture the Valid bits and the mapping for a new checkpoint."""
        return RenameSnapshot(valid=list(self._valid), mapping=list(self._map))

    def harvest_future_free(self) -> Set[int]:
        """Return and clear the accumulated Future Free registers.

        Called when a new checkpoint is taken: the harvested set belongs to
        the window that just closed and is freed when that window's
        checkpoint commits.
        """
        harvested = {phys for phys in range(self._num_regs) if self._future_free[phys]}
        for phys in harvested:
            self._future_free[phys] = False
        return harvested

    def free_registers(self, registers: Set[int]) -> None:
        """Free a committed window's displaced registers."""
        for phys in registers:
            if self._valid[phys]:
                raise RenameError(f"register {phys} is still valid; refusing to free it")
            self._logical_of[phys] = None
            self.regfile.free(phys)

    def restore(self, snapshot: RenameSnapshot, reserved: Set[int]) -> None:
        """Roll the mapping back to ``snapshot``.

        ``reserved`` is the union of the pending-free sets of all *older*,
        still uncommitted checkpoints: those registers hold values that an
        even older rollback might need, so they must not return to the
        free list.  Everything else that is not valid in the snapshot is
        free again (this reconstructs the Free List rather than storing it,
        see DESIGN.md).
        """
        self._valid = list(snapshot.valid)
        self._map = list(snapshot.mapping)
        self._future_free = [False] * self._num_regs
        for logical, phys in enumerate(self._map):
            self._logical_of[phys] = logical
        valid_set = snapshot.mapped_registers()
        free_regs = {
            phys
            for phys in range(self._num_regs)
            if phys not in valid_set and phys not in reserved
        }
        ready_regs = [self.regfile.is_ready(phys) for phys in range(self._num_regs)]
        self.regfile.set_free_set(free_regs)
        # Registers that survive the rollback keep the ready state they had
        # before it: producers older than the checkpoint are not squashed,
        # so a still-executing producer must stay not-ready.
        for phys in valid_set | set(reserved):
            if ready_regs[phys]:
                self.regfile.set_ready(phys)
        self._checkpoint_restores.add()

    # -- invariants (used by property-based tests) ------------------------------------------
    def check_invariants(self, reserved: Set[int] = frozenset()) -> None:
        """Raise :class:`RenameError` if the renaming state is inconsistent."""
        mapped = set()
        for logical in range(regs.NUM_LOGICAL_REGS):
            phys = self._map[logical]
            if not self._valid[phys]:
                raise RenameError(f"mapping of {regs.reg_name(logical)} points at invalid {phys}")
            if self._logical_of[phys] != logical:
                raise RenameError(
                    f"CAM field of physical {phys} is {self._logical_of[phys]}, "
                    f"expected {logical}"
                )
            if phys in mapped:
                raise RenameError(f"physical register {phys} mapped to two logical registers")
            mapped.add(phys)
        for phys in range(self._num_regs):
            states = [
                self._valid[phys],
                self._future_free[phys] or phys in reserved,
                self.regfile.is_free(phys),
            ]
            if sum(bool(s) for s in states) == 0:
                raise RenameError(f"physical register {phys} leaked (not valid/pending/free)")
            if self._valid[phys] and self.regfile.is_free(phys):
                raise RenameError(f"physical register {phys} is both valid and free")
