"""Warm-state snapshots for sampled execution.

Sampled simulation alternates functional fast-forward with detailed
windows.  The functional pass evolves long-lived microarchitectural
state — cache tags/LRU/dirty bits, the prefetcher table, the branch
predictor and BTB — and every detailed window adopts that state at its
boundary.  This module turns those boundary states into first-class,
serializable *snapshots*:

* :func:`capture_warm_state` / :func:`restore_warm_state` snapshot and
  rebuild the warm structures (each structure implements
  ``warm_state()``/``load_warm_state()``);
* :func:`checkpoint_key` derives the sha256 identity of a whole warm
  pass from ``(trace digest, sampling plan, warm-relevant parameters,
  simulator version)``;
* :func:`load_matching_checkpoint` / :func:`store_checkpoint` read and
  write keyed ``<key>.warm.gz`` files in a checkpoint directory.

The key deliberately covers only the parameters that *shape* warm state:
cache geometry, prefetcher kind/degree, perfect-memory flags, predictor
kind/sizes.  ROB/queue/checkpoint/SLIQ sizes and memory/branch latencies
change how a window executes but not what state it starts from, so an
N-machine sweep over those knobs shares one warm pass — the checkpoint
is computed once and adopted N times.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..branch import BranchTargetBuffer, build_predictor
from ..common.config import ProcessorConfig, SamplingPlan
from ..common.errors import TraceError
from ..common.stats import StatsRegistry
from ..memory.hierarchy import CacheHierarchy
from ..trace.io import CHECKPOINT_SUFFIX, WarmCheckpoint, load_checkpoint, save_checkpoint

#: Hierarchy knobs that change window *timing* but not warm contents.
_TIMING_ONLY_MEMORY_FIELDS = ("memory_latency", "memory_ports")


def warm_parameters(effective: ProcessorConfig) -> Dict[str, Any]:
    """The config parameters that determine functional warm state.

    ``effective`` must already be the machine's *effective* config
    (:meth:`PipelineBase.effective_config` applied), so variant machines
    that force hierarchy flags — perfect-l2, unbounded-rob — key on what
    they actually warm.  Cache latencies are kept: they are part of each
    level's identity in config hashing and cost nothing in sharing
    (sweeps vary ``memory_latency``, which is excluded).
    """
    memory = dataclasses.asdict(effective.memory)
    for name in _TIMING_ONLY_MEMORY_FIELDS:
        memory.pop(name, None)
    branch = {
        "kind": effective.branch.kind,
        "history_entries": effective.branch.history_entries,
        "btb_entries": effective.branch.btb_entries,
        "perfect": effective.branch.perfect,
    }
    return {"memory": memory, "branch": branch}


def checkpoint_key(
    trace_digest: str,
    plan: SamplingPlan,
    effective: ProcessorConfig,
    simulator_version: Optional[str] = None,
) -> str:
    """sha256 identity of the warm pass ``(trace, plan, params, version)``.

    Two runs share a checkpoint iff this key matches: same instruction
    sequence, same window schedule, same warm-relevant parameters, same
    simulator semantics (the package version is bumped whenever the
    functional models change).
    """
    if simulator_version is None:
        from .. import __version__ as simulator_version
    blob = json.dumps(
        {
            "trace": trace_digest,
            "plan": plan.to_dict(),
            "params": warm_parameters(effective),
            "simulator": simulator_version,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def build_warm_structures(
    effective: ProcessorConfig, stats: StatsRegistry
) -> Tuple[CacheHierarchy, Any, BranchTargetBuffer]:
    """Fresh hierarchy/predictor/BTB in the order the sampled driver uses.

    The construction order matters for statistics-registration parity
    between serial and parallel sampled runs, so both build through this
    one helper.
    """
    hierarchy = CacheHierarchy(effective.memory, stats)
    predictor = build_predictor(effective.branch, stats)
    btb = BranchTargetBuffer(effective.branch, stats)
    return hierarchy, predictor, btb


def capture_warm_state(hierarchy: CacheHierarchy, predictor, btb: BranchTargetBuffer) -> Dict[str, Any]:
    """JSON-safe snapshot of the three warm structures."""
    return {
        "hierarchy": hierarchy.warm_state(),
        "predictor": predictor.warm_state(),
        "btb": btb.warm_state(),
    }


def restore_warm_state(
    snapshot: Dict[str, Any], hierarchy: CacheHierarchy, predictor, btb: BranchTargetBuffer
) -> None:
    """Load a :func:`capture_warm_state` snapshot into fresh structures."""
    hierarchy.load_warm_state(snapshot["hierarchy"])
    state = snapshot.get("predictor")
    if state is not None:
        predictor.load_warm_state(state)
    btb.load_warm_state(snapshot["btb"])


def checkpoint_path(directory: os.PathLike, key: str) -> Path:
    """Location of the checkpoint for ``key`` inside ``directory``."""
    return Path(directory).expanduser() / f"{key}{CHECKPOINT_SUFFIX}"


def load_matching_checkpoint(directory: os.PathLike, key: str) -> Optional[WarmCheckpoint]:
    """The checkpoint for ``key``, or None on any miss.

    A missing file, a corrupt/truncated/foreign file, or a file whose
    *content* key disagrees with its name all miss (corrupt files are
    renamed aside so they cannot mask the slot) — warm state is never
    adopted from a checkpoint that does not match the requested key.
    """
    path = checkpoint_path(directory, key)
    if not path.exists():
        return None
    try:
        checkpoint = load_checkpoint(path)
    except TraceError:
        quarantined = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantined)
        except OSError:
            pass
        return None
    if checkpoint.key != key:
        return None
    return checkpoint


def store_checkpoint(directory: os.PathLike, checkpoint: WarmCheckpoint) -> Path:
    """Write ``checkpoint`` into ``directory`` under its key."""
    return save_checkpoint(checkpoint, checkpoint_path(directory, checkpoint.key))
