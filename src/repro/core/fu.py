"""Functional-unit pools (Table 1: 4 int ALUs, 2 int mul/div, 4 FP, 2 memory ports)."""

from __future__ import annotations

from typing import Dict, List

from ..common.config import FunctionalUnitConfig
from ..common.stats import StatsRegistry
from ..isa.opcodes import FU_FOR_OP, FUType, OpClass, execution_latency, is_pipelined


class FunctionalUnitPool:
    """A pool of identical units; unpipelined operations hold a unit busy."""

    __slots__ = ("name", "count", "_busy_until", "_issues", "_structural_stalls")

    def __init__(self, name: str, count: int, stats: StatsRegistry) -> None:
        self.name = name
        self.count = count
        self._busy_until: List[int] = [0] * count
        self._issues = stats.counter(f"fu.{name}.issues")
        self._structural_stalls = stats.counter(f"fu.{name}.structural_stalls")

    def try_issue(self, cycle: int, occupancy_cycles: int) -> bool:
        """Claim a unit for ``occupancy_cycles`` starting at ``cycle``.

        ``occupancy_cycles`` is 1 for fully pipelined operations and the
        full latency for unpipelined ones (the dividers).
        """
        busy = self._busy_until
        for index, until in enumerate(busy):
            if until <= cycle:
                busy[index] = cycle + occupancy_cycles
                self._issues.add()
                return True
        self._structural_stalls.add()
        return False

    def busy_units(self, cycle: int) -> int:
        """How many units are still occupied at ``cycle`` (diagnostics)."""
        return sum(1 for until in self._busy_until if until > cycle)


class ExecutionUnits:
    """All pools of the machine plus the latency lookup."""

    __slots__ = ("fu_config", "_pools")

    def __init__(
        self,
        fu_config: FunctionalUnitConfig,
        memory_ports: int,
        stats: StatsRegistry,
    ) -> None:
        fu_config.validate()
        self.fu_config = fu_config
        self._pools: Dict[FUType, FunctionalUnitPool] = {
            FUType.INT_ALU: FunctionalUnitPool("int_alu", fu_config.int_alu_count, stats),
            FUType.INT_MULDIV: FunctionalUnitPool("int_muldiv", fu_config.int_mul_count, stats),
            FUType.FP: FunctionalUnitPool("fp", fu_config.fp_count, stats),
            FUType.MEM_PORT: FunctionalUnitPool("mem_port", memory_ports, stats),
        }

    def pool_for(self, op: OpClass) -> FUType:
        return FU_FOR_OP[op]

    def latency(self, op: OpClass) -> int:
        """Execution latency of ``op`` excluding any cache/memory time."""
        return execution_latency(op, self.fu_config)

    def try_issue(self, op: OpClass, cycle: int) -> bool:
        """Reserve a unit for ``op`` issuing at ``cycle``; False on a structural hazard."""
        fu_type = FU_FOR_OP[op]
        if fu_type is FUType.NONE:
            return True
        occupancy = 1 if is_pipelined(op) else self.latency(op)
        return self._pools[fu_type].try_issue(cycle, occupancy)

    def pool(self, fu_type: FUType) -> FunctionalUnitPool:
        return self._pools[fu_type]
