"""Issue queues with event-driven wakeup and oldest-first select.

Each general-purpose queue (integer, floating point) holds dispatched
instructions until their source operands are ready.  Wakeup is modelled
with a :class:`WakeupNetwork`: when a physical register becomes ready the
waiting instructions are notified directly, so the per-cycle cost does not
depend on the queue size (important for simulating the paper's unbuildable
4096-entry baseline queues at tolerable speed).

The queue maintains its waiting population as a set alongside the
resident set, so the pipeline's "who is still blocked on operands"
queries (`waiting_residents`) and the event-driven kernel's "is anything
selectable" query (`has_ready`) never scan the full queue.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, Iterable, List, Optional, Set

from ..common.errors import StructuralHazardError
from ..common.stats import StatsRegistry
from ..isa.instruction import DynInst, InstState
from .regfile import PhysicalRegisterFile


class WakeupNetwork:
    """Maps physical registers to the instructions waiting on them."""

    __slots__ = ("_waiters",)

    def __init__(self) -> None:
        self._waiters: Dict[int, List[DynInst]] = {}

    def register(self, inst: DynInst, pending: Iterable[int]) -> None:
        """Subscribe ``inst`` to the readiness of each register in ``pending``."""
        waiters = self._waiters
        for preg in pending:
            entry = waiters.get(preg)
            if entry is None:
                waiters[preg] = [inst]
            else:
                entry.append(inst)

    def notify_ready(self, preg: int) -> List[DynInst]:
        """A register became ready; returns instructions that are now fully ready.

        Only instructions currently resident in an issue queue are
        returned; instructions parked in the SLIQ simply have their
        pending-source sets updated.
        """
        woken: List[DynInst] = []
        for inst in self._waiters.pop(preg, ()):
            pending = inst.pending_srcs
            if pending is None or preg not in pending:
                # Stale subscription: the instruction was moved to the SLIQ
                # and re-inserted (recomputing its pending set), or this is
                # a duplicate registration from an earlier residency.
                continue
            pending.discard(preg)
            if (
                not pending
                and inst.in_iq
                and inst.state is InstState.DISPATCHED
            ):
                woken.append(inst)
        return woken

    def clear(self) -> None:
        self._waiters.clear()

    def pending_registers(self) -> int:
        """Number of registers with at least one waiter (diagnostics)."""
        return len(self._waiters)


class InstructionQueue:
    """One general-purpose issue queue (wakeup + oldest-first select)."""

    __slots__ = (
        "name",
        "capacity",
        "_occupancy",
        "_residents",
        "_waiting",
        "_ready_heap",
        "_tick",
        "_inserts",
        "_issues",
        "_full_stalls",
        "_occupancy_mean",
    )

    def __init__(self, name: str, capacity: int, stats: StatsRegistry) -> None:
        if capacity <= 0:
            raise StructuralHazardError(f"{name}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._occupancy = 0
        self._residents: Set[DynInst] = set()
        self._waiting: Set[DynInst] = set()
        self._ready_heap: List[tuple] = []
        # Heap tiebreak for same-seq entries (an instruction re-pushed by
        # unpop/mark_ready): a queue-local monotonic tick, so entry order
        # never depends on object addresses.
        self._tick = count()
        self._inserts = stats.counter(f"{name}.inserts")
        self._issues = stats.counter(f"{name}.issues")
        self._full_stalls = stats.counter(f"{name}.full_stalls")
        self._occupancy_mean = stats.running_mean(f"{name}.occupancy")

    # -- capacity ---------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self._occupancy

    @property
    def is_full(self) -> bool:
        return self._occupancy >= self.capacity

    def free_entries(self) -> int:
        return self.capacity - self._occupancy

    def note_full_stall(self, cycles: int = 1) -> None:
        self._full_stalls.add(cycles)

    def sample_occupancy(self, cycles: int = 1) -> None:
        self._occupancy_mean.sample_many(self._occupancy, cycles)

    # -- insertion --------------------------------------------------------------------
    def insert(
        self,
        inst: DynInst,
        regfile: PhysicalRegisterFile,
        wakeup: WakeupNetwork,
    ) -> None:
        """Place ``inst`` in the queue and subscribe it to missing operands."""
        if self._occupancy >= self.capacity:
            raise StructuralHazardError(f"{self.name} overflow")
        is_ready = regfile.is_ready
        pending = {p for p in inst.phys_srcs if not is_ready(p)}
        inst.pending_srcs = pending
        inst.in_iq = True
        inst.iq = self
        self._occupancy += 1
        self._residents.add(inst)
        self._inserts.add()
        if pending:
            self._waiting.add(inst)
            wakeup.register(inst, pending)
        else:
            heapq.heappush(self._ready_heap, (inst.seq, next(self._tick), inst))

    def mark_ready(self, inst: DynInst) -> None:
        """Put ``inst`` into the select pool (all operands ready)."""
        self._waiting.discard(inst)
        heapq.heappush(self._ready_heap, (inst.seq, next(self._tick), inst))

    @property
    def maybe_ready(self) -> bool:
        """Cheap may-have-ready check (no pruning; stale entries count).

        The issue stage uses this as its early-exit guard; a True answer
        only means :meth:`pop_ready` is worth calling.
        """
        return bool(self._ready_heap)

    # -- selection --------------------------------------------------------------------
    def pop_ready(self) -> Optional[DynInst]:
        """Oldest ready instruction still resident in this queue, or None."""
        heap = self._ready_heap
        while heap:
            inst = heapq.heappop(heap)[2]
            if (
                inst.in_iq
                and inst.state is InstState.DISPATCHED
                and not inst.pending_srcs
            ):
                return inst
        return None

    def has_ready(self) -> bool:
        """True if :meth:`pop_ready` would return an instruction.

        Prunes the same stale heap entries ``pop_ready`` would discard,
        so calling it from the event-driven kernel leaves the queue in
        exactly the state a fruitless per-cycle select would.
        """
        heap = self._ready_heap
        while heap:
            inst = heap[0][2]
            if (
                inst.in_iq
                and inst.state is InstState.DISPATCHED
                and not inst.pending_srcs
            ):
                return True
            heapq.heappop(heap)
        return False

    def unpop(self, inst: DynInst) -> None:
        """Return an instruction taken with :meth:`pop_ready` but not issued."""
        heapq.heappush(self._ready_heap, (inst.seq, next(self._tick), inst))

    def record_issue(self) -> None:
        self._issues.add()

    # -- removal -----------------------------------------------------------------------
    def remove(self, inst: DynInst) -> None:
        """Take ``inst`` out of the queue (issued, moved to the SLIQ, or squashed)."""
        if not inst.in_iq:
            return
        inst.in_iq = False
        self._occupancy -= 1
        self._residents.discard(inst)
        self._waiting.discard(inst)
        if self._occupancy < 0:
            raise StructuralHazardError(f"{self.name}: occupancy underflow")

    def residents(self) -> List[DynInst]:
        """Snapshot of the instructions currently occupying this queue.

        Ordered by sequence number, so callers that iterate (recovery,
        probes) never observe hash-set iteration order.
        """
        return sorted(self._residents, key=lambda inst: inst.seq)

    def waiting_residents(self) -> List[DynInst]:
        """Residents that still have unready source operands, oldest first.

        Backed by a maintained set (updated on insert/wakeup/remove), so
        the query does not scan the whole queue.
        """
        return sorted(
            (
                inst
                for inst in self._waiting
                if inst.pending_srcs and inst.state is InstState.DISPATCHED
            ),
            key=lambda inst: inst.seq,
        )

    def drop_squashed(self, insts: Iterable[DynInst]) -> None:
        """Remove a batch of squashed instructions that were resident here."""
        for inst in insts:
            self.remove(inst)
