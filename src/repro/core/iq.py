"""Issue queues with event-driven wakeup and oldest-first select.

Each general-purpose queue (integer, floating point) holds dispatched
instructions until their source operands are ready.  Wakeup is modelled
with a :class:`WakeupNetwork`: when a physical register becomes ready the
waiting instructions are notified directly, so the per-cycle cost does not
depend on the queue size (important for simulating the paper's unbuildable
4096-entry baseline queues at tolerable speed).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Set

from ..common.errors import StructuralHazardError
from ..common.stats import StatsRegistry
from ..isa.instruction import DynInst, InstState
from .regfile import PhysicalRegisterFile


class WakeupNetwork:
    """Maps physical registers to the instructions waiting on them."""

    def __init__(self) -> None:
        self._waiters: Dict[int, List[DynInst]] = {}

    def register(self, inst: DynInst, pending: Iterable[int]) -> None:
        """Subscribe ``inst`` to the readiness of each register in ``pending``."""
        for preg in pending:
            self._waiters.setdefault(preg, []).append(inst)

    def notify_ready(self, preg: int) -> List[DynInst]:
        """A register became ready; returns instructions that are now fully ready.

        Only instructions currently resident in an issue queue are
        returned; instructions parked in the SLIQ simply have their
        pending-source sets updated.
        """
        woken: List[DynInst] = []
        for inst in self._waiters.pop(preg, []):
            pending: Set[int] = getattr(inst, "pending_srcs", set())
            if preg not in pending:
                # Stale subscription: the instruction was moved to the SLIQ
                # and re-inserted (recomputing its pending set), or this is
                # a duplicate registration from an earlier residency.
                continue
            pending.discard(preg)
            if (
                not pending
                and inst.in_iq
                and inst.state is InstState.DISPATCHED
            ):
                woken.append(inst)
        return woken

    def clear(self) -> None:
        self._waiters.clear()

    def pending_registers(self) -> int:
        """Number of registers with at least one waiter (diagnostics)."""
        return len(self._waiters)


class InstructionQueue:
    """One general-purpose issue queue (wakeup + oldest-first select)."""

    def __init__(self, name: str, capacity: int, stats: StatsRegistry) -> None:
        if capacity <= 0:
            raise StructuralHazardError(f"{name}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._occupancy = 0
        self._residents: Set[DynInst] = set()
        self._ready_heap: List[tuple] = []
        self._inserts = stats.counter(f"{name}.inserts")
        self._issues = stats.counter(f"{name}.issues")
        self._full_stalls = stats.counter(f"{name}.full_stalls")
        self._occupancy_mean = stats.running_mean(f"{name}.occupancy")

    # -- capacity ---------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self._occupancy

    @property
    def is_full(self) -> bool:
        return self._occupancy >= self.capacity

    def free_entries(self) -> int:
        return self.capacity - self._occupancy

    def note_full_stall(self) -> None:
        self._full_stalls.add()

    def sample_occupancy(self) -> None:
        self._occupancy_mean.sample(self._occupancy)

    # -- insertion --------------------------------------------------------------------
    def insert(
        self,
        inst: DynInst,
        regfile: PhysicalRegisterFile,
        wakeup: WakeupNetwork,
    ) -> None:
        """Place ``inst`` in the queue and subscribe it to missing operands."""
        if self.is_full:
            raise StructuralHazardError(f"{self.name} overflow")
        pending = {p for p in inst.phys_srcs if not regfile.is_ready(p)}
        inst.pending_srcs = pending  # type: ignore[attr-defined]
        inst.in_iq = True
        inst.iq = self  # type: ignore[attr-defined]
        self._occupancy += 1
        self._residents.add(inst)
        self._inserts.add()
        if pending:
            wakeup.register(inst, pending)
        else:
            self.mark_ready(inst)

    def mark_ready(self, inst: DynInst) -> None:
        """Put ``inst`` into the select pool (all operands ready)."""
        heapq.heappush(self._ready_heap, (inst.seq, id(inst), inst))

    # -- selection --------------------------------------------------------------------
    def pop_ready(self) -> Optional[DynInst]:
        """Oldest ready instruction still resident in this queue, or None."""
        while self._ready_heap:
            _, _, inst = heapq.heappop(self._ready_heap)
            if (
                inst.in_iq
                and inst.state is InstState.DISPATCHED
                and not getattr(inst, "pending_srcs", None)
            ):
                return inst
        return None

    def unpop(self, inst: DynInst) -> None:
        """Return an instruction taken with :meth:`pop_ready` but not issued."""
        heapq.heappush(self._ready_heap, (inst.seq, id(inst), inst))

    def record_issue(self) -> None:
        self._issues.add()

    # -- removal -----------------------------------------------------------------------
    def remove(self, inst: DynInst) -> None:
        """Take ``inst`` out of the queue (issued, moved to the SLIQ, or squashed)."""
        if not inst.in_iq:
            return
        inst.in_iq = False
        self._occupancy -= 1
        self._residents.discard(inst)
        if self._occupancy < 0:
            raise StructuralHazardError(f"{self.name}: occupancy underflow")

    def residents(self) -> List[DynInst]:
        """Snapshot of the instructions currently occupying this queue."""
        return list(self._residents)

    def waiting_residents(self) -> List[DynInst]:
        """Residents that still have unready source operands."""
        return [
            inst
            for inst in self._residents
            if getattr(inst, "pending_srcs", None) and inst.state is InstState.DISPATCHED
        ]

    def drop_squashed(self, insts: Iterable[DynInst]) -> None:
        """Remove a batch of squashed instructions that were resident here."""
        for inst in insts:
            self.remove(inst)
