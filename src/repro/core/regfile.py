"""Physical register file, free list, ready bits and late allocation.

The timing simulator never stores data values; a "physical register" is
an identifier with two properties: whether it is *free* (available to the
renamer) and whether it is *ready* (its producer has executed).  The same
class also models the *virtual tag* pool of the Figure 14 late-allocation
study — in that mode the identifiers handed out at rename are tags and a
separate :class:`PhysicalPool` counts how many real registers are holding
live values.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Set

from ..common.errors import RenameError
from ..common.stats import StatsRegistry


class PhysicalRegisterFile:
    """Free list plus ready (scoreboard) bits over ``num_regs`` identifiers."""

    __slots__ = (
        "num_regs",
        "name",
        "_free",
        "_is_free",
        "_ready",
        "_allocations",
        "_frees",
        "_peak",
    )

    def __init__(self, num_regs: int, stats: StatsRegistry, name: str = "prf") -> None:
        if num_regs <= 0:
            raise RenameError("the register file needs at least one register")
        self.num_regs = num_regs
        self.name = name
        self._free: Deque[int] = deque(range(num_regs))
        self._is_free: List[bool] = [True] * num_regs
        self._ready: List[bool] = [False] * num_regs
        self._allocations = stats.counter(f"{name}.allocations")
        self._frees = stats.counter(f"{name}.frees")
        self._peak = stats.counter(f"{name}.peak_in_use", kind="peak")

    # -- free-list management -------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def in_use_count(self) -> int:
        return self.num_regs - len(self._free)

    def has_free(self, count: int = 1) -> bool:
        return len(self._free) >= count

    def allocate(self) -> int:
        """Take one register off the free list; it starts not-ready."""
        if not self._free:
            raise RenameError(f"{self.name}: no free registers")
        reg = self._free.popleft()
        self._is_free[reg] = False
        self._ready[reg] = False
        self._allocations.add()
        self._peak.peak(self.in_use_count)
        return reg

    def free(self, reg: int) -> None:
        """Return ``reg`` to the free list."""
        self._check(reg)
        if self._is_free[reg]:
            raise RenameError(f"{self.name}: double free of register {reg}")
        self._is_free[reg] = True
        self._ready[reg] = False
        self._free.append(reg)
        self._frees.add()

    def is_free(self, reg: int) -> bool:
        self._check(reg)
        return self._is_free[reg]

    def set_free_set(self, free_regs: Iterable[int]) -> None:
        """Overwrite the free list (used by checkpoint rollback reconstruction)."""
        free_set = set(free_regs)
        for reg in free_set:
            self._check(reg)
        self._free = deque(sorted(free_set))
        for reg in range(self.num_regs):
            self._is_free[reg] = reg in free_set
            if reg in free_set:
                self._ready[reg] = False

    def free_set(self) -> Set[int]:
        """The current free list as a set (for snapshots and tests)."""
        return set(self._free)

    # -- ready (scoreboard) bits ---------------------------------------------------
    def set_ready(self, reg: int) -> None:
        self._check(reg)
        self._ready[reg] = True

    def clear_ready(self, reg: int) -> None:
        self._check(reg)
        self._ready[reg] = False

    def is_ready(self, reg: int) -> bool:
        self._check(reg)
        return self._ready[reg]

    def mark_all_ready(self, regs: Iterable[int]) -> None:
        """Mark several registers ready (used for the initial architectural map)."""
        for reg in regs:
            self.set_ready(reg)

    # -- helpers -------------------------------------------------------------------
    def _check(self, reg: int) -> None:
        if not 0 <= reg < self.num_regs:
            raise RenameError(f"{self.name}: register id {reg} out of range")

    def reset(self) -> None:
        """Return every register to the free list and clear ready bits."""
        self._free = deque(range(self.num_regs))
        self._is_free = [True] * self.num_regs
        self._ready = [False] * self.num_regs


class PhysicalPool:
    """Counts live physical registers under late (virtual-tag) allocation.

    In the Figure 14 model, rename hands out virtual tags and the real
    register is claimed only when the producer writes back.  This class is
    that claim counter: :meth:`try_claim` at write-back, :meth:`release`
    when the value dies (its redefiner's checkpoint commits).
    """

    __slots__ = ("capacity", "_claimed", "_stall_cycles", "_peak")

    def __init__(self, capacity: int, stats: StatsRegistry, initially_claimed: int = 0) -> None:
        if capacity <= 0:
            raise RenameError("physical pool capacity must be positive")
        if initially_claimed > capacity:
            raise RenameError("cannot pre-claim more registers than the pool holds")
        self.capacity = capacity
        self._claimed = initially_claimed
        self._stall_cycles = stats.counter("prf.late_alloc_stalls")
        self._peak = stats.counter("prf.late_alloc_peak", kind="peak")
        self._peak.peak(initially_claimed)

    @property
    def claimed(self) -> int:
        return self._claimed

    @property
    def available(self) -> int:
        return self.capacity - self._claimed

    def try_claim(self) -> bool:
        """Claim one register; False (and a stall statistic) if none is free."""
        if self._claimed >= self.capacity:
            self._stall_cycles.add()
            return False
        self._claimed += 1
        self._peak.peak(self._claimed)
        return True

    def force_claim(self) -> None:
        """Claim a register even when the pool is exhausted.

        Used only to guarantee forward progress for the oldest window:
        real late-allocation designs reserve registers for the oldest
        (non-speculative) instructions for exactly this reason.  The
        transient overshoot is recorded in the peak statistic.
        """
        self._claimed += 1
        self._peak.peak(self._claimed)

    def release(self, count: int = 1) -> None:
        if count < 0 or count > self._claimed:
            raise RenameError(
                f"cannot release {count} registers, only {self._claimed} are claimed"
            )
        self._claimed -= count
