"""Simulation results: the numbers every experiment consumes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..common.config import ProcessorConfig
from ..common.stats import StatsRegistry, ratio


def _restore_int_keys(value: object) -> object:
    """Undo JSON's stringification of integer dict keys, recursively.

    Stats blobs key distribution weights and histogram buckets by int;
    after a JSON round trip those keys come back as digit strings.
    Numeric-looking string keys are therefore assumed to have been ints:
    the shipped machines never label buckets with digit strings, and
    custom stats that did would see those labels coerced on a cache load.
    """
    if isinstance(value, dict):
        return {
            int(key)
            if isinstance(key, str)
            and (key.isdigit() or (key.startswith("-") and key[1:].isdigit()))
            else key: _restore_int_keys(item)
            for key, item in value.items()
        }
    return value


@dataclass(slots=True)
class SimulationResult:
    """Summary of one simulation run (one config × one trace).

    For a **sampled** run (``sampled=True``) the scalar fields cover the
    *measured* portion only: ``cycles`` and ``committed_instructions``
    sum over the detailed measurement windows, so :attr:`ipc` is the
    sampled IPC estimator (the instruction-weighted ratio estimator),
    ``windows`` records each window's position and per-window IPC, and
    ``ipc_ci95`` is the half-width of the 95% confidence interval on the
    extrapolated IPC.  ``stats`` covers detailed execution (warmup
    included); fast-forwarded instructions only appear under the
    ``sampling.*`` counters.
    """

    config_name: str
    mode: str
    workload: str
    cycles: int
    committed_instructions: int
    fetched_instructions: int
    stats: Dict[str, object] = field(default_factory=dict)
    #: True when this result was extrapolated from detailed sample windows.
    sampled: bool = False
    #: Per-window records: {start, instructions, cycles, ipc}.
    windows: List[Dict[str, object]] = field(default_factory=list)
    #: Half-width of the 95% CI on :attr:`ipc` (0.0 for exact runs).
    ipc_ci95: float = 0.0

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle — the paper's figure of merit.

        For sampled runs this is the extrapolated estimate; the true IPC
        lies within :attr:`ipc_interval` with ~95% confidence (assuming
        window IPCs are identically distributed — see the architecture
        docs for when that assumption breaks).
        """
        return ratio(self.committed_instructions, self.cycles)

    @property
    def ipc_interval(self) -> Tuple[float, float]:
        """(low, high) 95% confidence bounds on :attr:`ipc`."""
        return (max(0.0, self.ipc - self.ipc_ci95), self.ipc + self.ipc_ci95)

    @property
    def replay_overhead(self) -> float:
        """Fetched / committed: > 1 means rollback re-execution happened."""
        return ratio(self.fetched_instructions, self.committed_instructions)

    # -- common derived metrics -------------------------------------------------
    def stat(self, name: str, default: float = 0.0) -> float:
        value = self.stats.get(name, default)
        return float(value) if isinstance(value, (int, float)) else default

    @property
    def l2_miss_loads(self) -> float:
        return self.stat("mem.l2_miss_loads")

    @property
    def l2_load_miss_fraction(self) -> float:
        return ratio(self.stat("mem.l2_miss_loads"), self.stat("mem.loads"))

    @property
    def branch_accuracy(self) -> float:
        predictions = self.stat("branch.predictions")
        if not predictions:
            return 1.0
        return 1.0 - self.stat("branch.mispredictions") / predictions

    @property
    def mean_in_flight(self) -> float:
        return self.stat("occupancy.in_flight.mean")

    @property
    def mean_live(self) -> float:
        return self.stat("occupancy.live.mean")

    @property
    def mean_live_fp_long(self) -> float:
        return self.stat("occupancy.live_fp_long.mean")

    @property
    def mean_live_fp_short(self) -> float:
        return self.stat("occupancy.live_fp_short.mean")

    @property
    def checkpoints_created(self) -> float:
        return self.stat("checkpoint.created")

    @property
    def checkpoint_rollbacks(self) -> float:
        return self.stat("checkpoint.rollbacks")

    def pseudo_rob_breakdown(self) -> Dict[str, float]:
        """Fractions of each retirement class (Figure 12)."""
        histogram = self.stats.get("pseudo_rob.retire_class", {})
        if not isinstance(histogram, dict):
            return {}
        total = sum(histogram.values())
        if not total:
            return {}
        return {str(key): value / total for key, value in histogram.items()}

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view, round-trippable via :meth:`from_dict`.

        JSON stringifies the integer keys inside nested stats blobs
        (distribution weights, histogram buckets); :meth:`from_dict`
        restores them, so a cached result is bit-identical to a freshly
        simulated one.  The sampling fields are only emitted for sampled
        runs, keeping exact-run cache files byte-identical to earlier
        releases.
        """
        data: Dict[str, object] = {
            "config_name": self.config_name,
            "mode": self.mode,
            "workload": self.workload,
            "cycles": self.cycles,
            "committed_instructions": self.committed_instructions,
            "fetched_instructions": self.fetched_instructions,
            "stats": self.stats,
        }
        if self.sampled:
            data["sampled"] = True
            data["windows"] = self.windows
            data["ipc_ci95"] = self.ipc_ci95
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. a cache file)."""
        return cls(
            config_name=str(data["config_name"]),
            mode=str(data["mode"]),
            workload=str(data["workload"]),
            cycles=int(data["cycles"]),  # type: ignore[arg-type]
            committed_instructions=int(data["committed_instructions"]),  # type: ignore[arg-type]
            fetched_instructions=int(data["fetched_instructions"]),  # type: ignore[arg-type]
            stats=_restore_int_keys(dict(data.get("stats") or {})),  # type: ignore[arg-type]
            sampled=bool(data.get("sampled", False)),
            windows=[dict(window) for window in data.get("windows") or []],  # type: ignore[union-attr]
            ipc_ci95=float(data.get("ipc_ci95", 0.0) or 0.0),  # type: ignore[arg-type]
        )

    def summary_row(self) -> Dict[str, object]:
        """Flat row used by the experiment report tables."""
        return {
            "config": self.config_name,
            "mode": self.mode,
            "workload": self.workload,
            "cycles": self.cycles,
            "instructions": self.committed_instructions,
            "ipc": round(self.ipc, 4),
            "in_flight": round(self.mean_in_flight, 1),
            "branch_accuracy": round(self.branch_accuracy, 4),
            "l2_load_miss_fraction": round(self.l2_load_miss_fraction, 4),
        }


def build_result(
    config: ProcessorConfig,
    workload: str,
    cycles: int,
    committed: int,
    fetched: int,
    stats: StatsRegistry,
) -> SimulationResult:
    """Assemble a :class:`SimulationResult` from a finished pipeline."""
    return SimulationResult(
        config_name=config.name or config.mode,
        mode=config.mode,
        workload=workload,
        cycles=cycles,
        committed_instructions=committed,
        fetched_instructions=fetched,
        stats=stats.snapshot(),
    )
