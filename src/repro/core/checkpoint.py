"""Checkpoints, the checkpoint table and checkpoint-taking policies.

This module is the heart of the paper's Out-of-Order Commit mechanism.
Instructions are associated with the youngest checkpoint at the time they
are renamed; each checkpoint counts its pending (not yet executed)
instructions and commits — in checkpoint order — once that count reaches
zero.  Committing a checkpoint drains its stores to memory and frees the
physical registers displaced during its window (the harvested Future Free
bits).  Rolling back to a checkpoint discards every younger instruction
and restores the rename snapshot taken when the checkpoint was created.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Set

from ..common.config import CheckpointConfig
from ..common.errors import CheckpointError
from ..common.stats import StatsRegistry
from ..isa.instruction import DynInst
from .cam_rename import RenameSnapshot


class Checkpoint:
    """One entry of the checkpoint table."""

    __slots__ = (
        "uid",
        "resume_index",
        "resume_seq",
        "snapshot",
        "pending_count",
        "instruction_count",
        "store_count",
        "to_free",
        "stores",
        "instructions",
        "closed",
        "created_cycle",
        "history",
    )

    def __init__(
        self,
        uid: int,
        resume_index: int,
        resume_seq: int,
        snapshot: RenameSnapshot,
        created_cycle: int,
        history: Optional[int] = None,
    ) -> None:
        self.uid = uid
        self.resume_index = resume_index
        self.resume_seq = resume_seq
        self.snapshot = snapshot
        #: Branch-history register as of fetching the checkpointed
        #: instruction; restored on rollback so re-execution re-predicts
        #: under the state it was originally fetched with.
        self.history = history
        self.pending_count = 0
        self.instruction_count = 0
        self.store_count = 0
        self.to_free: Set[int] = set()
        self.stores: List[DynInst] = []
        self.instructions: List[DynInst] = []
        self.closed = False
        self.created_cycle = created_cycle

    # -- association ---------------------------------------------------------
    def associate(self, inst: DynInst) -> None:
        """Attach a newly dispatched instruction to this (youngest) checkpoint."""
        if self.closed:
            raise CheckpointError(f"cannot associate with closed checkpoint {self.uid}")
        inst.checkpoint_id = self.uid
        self.pending_count += 1
        self.instruction_count += 1
        self.instructions.append(inst)
        if inst.is_store:
            self.store_count += 1
            self.stores.append(inst)

    def instruction_finished(self) -> None:
        """An associated instruction completed execution."""
        if self.pending_count <= 0:
            raise CheckpointError(f"pending count underflow on checkpoint {self.uid}")
        self.pending_count -= 1

    def disassociate(self, inst: DynInst) -> None:
        """Detach a squashed instruction from this window (walk-based recovery)."""
        if inst not in self.instructions:
            return
        self.instructions.remove(inst)
        self.instruction_count -= 1
        if inst.complete_cycle is None:
            # The instruction had not finished, so it was still pending.
            if self.pending_count <= 0:
                raise CheckpointError(
                    f"pending count underflow while disassociating from checkpoint {self.uid}"
                )
            self.pending_count -= 1
        if inst.is_store:
            self.store_count -= 1
            if inst in self.stores:
                self.stores.remove(inst)

    @property
    def ready_to_commit(self) -> bool:
        """All associated instructions have executed."""
        return self.pending_count == 0

    def reset_window(self) -> None:
        """Clear the window after a rollback *to* this checkpoint.

        All associated instructions were squashed and will be re-fetched,
        so counters, pending frees and buffered stores start over.
        """
        self.pending_count = 0
        self.instruction_count = 0
        self.store_count = 0
        self.to_free.clear()
        self.stores.clear()
        self.instructions.clear()
        self.closed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Checkpoint(uid={self.uid}, resume={self.resume_index}, "
            f"pending={self.pending_count}/{self.instruction_count})"
        )


class CheckpointTable:
    """A small, in-order table of checkpoints (8 entries in the paper)."""

    __slots__ = (
        "capacity",
        "_entries",
        "_next_uid",
        "_created",
        "_committed",
        "_rollbacks",
        "_full_stalls",
        "_occupancy_samples",
    )

    def __init__(self, capacity: int, stats: StatsRegistry) -> None:
        if capacity <= 0:
            raise CheckpointError("checkpoint table capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[Checkpoint] = deque()
        self._next_uid = 0
        self._created = stats.counter("checkpoint.created")
        self._committed = stats.counter("checkpoint.committed")
        self._rollbacks = stats.counter("checkpoint.rollbacks")
        self._full_stalls = stats.counter("checkpoint.full_stalls")
        self._occupancy_samples = stats.running_mean("checkpoint.occupancy")

    # -- capacity -------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def note_full_stall(self, cycles: int = 1) -> None:
        self._full_stalls.add(cycles)

    def sample_occupancy(self, cycles: int = 1) -> None:
        self._occupancy_samples.sample_many(len(self._entries), cycles)

    # -- access ------------------------------------------------------------------
    def oldest(self) -> Optional[Checkpoint]:
        return self._entries[0] if self._entries else None

    def youngest(self) -> Optional[Checkpoint]:
        return self._entries[-1] if self._entries else None

    def find(self, uid: int) -> Optional[Checkpoint]:
        for checkpoint in self._entries:
            if checkpoint.uid == uid:
                return checkpoint
        return None

    def __iter__(self):
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # -- lifecycle ------------------------------------------------------------------
    def create(
        self,
        resume_index: int,
        resume_seq: int,
        snapshot: RenameSnapshot,
        harvested_future_free: Set[int],
        cycle: int,
        history: Optional[int] = None,
    ) -> Checkpoint:
        """Open a new (youngest) checkpoint.

        ``harvested_future_free`` is the set of registers displaced during
        the window that is being closed; it is attached to the previously
        youngest checkpoint, which owns that window.
        """
        if self.is_full:
            raise CheckpointError("checkpoint table overflow")
        previous = self.youngest()
        if previous is not None:
            previous.closed = True
            previous.to_free |= harvested_future_free
        elif harvested_future_free:
            raise CheckpointError("future-free registers harvested with no open checkpoint")
        checkpoint = Checkpoint(
            self._next_uid, resume_index, resume_seq, snapshot, cycle, history
        )
        self._next_uid += 1
        self._entries.append(checkpoint)
        self._created.add()
        return checkpoint

    def pop_oldest(self) -> Checkpoint:
        """Remove the oldest checkpoint after it committed."""
        if not self._entries:
            raise CheckpointError("pop from an empty checkpoint table")
        self._committed.add()
        return self._entries.popleft()

    def discard_younger_than(self, checkpoint: Checkpoint) -> List[Checkpoint]:
        """Drop every checkpoint younger than ``checkpoint`` (rollback)."""
        if checkpoint not in self._entries:
            raise CheckpointError(f"checkpoint {checkpoint.uid} is not in the table")
        discarded: List[Checkpoint] = []
        while self._entries and self._entries[-1] is not checkpoint:
            discarded.append(self._entries.pop())
        self._rollbacks.add()
        return discarded

    def discard_younger_than_seq(self, seq: int) -> List[Checkpoint]:
        """Drop checkpoints whose whole window is younger than ``seq``.

        Used by pseudo-ROB (walk-based) misprediction recovery: checkpoints
        created after the mispredicted branch are discarded entirely, the
        branch's own checkpoint stays open and becomes the youngest again.
        """
        discarded: List[Checkpoint] = []
        while self._entries and self._entries[-1].resume_seq > seq:
            discarded.append(self._entries.pop())
        if discarded:
            youngest = self.youngest()
            if youngest is not None:
                youngest.closed = False
        return discarded

    def remove_from_pending_free(self, register: int) -> None:
        """Drop ``register`` from every window's pending-free set (undo support)."""
        for checkpoint in self._entries:
            checkpoint.to_free.discard(register)

    def reserved_registers(self, up_to: Optional[Checkpoint] = None) -> Set[int]:
        """Union of pending-free registers of checkpoints older than ``up_to``.

        These registers hold values that a rollback to one of those older
        checkpoints could still need, so a rollback to ``up_to`` must not
        put them back on the free list.
        """
        reserved: Set[int] = set()
        for checkpoint in self._entries:
            if up_to is not None and checkpoint is up_to:
                break
            reserved |= checkpoint.to_free
        return reserved


class CheckpointPolicy:
    """Decides where checkpoints are taken (paper Section 2, "Taking Checkpoints").

    The paper's heuristic (policy ``"paper"``): take a checkpoint at the
    first branch after 64 instructions, unconditionally after 512
    instructions, or after 64 stores.  The alternative policies are the
    ablations promised as future work in the paper.
    """

    __slots__ = ("config", "_since_last", "_stores_since_last")

    def __init__(self, config: CheckpointConfig) -> None:
        config.validate()
        self.config = config
        self._since_last = 0
        self._stores_since_last = 0

    def reset(self) -> None:
        """Restart counting (after a rollback or a machine reset)."""
        self._since_last = 0
        self._stores_since_last = 0

    @property
    def instructions_since_last(self) -> int:
        return self._since_last

    @property
    def stores_since_last(self) -> int:
        return self._stores_since_last

    def should_checkpoint(self, inst: DynInst) -> bool:
        """True if a checkpoint must be taken *before* dispatching ``inst``."""
        policy = self.config.policy
        if policy == "paper":
            if inst.is_branch and self._since_last >= self.config.branch_threshold:
                return True
            if self._since_last >= self.config.instruction_threshold:
                return True
            if self._stores_since_last >= self.config.store_threshold:
                return True
            return False
        if policy == "every_n":
            return self._since_last >= self.config.branch_threshold
        if policy == "branch_only":
            if inst.is_branch and self._since_last >= self.config.branch_threshold:
                return True
            return self._since_last >= self.config.instruction_threshold
        if policy == "store_only":
            if inst.is_store and self._stores_since_last >= self.config.store_threshold:
                return True
            return self._since_last >= self.config.instruction_threshold
        raise CheckpointError(f"unknown checkpoint policy {policy!r}")

    def account(self, inst: DynInst) -> None:
        """Record that ``inst`` was dispatched into the current window."""
        self._since_last += 1
        if inst.is_store:
            self._stores_since_last += 1

    def checkpoint_taken(self) -> None:
        """A new checkpoint was created: the window counters start over."""
        self.reset()
