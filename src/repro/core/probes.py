"""The probe/observer API: watch a pipeline without touching its timing.

A :class:`Probe` is attached to a pipeline (via ``repro.api.Simulation``,
:func:`repro.core.registry_machines.create_pipeline`, or
``PipelineBase.attach_probe``) and receives events as the machine runs:

``on_attach(pipeline)``
    Once, when the probe is bound to a freshly built pipeline.  This is
    where a probe registers its statistics and initialises state.
``on_cycle(pipeline)``
    Once per simulated cycle, after every stage has run.
``on_dispatch(pipeline, inst)``
    An instruction entered the window (renamed + queued).
``on_issue(pipeline, inst)``
    An instruction left an issue queue for a functional unit.
``on_complete(pipeline, inst)``
    An instruction wrote back (its result became available).
``on_commit(pipeline, inst)``
    An instruction retired architecturally (ROB head or checkpoint
    commit, depending on the machine).
``on_squash(pipeline, inst)``
    An instruction was discarded by misprediction/exception recovery.
    Fired *before* the instruction's bookkeeping is torn down, so its
    ``dispatch_cycle`` / ``issue_cycle`` fields still describe the state
    it died in.
``on_checkpoint(pipeline, checkpoint)``
    A machine with a checkpoint table opened a new checkpoint.

Probes are pure observers: the simulated machine never reads anything
back from them, so attaching any combination of probes cannot change
cycles, IPC, or any functional statistic.  The pipeline binds only the
hooks a probe actually overrides, and each emission site is guarded by
an emptiness check — with no probes attached the per-event cost is a
single falsy test (the "no-probe fast path" guarded by
``benchmarks/test_bench_probe_overhead.py``).

The occupancy/liveness accounting behind Figures 7 and 11 is itself a
probe (:class:`OccupancyProbe`) that pipelines attach by default, so a
default-constructed machine produces exactly the statistics it always
has.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from ..isa.instruction import DynInst
from ..isa.opcodes import is_fp


class Probe:
    """Base observer; subclass and override the events you care about."""

    def on_attach(self, pipeline) -> None:
        """Bound to ``pipeline``; register stats / initialise state here."""

    def on_cycle(self, pipeline) -> None:
        """One simulated cycle finished.

        A probe that overrides ``on_cycle`` forces the simulation kernel
        back to per-cycle stepping — *unless* it also overrides
        :meth:`on_idle_cycles`, which lets the event-driven kernel keep
        skipping idle spans and hand them to the probe in bulk.
        """

    def on_idle_cycles(self, pipeline, cycles: int) -> None:
        """The event-driven kernel skipped ``cycles`` consecutive idle cycles.

        During an idle span no architectural state changes, so a
        sampling probe can integrate its current values with weight
        ``cycles`` and remain bit-identical to per-cycle stepping (see
        :class:`OccupancyProbe`).  Overriding this alongside
        ``on_cycle`` declares the probe skip-aware; ``on_cycle`` still
        fires for every cycle the kernel actually steps.
        """

    def on_dispatch(self, pipeline, inst: DynInst) -> None:
        """``inst`` entered the window."""

    def on_issue(self, pipeline, inst: DynInst) -> None:
        """``inst`` left its issue queue for execution."""

    def on_complete(self, pipeline, inst: DynInst) -> None:
        """``inst`` wrote back."""

    def on_commit(self, pipeline, inst: DynInst) -> None:
        """``inst`` retired architecturally."""

    def on_squash(self, pipeline, inst: DynInst) -> None:
        """``inst`` is about to be discarded by recovery."""

    def on_checkpoint(self, pipeline, checkpoint) -> None:
        """A new checkpoint was opened."""


#: Event names a pipeline dispatches (``on_attach`` is bind-time only).
PROBE_EVENTS = (
    "on_cycle",
    "on_dispatch",
    "on_issue",
    "on_complete",
    "on_commit",
    "on_squash",
    "on_checkpoint",
)


def hook_for(probe: Probe, event: str) -> Optional[Callable]:
    """The callable to invoke for ``event``, or None if not overridden.

    Only hooks a probe actually implements are bound, so a probe that
    watches one event costs nothing on the other six.  Instance
    attributes (e.g. :class:`CallbackProbe`) shadow class methods.
    """
    if event in getattr(probe, "__dict__", ()):
        fn = probe.__dict__[event]
        return fn if callable(fn) else None
    fn = getattr(probe, event, None)
    if fn is None or not callable(fn):
        return None
    if getattr(type(probe), event, None) is getattr(Probe, event, None):
        return None  # inherited no-op
    return fn


class CallbackProbe(Probe):
    """Adapter turning plain callables into a probe.

    Example::

        probe = CallbackProbe(on_commit=lambda pipe, inst: commits.append(inst.seq))
    """

    def __init__(self, **callbacks: Callable) -> None:
        unknown = sorted(set(callbacks) - set(PROBE_EVENTS) - {"on_attach", "on_idle_cycles"})
        if unknown:
            raise TypeError(f"unknown probe events {unknown}; valid: {sorted(PROBE_EVENTS)}")
        for event, fn in callbacks.items():
            setattr(self, event, fn)


class OccupancyProbe(Probe):
    """Window occupancy and liveness accounting (Figures 7 and 11).

    Tracks how many instructions are in flight, how many are *live*
    (dispatched but not yet issued), and splits the live FP population
    into blocked-behind-a-long-latency-load vs. short chains.  Attached
    by default to every pipeline; its statistics
    (``occupancy.in_flight``, ``occupancy.live`` and friends) feed
    :class:`~repro.core.result.SimulationResult.mean_in_flight` and the
    occupancy percentile analysis.
    """

    def on_attach(self, pipeline) -> None:
        stats = pipeline.stats
        self.in_flight = 0
        self.live = 0
        self.live_fp_long = 0
        self.live_fp_short = 0
        self.long_pregs: Set[int] = set()
        self._in_flight_mean = stats.running_mean("occupancy.in_flight")
        self._live_mean = stats.running_mean("occupancy.live")
        self._live_fp_long_mean = stats.running_mean("occupancy.live_fp_long")
        self._live_fp_short_mean = stats.running_mean("occupancy.live_fp_short")
        self._in_flight_dist = stats.distribution("occupancy.in_flight_dist")
        self._live_dist = stats.distribution("occupancy.live_dist")
        # The deadlock report quotes the in-flight count when available.
        pipeline.occupancy = self

    def on_dispatch(self, pipeline, inst: DynInst) -> None:
        self.in_flight += 1
        self.live += 1
        long_pregs = self.long_pregs
        blocked_long = any(p in long_pregs for p in inst.phys_srcs)
        if blocked_long and inst.phys_dest is not None:
            long_pregs.add(inst.phys_dest)
        live_class = None
        if is_fp(inst.op):
            live_class = "fp_long" if blocked_long else "fp_short"
            if blocked_long:
                self.live_fp_long += 1
            else:
                self.live_fp_short += 1
        inst.live_class = live_class

    def _leave_live(self, inst: DynInst) -> None:
        self.live -= 1
        live_class = inst.live_class
        if live_class == "fp_long":
            self.live_fp_long -= 1
        elif live_class == "fp_short":
            self.live_fp_short -= 1
        inst.live_class = None

    def on_issue(self, pipeline, inst: DynInst) -> None:
        self._leave_live(inst)
        # A load that just discovered an L2 miss poisons its destination:
        # consumers dispatched from here on count as blocked-long.
        if inst.l2_miss and inst.phys_dest is not None:
            self.long_pregs.add(inst.phys_dest)

    def on_complete(self, pipeline, inst: DynInst) -> None:
        if inst.phys_dest is not None:
            self.long_pregs.discard(inst.phys_dest)

    def on_commit(self, pipeline, inst: DynInst) -> None:
        self.in_flight -= 1

    def on_squash(self, pipeline, inst: DynInst) -> None:
        was_dispatched = inst.dispatch_cycle is not None
        if was_dispatched and inst.issue_cycle is None:
            self._leave_live(inst)
        if was_dispatched:
            self.in_flight -= 1
        if inst.phys_dest is not None:
            self.long_pregs.discard(inst.phys_dest)

    def on_cycle(self, pipeline) -> None:
        self._in_flight_mean.sample(self.in_flight)
        self._live_mean.sample(self.live)
        self._live_fp_long_mean.sample(self.live_fp_long)
        self._live_fp_short_mean.sample(self.live_fp_short)
        self._in_flight_dist.sample(self.in_flight)
        self._live_dist.sample(self.live)

    def on_idle_cycles(self, pipeline, cycles: int) -> None:
        # Nothing enters or leaves the window during an idle span, so
        # the per-cycle samples are the current values repeated
        # ``cycles`` times; the weighted forms accumulate identically.
        self._in_flight_mean.sample_many(self.in_flight, cycles)
        self._live_mean.sample_many(self.live, cycles)
        self._live_fp_long_mean.sample_many(self.live_fp_long, cycles)
        self._live_fp_short_mean.sample_many(self.live_fp_short, cycles)
        self._in_flight_dist.sample(self.in_flight, cycles)
        self._live_dist.sample(self.live, cycles)


def default_probes() -> List[Probe]:
    """The probes every pipeline attaches unless told otherwise."""
    return [OccupancyProbe()]
