"""The pseudo-ROB: a FIFO that delays the long-latency classification.

Instructions enter the pseudo-ROB at dispatch and leave it strictly in
order when it is full and room is needed.  Leaving the pseudo-ROB is *not*
commit (the checkpoints handle that); it is merely the moment the machine
decides whether the instruction is short-latency (keep it in its issue
queue), already finished, a long-latency load (a new dependence root), or
dependent on a long-latency load (move it to the SLIQ).

The pseudo-ROB also gives cheap branch-misprediction recovery: while a
branch is still resident here, a misprediction does not need to unroll to
a checkpoint.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..common.errors import StructuralHazardError
from ..common.stats import StatsRegistry
from ..isa.instruction import DynInst, RetireClass


class PseudoROB:
    """FIFO window of the most recently dispatched instructions."""

    __slots__ = (
        "capacity",
        "_entries",
        "_inserts",
        "_retirements",
        "_occupancy_mean",
        "_retire_histogram",
    )

    def __init__(self, capacity: int, stats: StatsRegistry) -> None:
        if capacity <= 0:
            raise StructuralHazardError("pseudo-ROB capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[DynInst] = deque()
        self._inserts = stats.counter("pseudo_rob.inserts")
        self._retirements = stats.counter("pseudo_rob.retirements")
        self._occupancy_mean = stats.running_mean("pseudo_rob.occupancy")
        self._retire_histogram = stats.histogram("pseudo_rob.retire_class")

    # -- capacity -----------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def free_entries(self) -> int:
        return self.capacity - len(self._entries)

    def sample_occupancy(self, cycles: int = 1) -> None:
        self._occupancy_mean.sample_many(len(self._entries), cycles)

    # -- contents -------------------------------------------------------------------
    def insert(self, inst: DynInst) -> None:
        if self.is_full:
            raise StructuralHazardError("pseudo-ROB overflow")
        inst.in_pseudo_rob = True
        self._entries.append(inst)
        self._inserts.add()

    def oldest(self) -> Optional[DynInst]:
        return self._entries[0] if self._entries else None

    def retire_oldest(self) -> DynInst:
        """Pop the oldest entry (classification happens in the pipeline)."""
        if not self._entries:
            raise StructuralHazardError("retire from an empty pseudo-ROB")
        inst = self._entries.popleft()
        inst.in_pseudo_rob = False
        self._retirements.add()
        return inst

    def record_classification(self, retire_class: RetireClass) -> None:
        """Account one retirement in the Figure-12 breakdown histogram."""
        self._retire_histogram.add(retire_class.value)

    def contains(self, inst: DynInst) -> bool:
        """Cheap membership test used by branch recovery."""
        return inst.in_pseudo_rob

    def remove_squashed(self) -> List[DynInst]:
        """Drop squashed entries after a rollback; returns what was removed."""
        removed = [inst for inst in self._entries if inst.squashed]
        if removed:
            self._entries = deque(inst for inst in self._entries if not inst.squashed)
            for inst in removed:
                inst.in_pseudo_rob = False
        return removed

    def __iter__(self):
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
