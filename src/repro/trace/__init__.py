"""Execution traces and replayable fetch cursors."""

from .trace import Trace, TraceCursor, merge_traces

__all__ = ["Trace", "TraceCursor", "merge_traces"]
