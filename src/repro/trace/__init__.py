"""Execution traces, replayable fetch cursors, and trace file I/O."""

from .io import TRACE_FORMAT, TRACE_FORMAT_VERSION, load_trace, save_trace, trace_info
from .trace import Trace, TraceCursor, merge_traces

__all__ = [
    "TRACE_FORMAT",
    "TRACE_FORMAT_VERSION",
    "Trace",
    "TraceCursor",
    "load_trace",
    "merge_traces",
    "save_trace",
    "trace_info",
]
