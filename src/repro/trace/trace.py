"""Execution traces and the replayable fetch cursor.

A :class:`Trace` is an immutable sequence of :class:`Instruction` objects
representing one dynamic execution of a program.  The pipeline consumes a
trace through a :class:`TraceCursor`, which supports *rewinding*: when the
out-of-order-commit machine rolls back to a checkpoint it moves the cursor
backwards and re-fetches, so the performance cost of replaying correct
instructions is modelled faithfully.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..common.errors import TraceError
from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass


class Trace:
    """An immutable, indexable sequence of trace instructions."""

    def __init__(self, instructions: Sequence[Instruction], name: str = "trace") -> None:
        self._instructions: List[Instruction] = list(instructions)
        self.name = name
        self._digest: Optional[str] = None
        if not self._instructions:
            raise TraceError("a trace must contain at least one instruction")

    def __len__(self) -> int:
        return len(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    # -- inspection -----------------------------------------------------
    def mix(self) -> Dict[str, int]:
        """Instruction mix keyed by ``OpClass`` value name."""
        counts: Dict[str, int] = {}
        for instr in self._instructions:
            counts[instr.op.value] = counts.get(instr.op.value, 0) + 1
        return counts

    def count(self, op: OpClass) -> int:
        """Number of instructions of a given operation class."""
        return sum(1 for instr in self._instructions if instr.op is op)

    def load_fraction(self) -> float:
        """Fraction of instructions that are loads."""
        loads = sum(1 for instr in self._instructions if instr.is_load)
        return loads / len(self._instructions)

    def branch_fraction(self) -> float:
        """Fraction of instructions that are branches."""
        branches = sum(1 for instr in self._instructions if instr.is_branch)
        return branches / len(self._instructions)

    def store_fraction(self) -> float:
        """Fraction of instructions that are stores."""
        stores = sum(1 for instr in self._instructions if instr.is_store)
        return stores / len(self._instructions)

    def unique_lines(self, line_bytes: int = 64) -> int:
        """Number of distinct cache lines touched by loads and stores."""
        lines = {
            instr.mem_addr // line_bytes
            for instr in self._instructions
            if instr.mem_addr is not None
        }
        return len(lines)

    def footprint_bytes(self, line_bytes: int = 64) -> int:
        """Approximate data footprint (distinct lines times line size)."""
        return self.unique_lines(line_bytes) * line_bytes

    def slice(self, start: int, stop: int) -> "Trace":
        """A new trace covering ``[start, stop)`` of this one."""
        if not 0 <= start < stop <= len(self):
            raise TraceError(f"invalid slice [{start}, {stop}) of trace of length {len(self)}")
        return Trace(self._instructions[start:stop], name=f"{self.name}[{start}:{stop}]")

    def instructions_between(self, start: int, stop: int) -> List[Instruction]:
        """The raw instruction list for ``[start, stop)`` — no Trace wrapper.

        O(stop - start) regardless of ``start``; used by the sampled
        execution fast-forward loop, which walks a long trace in many
        consecutive ranges and must not pay for re-skipping the prefix.
        """
        if not 0 <= start <= stop <= len(self):
            raise TraceError(
                f"invalid range [{start}, {stop}) of trace of length {len(self)}"
            )
        return self._instructions[start:stop]

    def concat(self, other: "Trace", name: Optional[str] = None) -> "Trace":
        """Concatenate two traces into a new one."""
        return Trace(
            self._instructions + list(other),
            name=name or f"{self.name}+{other.name}",
        )

    def relabel(self, label: str, name: Optional[str] = None) -> "Trace":
        """A copy of this trace with every instruction's kernel label replaced.

        Used by the scenario DSL so that phases of a composed workload stay
        distinguishable in per-instruction analyses.
        """
        relabelled = [
            instr if instr.label == label else dataclasses.replace(instr, label=label)
            for instr in self._instructions
        ]
        return Trace(relabelled, name=name if name is not None else self.name)

    def digest(self) -> str:
        """Content-addressed sha256 of the instruction sequence.

        Covers every instruction record but *not* the trace name, so a
        regenerated, loaded or renamed copy of the same execution hashes
        equal.  Computed lazily and cached — traces are immutable — so
        repeated checkpoint-key derivations pay the walk once.
        """
        if self._digest is None:
            import hashlib

            hasher = hashlib.sha256()
            for instr in self._instructions:
                hasher.update(json.dumps(instr.to_record(), sort_keys=True).encode("utf-8"))
                hasher.update(b"\n")
            self._digest = hasher.hexdigest()
        return self._digest

    # -- serialisation ----------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialise to JSON-lines (one instruction record per line)."""
        return "\n".join(json.dumps(instr.to_record()) for instr in self._instructions)

    @classmethod
    def from_jsonl(cls, text: str, name: str = "trace") -> "Trace":
        """Inverse of :meth:`to_jsonl`.

        Raises :class:`~repro.common.errors.TraceError` (never a bare
        ``KeyError``/``ValueError``) on malformed input.
        """
        instructions = []
        for line_number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise TypeError(f"expected an instruction record, got {type(record).__name__}")
                instructions.append(Instruction.from_record(record))
            except (KeyError, ValueError, TypeError) as exc:
                raise TraceError(f"malformed trace line {line_number}: {exc}") from exc
        return cls(instructions, name=name)

    def save(self, path: "os.PathLike") -> "os.PathLike":
        """Persist this trace as a versioned gzip-JSON file (see :mod:`repro.trace.io`)."""
        from .io import save_trace

        return save_trace(self, path)

    @classmethod
    def load(cls, path: "os.PathLike") -> "Trace":
        """Load a trace saved by :meth:`save`; raises ``TraceError`` on bad input."""
        from .io import load_trace

        return load_trace(path)


class TraceCursor:
    """A replayable fetch pointer over a :class:`Trace`.

    The cursor hands out ``(trace_index, Instruction)`` pairs in order and
    can be rewound to any earlier index, which is how checkpoint rollback
    and branch-misprediction replay are modelled.
    """

    def __init__(self, trace: Trace, start: int = 0) -> None:
        self._trace = trace
        if not 0 <= start <= len(trace):
            raise TraceError(f"cursor start {start} out of range for trace of length {len(trace)}")
        self._position = start

    @property
    def trace(self) -> Trace:
        return self._trace

    @property
    def position(self) -> int:
        """Index of the next instruction to be fetched."""
        return self._position

    @property
    def exhausted(self) -> bool:
        """True when every trace instruction has been handed out."""
        return self._position >= len(self._trace)

    def peek(self) -> Optional[Instruction]:
        """The next instruction without advancing, or None at end of trace."""
        if self.exhausted:
            return None
        return self._trace[self._position]

    def fetch(self) -> Optional[Instruction]:
        """Return the next instruction and advance, or None at end of trace."""
        if self.exhausted:
            return None
        instr = self._trace[self._position]
        self._position += 1
        return instr

    def fetch_block(self, width: int) -> List[Instruction]:
        """Fetch up to ``width`` instructions (may return fewer at trace end)."""
        block = []
        for _ in range(width):
            instr = self.fetch()
            if instr is None:
                break
            block.append(instr)
        return block

    def rewind_to(self, index: int) -> None:
        """Move the cursor back (or forward) to ``index``.

        ``index`` is the trace index of the next instruction to fetch.
        """
        if not 0 <= index <= len(self._trace):
            raise TraceError(
                f"rewind target {index} out of range for trace of length {len(self._trace)}"
            )
        self._position = index

    def remaining(self) -> int:
        """Number of instructions not yet handed out."""
        return len(self._trace) - self._position


def merge_traces(traces: Iterable[Trace], name: str = "merged") -> Trace:
    """Concatenate several traces back to back."""
    instructions: List[Instruction] = []
    for trace in traces:
        instructions.extend(trace)
    return Trace(instructions, name=name)
