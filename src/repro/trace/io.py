"""Trace file I/O: versioned gzip-JSON save/load for execution traces.

Trace generation is deterministic but not free — at figure scales a suite
is tens of thousands of ``Instruction`` constructions, and at the large
scales the paper's windows want, millions.  This module lets a trace be
generated once, saved, and replayed across sweeps:

* :func:`save_trace` writes a gzip-compressed file whose first line is a
  JSON header (format marker, format version, trace name, instruction
  counts) and whose second line is the JSON body.
* :func:`load_trace` validates the header and rebuilds the trace,
  raising :class:`~repro.common.errors.TraceError` — never a bare
  ``KeyError`` — on malformed or version-mismatched input.
* :func:`trace_info` reads only the header, so ``repro trace info`` is
  cheap even for huge files.

The body stores each *distinct* instruction record once plus an index of
references: execution traces are unrolled loops, so most dynamic
instructions repeat an earlier one exactly (same pc, operands, label —
only memory addresses and branch outcomes vary iteration to iteration).
``Instruction`` is a frozen dataclass, so the loader can share one
instance across all its occurrences; loading therefore constructs only
the distinct records and is several times faster than regenerating the
trace (``benchmarks/test_bench_trace_io.py`` guards the speedup).
"""

from __future__ import annotations

import gzip
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List

from ..common.errors import TraceError
from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass
from .trace import Trace

#: Format marker of the first header field; never changes.
TRACE_FORMAT = "repro-trace"

#: Bumped when the file layout changes incompatibly; loaders reject
#: versions they do not understand with a TraceError.
TRACE_FORMAT_VERSION = 1

#: Conventional file suffix used by the CLI when it picks names itself.
TRACE_SUFFIX = ".trace.gz"

#: Column order of the positional records in the body.  The body carries
#: this list too, so a reader can detect (and reject) a layout it does
#: not understand even within one format version.
RECORD_FIELDS = (
    "pc",
    "op",
    "dest",
    "srcs",
    "mem_addr",
    "mem_size",
    "branch_taken",
    "branch_target",
    "raises_exception",
    "label",
)

#: Opcode lookup table; dodges the Enum ``__call__`` machinery on the
#: hot load path (one lookup per distinct record).
_OPCODES = {op.value: op for op in OpClass}


def save_trace(trace: Trace, path: os.PathLike, compresslevel: int = 6) -> Path:
    """Write ``trace`` to ``path`` as a versioned gzip-JSON file.

    The write is atomic (temp file + ``os.replace``), so a crashed save
    never leaves a truncated trace where a good one is expected.
    """
    distinct: Dict[Any, int] = {}
    records: List[List[Any]] = []
    index: List[int] = []
    for instr in trace:
        key = (
            instr.pc, instr.op, instr.dest, instr.srcs, instr.mem_addr, instr.mem_size,
            instr.branch_taken, instr.branch_target, instr.raises_exception, instr.label,
        )
        slot = distinct.get(key)
        if slot is None:
            slot = distinct.setdefault(key, len(records))
            records.append([
                instr.pc, instr.op.value, instr.dest, list(instr.srcs), instr.mem_addr,
                instr.mem_size, instr.branch_taken, instr.branch_target,
                instr.raises_exception, instr.label,
            ])
        index.append(slot)
    header = {
        "format": TRACE_FORMAT,
        "version": TRACE_FORMAT_VERSION,
        "name": trace.name,
        "instructions": len(trace),
        "distinct_instructions": len(records),
    }
    body = {"fields": list(RECORD_FIELDS), "records": records, "index": index}
    destination = Path(path).expanduser()
    destination.parent.mkdir(parents=True, exist_ok=True)
    tmp = destination.with_name(f"{destination.name}.tmp.{os.getpid()}")
    try:
        with gzip.open(tmp, "wt", encoding="utf-8", compresslevel=compresslevel) as handle:
            handle.write(json.dumps(header) + "\n")
            handle.write(json.dumps(body))
        os.replace(tmp, destination)
    finally:
        if tmp.exists():  # only on failure; os.replace consumed it otherwise
            tmp.unlink()
    return destination


def _read_lines(path: Path) -> List[str]:
    try:
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            return [handle.readline(), handle.readline()]
    except FileNotFoundError:
        raise
    except (OSError, EOFError, UnicodeDecodeError) as exc:
        # gzip.BadGzipFile (a plain file, garbage, truncation) is an OSError.
        raise TraceError(f"{path} is not a readable trace file: {exc}") from exc


def _parse_header(path: Path, line: str) -> Dict[str, Any]:
    try:
        header = json.loads(line)
    except ValueError as exc:
        raise TraceError(f"{path}: malformed trace header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise TraceError(f"{path}: not a {TRACE_FORMAT} file")
    version = header.get("version")
    # The bool check matters: True == 1 in Python, so a hostile header
    # with "version": true would otherwise slip past an equality test.
    if (
        not isinstance(version, int)
        or isinstance(version, bool)
        or version != TRACE_FORMAT_VERSION
    ):
        raise TraceError(
            f"{path}: unsupported trace format version {version!r} "
            f"(this build reads version {TRACE_FORMAT_VERSION})"
        )
    for field in ("name", "instructions"):
        if field not in header:
            raise TraceError(f"{path}: trace header is missing {field!r}")
    count = header["instructions"]
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        raise TraceError(f"{path}: trace header instruction count {count!r} is not a positive int")
    return header


def trace_info(path: os.PathLike) -> Dict[str, Any]:
    """The validated header of a saved trace, without loading the body."""
    source = Path(path).expanduser()
    return _parse_header(source, _read_lines(source)[0])


def load_trace(path: os.PathLike) -> Trace:
    """Rebuild a trace saved by :func:`save_trace`.

    Every malformed-input failure mode — bad gzip data, truncated files,
    unknown format versions, records that fail ``Instruction``
    validation, an index that disagrees with the header — raises
    :class:`TraceError` with the file path in the message.
    """
    source = Path(path).expanduser()
    header_line, body_line = _read_lines(source)
    header = _parse_header(source, header_line)
    try:
        body = json.loads(body_line)
        fields = body["fields"]
        records = body["records"]
        index = body["index"]
    except (ValueError, KeyError, TypeError) as exc:
        raise TraceError(f"{source}: malformed trace body: {exc}") from exc
    if tuple(fields) != RECORD_FIELDS:
        raise TraceError(
            f"{source}: unsupported record layout {fields!r} "
            f"(this build reads {list(RECORD_FIELDS)!r})"
        )
    try:
        # Validated construction (Instruction.__post_init__ runs) but with
        # the constructor inlined: this is the hot path the trace-io
        # benchmark guards, one construction per *distinct* record.
        pool = [
            Instruction(
                pc=pc,
                op=_OPCODES[op],
                dest=dest,
                srcs=tuple(srcs),
                mem_addr=mem_addr,
                mem_size=mem_size,
                branch_taken=branch_taken,
                branch_target=branch_target,
                raises_exception=raises_exception,
                label=label,
            )
            for pc, op, dest, srcs, mem_addr, mem_size,
                branch_taken, branch_target, raises_exception, label in records
        ]
    except (KeyError, ValueError, TypeError) as exc:
        raise TraceError(f"{source}: malformed instruction record: {exc}") from exc
    try:
        if index and min(index) < 0:  # negative slots would alias via Python indexing
            raise IndexError(f"negative slot {min(index)}")
        instructions = [pool[slot] for slot in index]
    except (IndexError, TypeError) as exc:
        raise TraceError(f"{source}: trace index references a missing record: {exc}") from exc
    if len(instructions) != header["instructions"]:
        raise TraceError(
            f"{source}: header promises {header['instructions']} instructions "
            f"but the body holds {len(instructions)}"
        )
    if not instructions:
        raise TraceError(f"{source}: trace file contains no instructions")
    return Trace(instructions, name=header["name"])


# ---------------------------------------------------------------------------
# Warm-state checkpoints (sampled execution)
# ---------------------------------------------------------------------------

#: Format marker of warm-state checkpoint files; never changes.
CHECKPOINT_FORMAT = "repro-warm-checkpoint"

#: Bumped when the checkpoint layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1

#: Conventional suffix of warm-checkpoint files; checkpoint directories
#: are keyed stores, ``<key>.warm.gz``.
CHECKPOINT_SUFFIX = ".warm.gz"


@dataclass(frozen=True)
class WarmCheckpoint:
    """Warm microarchitectural state at every detailed-window boundary.

    One functional pass over a trace produces one checkpoint: for each
    detailed region of the sampling schedule, a snapshot of the cache
    tag/LRU/dirty state, prefetcher table, branch predictor and BTB as
    they stand when that region begins.  ``key`` is the sha256 derived
    by :func:`repro.core.warmstate.checkpoint_key` over (trace digest,
    sampling plan, warm-relevant hierarchy/predictor parameters,
    simulator version) — everything that shapes the snapshots — so a
    checkpoint is shared across machine configs that differ only in
    window/latency knobs, and can never be adopted by a run it does not
    match.
    """

    key: str
    simulator_version: str
    trace_digest: str
    trace_name: str
    instructions: int
    plan: Dict[str, int]
    params: Dict[str, Any]
    boundaries: List[int] = field(default_factory=list)
    snapshots: List[Dict[str, Any]] = field(default_factory=list)
    #: Raw ``StatsRegistry.dump_state()`` of the functional pass, so a
    #: checkpoint-hit run reproduces the warm pass's statistic
    #: contributions (fast-forward accounting, prefetch issue counts)
    #: bit-exactly without re-running it.
    warm_stats: Dict[str, list] = field(default_factory=dict)


def save_checkpoint(checkpoint: WarmCheckpoint, path: os.PathLike, compresslevel: int = 6) -> Path:
    """Write a warm checkpoint using the trace container's gzip-JSON layout.

    Same two-line shape as :func:`save_trace` — a small JSON header line
    (so ``repro checkpoint info`` never reads the snapshots) followed by
    the JSON body — and the same atomic temp-file + ``os.replace`` write.
    """
    header = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_FORMAT_VERSION,
        "key": checkpoint.key,
        "simulator_version": checkpoint.simulator_version,
        "trace_digest": checkpoint.trace_digest,
        "trace_name": checkpoint.trace_name,
        "instructions": checkpoint.instructions,
        "plan": dict(checkpoint.plan),
        "windows": len(checkpoint.snapshots),
    }
    body = {
        "params": checkpoint.params,
        "boundaries": list(checkpoint.boundaries),
        "snapshots": list(checkpoint.snapshots),
        "warm_stats": checkpoint.warm_stats,
    }
    destination = Path(path).expanduser()
    destination.parent.mkdir(parents=True, exist_ok=True)
    tmp = destination.with_name(f"{destination.name}.tmp.{os.getpid()}")
    try:
        with gzip.open(tmp, "wt", encoding="utf-8", compresslevel=compresslevel) as handle:
            handle.write(json.dumps(header) + "\n")
            handle.write(json.dumps(body))
        os.replace(tmp, destination)
    finally:
        if tmp.exists():  # only on failure; os.replace consumed it otherwise
            tmp.unlink()
    return destination


def _parse_checkpoint_header(path: Path, line: str) -> Dict[str, Any]:
    try:
        header = json.loads(line)
    except ValueError as exc:
        raise TraceError(f"{path}: malformed checkpoint header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != CHECKPOINT_FORMAT:
        raise TraceError(f"{path}: not a {CHECKPOINT_FORMAT} file")
    version = header.get("version")
    # Same bool-vs-int hostility check as trace headers: True == 1.
    if (
        not isinstance(version, int)
        or isinstance(version, bool)
        or version != CHECKPOINT_FORMAT_VERSION
    ):
        raise TraceError(
            f"{path}: unsupported checkpoint format version {version!r} "
            f"(this build reads version {CHECKPOINT_FORMAT_VERSION})"
        )
    for fname in (
        "key", "simulator_version", "trace_digest", "trace_name",
        "instructions", "plan", "windows",
    ):
        if fname not in header:
            raise TraceError(f"{path}: checkpoint header is missing {fname!r}")
    if not isinstance(header["key"], str) or not header["key"]:
        raise TraceError(f"{path}: checkpoint key {header['key']!r} is not a non-empty string")
    windows = header["windows"]
    if not isinstance(windows, int) or isinstance(windows, bool) or windows < 0:
        raise TraceError(f"{path}: checkpoint window count {windows!r} is not a non-negative int")
    return header


def checkpoint_info(path: os.PathLike) -> Dict[str, Any]:
    """The validated header of a warm checkpoint, without its snapshots."""
    source = Path(path).expanduser()
    return _parse_checkpoint_header(source, _read_lines(source)[0])


def load_checkpoint(path: os.PathLike) -> WarmCheckpoint:
    """Rebuild a checkpoint saved by :func:`save_checkpoint`.

    Every malformed-input failure mode — bad gzip data, truncation, a
    foreign or future format, a body that disagrees with the header —
    raises :class:`TraceError` with the file path in the message, never
    a bare ``KeyError``; key matching against the *expected* key is the
    caller's job (see ``repro.core.warmstate.load_matching_checkpoint``).
    """
    source = Path(path).expanduser()
    header_line, body_line = _read_lines(source)
    header = _parse_checkpoint_header(source, header_line)
    try:
        body = json.loads(body_line)
        params = body["params"]
        boundaries = body["boundaries"]
        snapshots = body["snapshots"]
        warm_stats = body.get("warm_stats", {})
    except (ValueError, KeyError, TypeError) as exc:
        raise TraceError(f"{source}: malformed checkpoint body: {exc}") from exc
    if (
        not isinstance(boundaries, list)
        or not isinstance(snapshots, list)
        or not isinstance(warm_stats, dict)
    ):
        raise TraceError(f"{source}: checkpoint body fields have the wrong shape")
    if len(snapshots) != header["windows"] or len(boundaries) != header["windows"]:
        raise TraceError(
            f"{source}: header promises {header['windows']} windows but the body "
            f"holds {len(snapshots)} snapshots / {len(boundaries)} boundaries"
        )
    try:
        return WarmCheckpoint(
            key=header["key"],
            simulator_version=header["simulator_version"],
            trace_digest=header["trace_digest"],
            trace_name=header["trace_name"],
            instructions=int(header["instructions"]),
            plan={name: int(value) for name, value in header["plan"].items()},
            params=params,
            boundaries=[int(b) for b in boundaries],
            snapshots=snapshots,
            warm_stats=warm_stats,
        )
    except (ValueError, TypeError, AttributeError) as exc:
        raise TraceError(f"{source}: malformed checkpoint fields: {exc}") from exc
