"""Trace file I/O: versioned gzip-JSON save/load for execution traces.

Trace generation is deterministic but not free — at figure scales a suite
is tens of thousands of ``Instruction`` constructions, and at the large
scales the paper's windows want, millions.  This module lets a trace be
generated once, saved, and replayed across sweeps:

* :func:`save_trace` writes a gzip-compressed file whose first line is a
  JSON header (format marker, format version, trace name, instruction
  counts) and whose second line is the JSON body.
* :func:`load_trace` validates the header and rebuilds the trace,
  raising :class:`~repro.common.errors.TraceError` — never a bare
  ``KeyError`` — on malformed or version-mismatched input.
* :func:`trace_info` reads only the header, so ``repro trace info`` is
  cheap even for huge files.

The body stores each *distinct* instruction record once plus an index of
references: execution traces are unrolled loops, so most dynamic
instructions repeat an earlier one exactly (same pc, operands, label —
only memory addresses and branch outcomes vary iteration to iteration).
``Instruction`` is a frozen dataclass, so the loader can share one
instance across all its occurrences; loading therefore constructs only
the distinct records and is several times faster than regenerating the
trace (``benchmarks/test_bench_trace_io.py`` guards the speedup).
"""

from __future__ import annotations

import gzip
import json
import os
from pathlib import Path
from typing import Any, Dict, List

from ..common.errors import TraceError
from ..isa.instruction import Instruction
from ..isa.opcodes import OpClass
from .trace import Trace

#: Format marker of the first header field; never changes.
TRACE_FORMAT = "repro-trace"

#: Bumped when the file layout changes incompatibly; loaders reject
#: versions they do not understand with a TraceError.
TRACE_FORMAT_VERSION = 1

#: Conventional file suffix used by the CLI when it picks names itself.
TRACE_SUFFIX = ".trace.gz"

#: Column order of the positional records in the body.  The body carries
#: this list too, so a reader can detect (and reject) a layout it does
#: not understand even within one format version.
RECORD_FIELDS = (
    "pc",
    "op",
    "dest",
    "srcs",
    "mem_addr",
    "mem_size",
    "branch_taken",
    "branch_target",
    "raises_exception",
    "label",
)

#: Opcode lookup table; dodges the Enum ``__call__`` machinery on the
#: hot load path (one lookup per distinct record).
_OPCODES = {op.value: op for op in OpClass}


def save_trace(trace: Trace, path: os.PathLike, compresslevel: int = 6) -> Path:
    """Write ``trace`` to ``path`` as a versioned gzip-JSON file.

    The write is atomic (temp file + ``os.replace``), so a crashed save
    never leaves a truncated trace where a good one is expected.
    """
    distinct: Dict[Any, int] = {}
    records: List[List[Any]] = []
    index: List[int] = []
    for instr in trace:
        key = (
            instr.pc, instr.op, instr.dest, instr.srcs, instr.mem_addr, instr.mem_size,
            instr.branch_taken, instr.branch_target, instr.raises_exception, instr.label,
        )
        slot = distinct.get(key)
        if slot is None:
            slot = distinct.setdefault(key, len(records))
            records.append([
                instr.pc, instr.op.value, instr.dest, list(instr.srcs), instr.mem_addr,
                instr.mem_size, instr.branch_taken, instr.branch_target,
                instr.raises_exception, instr.label,
            ])
        index.append(slot)
    header = {
        "format": TRACE_FORMAT,
        "version": TRACE_FORMAT_VERSION,
        "name": trace.name,
        "instructions": len(trace),
        "distinct_instructions": len(records),
    }
    body = {"fields": list(RECORD_FIELDS), "records": records, "index": index}
    destination = Path(path).expanduser()
    destination.parent.mkdir(parents=True, exist_ok=True)
    tmp = destination.with_name(f"{destination.name}.tmp.{os.getpid()}")
    try:
        with gzip.open(tmp, "wt", encoding="utf-8", compresslevel=compresslevel) as handle:
            handle.write(json.dumps(header) + "\n")
            handle.write(json.dumps(body))
        os.replace(tmp, destination)
    finally:
        if tmp.exists():  # only on failure; os.replace consumed it otherwise
            tmp.unlink()
    return destination


def _read_lines(path: Path) -> List[str]:
    try:
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            return [handle.readline(), handle.readline()]
    except FileNotFoundError:
        raise
    except (OSError, EOFError, UnicodeDecodeError) as exc:
        # gzip.BadGzipFile (a plain file, garbage, truncation) is an OSError.
        raise TraceError(f"{path} is not a readable trace file: {exc}") from exc


def _parse_header(path: Path, line: str) -> Dict[str, Any]:
    try:
        header = json.loads(line)
    except ValueError as exc:
        raise TraceError(f"{path}: malformed trace header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise TraceError(f"{path}: not a {TRACE_FORMAT} file")
    version = header.get("version")
    # The bool check matters: True == 1 in Python, so a hostile header
    # with "version": true would otherwise slip past an equality test.
    if (
        not isinstance(version, int)
        or isinstance(version, bool)
        or version != TRACE_FORMAT_VERSION
    ):
        raise TraceError(
            f"{path}: unsupported trace format version {version!r} "
            f"(this build reads version {TRACE_FORMAT_VERSION})"
        )
    for field in ("name", "instructions"):
        if field not in header:
            raise TraceError(f"{path}: trace header is missing {field!r}")
    count = header["instructions"]
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        raise TraceError(f"{path}: trace header instruction count {count!r} is not a positive int")
    return header


def trace_info(path: os.PathLike) -> Dict[str, Any]:
    """The validated header of a saved trace, without loading the body."""
    source = Path(path).expanduser()
    return _parse_header(source, _read_lines(source)[0])


def load_trace(path: os.PathLike) -> Trace:
    """Rebuild a trace saved by :func:`save_trace`.

    Every malformed-input failure mode — bad gzip data, truncated files,
    unknown format versions, records that fail ``Instruction``
    validation, an index that disagrees with the header — raises
    :class:`TraceError` with the file path in the message.
    """
    source = Path(path).expanduser()
    header_line, body_line = _read_lines(source)
    header = _parse_header(source, header_line)
    try:
        body = json.loads(body_line)
        fields = body["fields"]
        records = body["records"]
        index = body["index"]
    except (ValueError, KeyError, TypeError) as exc:
        raise TraceError(f"{source}: malformed trace body: {exc}") from exc
    if tuple(fields) != RECORD_FIELDS:
        raise TraceError(
            f"{source}: unsupported record layout {fields!r} "
            f"(this build reads {list(RECORD_FIELDS)!r})"
        )
    try:
        # Validated construction (Instruction.__post_init__ runs) but with
        # the constructor inlined: this is the hot path the trace-io
        # benchmark guards, one construction per *distinct* record.
        pool = [
            Instruction(
                pc=pc,
                op=_OPCODES[op],
                dest=dest,
                srcs=tuple(srcs),
                mem_addr=mem_addr,
                mem_size=mem_size,
                branch_taken=branch_taken,
                branch_target=branch_target,
                raises_exception=raises_exception,
                label=label,
            )
            for pc, op, dest, srcs, mem_addr, mem_size,
                branch_taken, branch_target, raises_exception, label in records
        ]
    except (KeyError, ValueError, TypeError) as exc:
        raise TraceError(f"{source}: malformed instruction record: {exc}") from exc
    try:
        if index and min(index) < 0:  # negative slots would alias via Python indexing
            raise IndexError(f"negative slot {min(index)}")
        instructions = [pool[slot] for slot in index]
    except (IndexError, TypeError) as exc:
        raise TraceError(f"{source}: trace index references a missing record: {exc}") from exc
    if len(instructions) != header["instructions"]:
        raise TraceError(
            f"{source}: header promises {header['instructions']} instructions "
            f"but the body holds {len(instructions)}"
        )
    if not instructions:
        raise TraceError(f"{source}: trace file contains no instructions")
    return Trace(instructions, name=header["name"])
