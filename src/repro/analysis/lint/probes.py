"""Probe-contract rule (RPR4xx).

The event-driven kernel (PR 4) skips idle cycles wholesale.  A probe
that overrides ``on_cycle`` forces the kernel back onto the per-cycle
fallback path for the whole run — *unless* it also overrides
``on_idle_cycles``, declaring that it knows how to account for a skipped
span.  The rule makes that contract explicit: override both or neither.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .context import ModuleContext, qualified_symbols
from .findings import Finding
from .rules import Rule, base_names, register


def _method_names(node: ast.ClassDef) -> set:
    return {
        item.name
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@register
class ProbeSkipAwareRule(Rule):
    """RPR401: Probe subclass overrides on_cycle but is not skip-aware."""

    id = "RPR401"
    name = "probe-skip-aware"
    description = (
        "A Probe subclass that overrides on_cycle() without also overriding "
        "on_idle_cycles() silently forces the event-driven kernel onto the "
        "per-cycle fallback path.  Either implement on_idle_cycles() (how "
        "the probe accounts for a skipped idle span) or drop the on_cycle "
        "override."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        symbols = qualified_symbols(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = base_names(node)
            if not any(name == "Probe" or name.endswith("Probe") for name in bases):
                continue
            methods = _method_names(node)
            if "on_cycle" in methods and "on_idle_cycles" not in methods:
                yield self.finding(
                    ctx,
                    node.lineno,
                    symbols.get(node, node.name),
                    f"{node.name} overrides on_cycle without on_idle_cycles; it "
                    f"will force the per-cycle fallback path on the event-driven "
                    f"kernel — implement on_idle_cycles to stay skip-aware",
                )
