"""The lint engine: collect files, parse once, run every registered rule.

Deterministic by construction — files are discovered in sorted order,
findings are sorted by ``(file, line, rule, symbol)``, and JSON output
uses that same order — so two runs over the same tree produce
byte-identical reports (the analyzer holds itself to the standard it
enforces).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .baseline import (
    apply_baseline,
    load_baseline,
    suppression_reason_findings,
)
from .context import ModuleContext, parse_module
from .findings import ERROR, Finding, LintReport
from .rules import RULES, ProjectRule

# Import for side effect: each module registers its rules on import.
from . import cachekey as _cachekey  # noqa: F401
from . import determinism as _determinism  # noqa: F401
from . import fingerprints as _fingerprints  # noqa: F401
from . import hotpath as _hotpath  # noqa: F401
from . import probes as _probes  # noqa: F401
from . import robustness as _robustness  # noqa: F401
from . import shims as _shims  # noqa: F401

from .fingerprints import update_fingerprints as _update_fingerprints

#: Emitted by the engine itself when a file cannot be parsed.
PARSE_ERROR = "RPR000"

#: Default baseline location relative to the linted root.
BASELINE_REL = "analysis/lint_baseline.json"


def default_root() -> Path:
    """The installed ``repro`` package directory (the self-hosting target)."""
    return Path(__file__).resolve().parent.parent.parent


def collect_files(root: Path) -> List[Path]:
    """Every ``*.py`` under ``root`` (or just ``root`` if it is a file)."""
    if root.is_file():
        return [root]
    return sorted(
        path
        for path in root.rglob("*.py")
        if "__pycache__" not in path.parts
    )


class LintEngine:
    """One lint run over one root directory."""

    def __init__(
        self,
        root: Optional[Path] = None,
        baseline_path: Optional[Path] = None,
    ) -> None:
        self.root = (root or default_root()).resolve()
        if baseline_path is not None:
            self.baseline_path = baseline_path
        else:
            self.baseline_path = self.root / BASELINE_REL
        self._ctxs: Optional[List[ModuleContext]] = None
        self._parse_findings: List[Finding] = []

    # -- parsing ------------------------------------------------------------

    def contexts(self) -> List[ModuleContext]:
        if self._ctxs is not None:
            return self._ctxs
        base = self.root if self.root.is_dir() else self.root.parent
        ctxs: List[ModuleContext] = []
        for path in collect_files(self.root):
            rel = path.relative_to(base).as_posix()
            try:
                ctxs.append(parse_module(path, rel))
            except SyntaxError as exc:
                self._parse_findings.append(
                    Finding(
                        rule=PARSE_ERROR,
                        file=rel,
                        line=exc.lineno or 0,
                        symbol="<module>",
                        message=f"file does not parse: {exc.msg}",
                        severity=ERROR,
                    )
                )
        self._ctxs = ctxs
        return ctxs

    # -- the run ------------------------------------------------------------

    def run(self) -> LintReport:
        ctxs = self.contexts()
        raw: List[Finding] = list(self._parse_findings)
        for rule in RULES:
            for ctx in ctxs:
                raw.extend(rule.check(ctx))
            if isinstance(rule, ProjectRule):
                raw.extend(rule.check_project(ctxs, self.root))

        # Inline suppressions (line-anchored, reason mandatory).
        by_rel = {ctx.rel: ctx for ctx in ctxs}
        survivors: List[Finding] = []
        suppressed = 0
        for finding in raw:
            ctx = by_rel.get(finding.file)
            if ctx is not None and finding.rule in ctx.suppressed_rules_at(finding.line):
                suppressed += 1
            else:
                survivors.append(finding)
        survivors.extend(suppression_reason_findings(ctxs))

        # Committed baseline (symbol-anchored, reason mandatory, stale = error).
        entries = load_baseline(self.baseline_path)
        baseline_rel = self._baseline_rel()
        survivors, baselined = apply_baseline(survivors, entries, baseline_rel)

        survivors.sort(key=lambda finding: finding.sort_key())
        return LintReport(
            findings=survivors,
            files_checked=len(ctxs),
            rules_run=len(RULES),
            suppressed=suppressed,
            baselined=baselined,
        )

    def _baseline_rel(self) -> str:
        try:
            base = self.root if self.root.is_dir() else self.root.parent
            return self.baseline_path.resolve().relative_to(base).as_posix()
        except ValueError:
            return self.baseline_path.name

    # -- fingerprint maintenance ---------------------------------------------

    def update_fingerprints(
        self, allow_same_version: bool = False
    ) -> Tuple[Path, List[str]]:
        return _update_fingerprints(
            self.root, self.contexts(), allow_same_version=allow_same_version
        )


def run_lint(
    root: Optional[Path] = None, baseline_path: Optional[Path] = None
) -> LintReport:
    """Functional entry point: lint ``root`` and return the report."""
    return LintEngine(root=root, baseline_path=baseline_path).run()
