"""Per-file parsing context shared by every rule.

A :class:`ModuleContext` is one parsed source file: its AST, source
lines, path relative to the linted package root, and the inline
suppressions (``# lint: ignore[RPRxxx] reason``) found in it.  Parsing
happens once per file per run; rules only walk the tree.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Set, Tuple

#: Inline suppression syntax.  The reason is *mandatory*: a suppression
#: that does not say why is itself reported (RPR002).
SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Za-z0-9,\s]+)\]\s*(.*)$")


@dataclass
class Suppression:
    """One inline ``lint: ignore`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str


@dataclass
class ModuleContext:
    """One parsed python file under the linted root."""

    path: Path  #: absolute path on disk
    rel: str  #: posix path relative to the linted root, e.g. "core/iq.py"
    tree: ast.Module
    lines: List[str]
    suppressions: List[Suppression] = field(default_factory=list)

    @property
    def parts(self) -> Tuple[str, ...]:
        return tuple(self.rel.split("/"))

    @property
    def top_package(self) -> str:
        """First path segment ("core", "workloads", ...; "" for top-level files)."""
        parts = self.parts
        return parts[0] if len(parts) > 1 else ""

    def in_packages(self, names: Set[str]) -> bool:
        return self.top_package in names

    def suppressed_rules_at(self, line: int) -> Set[str]:
        """Rule ids silenced for a finding on ``line``.

        A suppression applies to its own line and to the line directly
        below it (so a comment can sit above a long statement).
        """
        silenced: Set[str] = set()
        for suppression in self.suppressions:
            if suppression.line in (line, line - 1):
                silenced.update(suppression.rules)
        return silenced


def parse_module(path: Path, rel: str) -> ModuleContext:
    """Parse one file into a context (raises SyntaxError on broken input)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    suppressions = []
    for number, line in enumerate(lines, start=1):
        match = SUPPRESS_RE.search(line)
        if match:
            rules = tuple(
                token.strip() for token in match.group(1).split(",") if token.strip()
            )
            suppressions.append(
                Suppression(line=number, rules=rules, reason=match.group(2).strip())
            )
    return ModuleContext(
        path=path, rel=rel, tree=tree, lines=lines, suppressions=suppressions
    )


def qualified_symbols(tree: ast.Module) -> Dict[ast.AST, str]:
    """Map every class/function node to its dotted path within the module."""
    symbols: Dict[ast.AST, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                dotted = f"{prefix}.{child.name}" if prefix else child.name
                symbols[child] = dotted
                visit(child, dotted)
            else:
                visit(child, prefix)

    visit(tree, "")
    return symbols
