"""Determinism rules (RPR1xx).

The three execution paths (per-cycle, event-driven, sampled) must agree
bit-for-bit, and the persistent result cache assumes a cell's result is
a pure function of (config, workload, version).  Anything that lets
ambient process state leak into result bits — the shared ``random``
module, wall-clock reads, ``id()`` ordering, iteration order of hash
sets — breaks both guarantees in ways the differential fuzzer can only
catch probabilistically.  These rules catch them before merge.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from .context import ModuleContext, qualified_symbols
from .findings import Finding
from .rules import RESULT_PACKAGES, Rule, register

#: ``random.<fn>`` module-level calls that draw from the shared, ambient
#: global generator.  ``random.Random(seed)`` — a private, explicitly
#: seeded stream — is the sanctioned alternative and is not flagged.
AMBIENT_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "getrandbits", "randbytes", "seed",
    "vonmisesvariate", "paretovariate", "weibullvariate", "lognormvariate",
}

#: Wall-clock reads.  ``perf_counter``/``monotonic`` are included inside
#: result-producing packages: even "just timing" there tends to end up
#: in a statistic or a heuristic threshold sooner or later.
WALL_CLOCK_TIME_FNS = {"time", "time_ns", "monotonic", "monotonic_ns",
                       "perf_counter", "perf_counter_ns", "process_time"}
WALL_CLOCK_DATETIME_FNS = {"now", "utcnow", "today", "fromtimestamp"}


def _symbol_for(ctx: ModuleContext, node: ast.AST, symbols: Dict[ast.AST, str]) -> str:
    """Dotted symbol of the innermost enclosing def/class, or the module."""
    best = ""
    best_span = None
    for owner, dotted in symbols.items():
        start = owner.lineno
        end = getattr(owner, "end_lineno", start)
        if start <= node.lineno <= end:
            span = end - start
            if best_span is None or span <= best_span:
                best, best_span = dotted, span
    return best or "<module>"


@register
class AmbientRandomRule(Rule):
    """RPR101: module-level ``random`` calls (unseeded, process-global)."""

    id = "RPR101"
    name = "ambient-random"
    description = (
        "Calls to the shared `random` module functions (random.random, "
        "random.choice, ...) draw from ambient process-global state; use a "
        "private `random.Random(seed)` stream so traces and schedules are "
        "reproducible.  Applies to the whole package."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        symbols = qualified_symbols(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr in AMBIENT_RANDOM_FNS
                ):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        _symbol_for(ctx, node, symbols),
                        f"random.{func.attr}() uses the process-global generator; "
                        f"draw from an explicitly seeded random.Random instead",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in AMBIENT_RANDOM_FNS:
                        yield self.finding(
                            ctx,
                            node.lineno,
                            "<module>",
                            f"importing `{alias.name}` from `random` pulls in the "
                            f"process-global generator; import Random and seed it",
                        )


@register
class WallClockRule(Rule):
    """RPR102: wall-clock reads inside result-producing packages."""

    id = "RPR102"
    name = "wall-clock"
    description = (
        "time.time()/perf_counter()/datetime.now() inside core/branch/memory/"
        "trace/isa/workloads/common make result bits depend on when the "
        "simulation ran.  Timing harnesses belong above the simulator "
        "(perf.py, cli.py, the sweep engine)."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(RESULT_PACKAGES):
            return
        symbols = qualified_symbols(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = func.value
            if isinstance(receiver, ast.Name):
                if receiver.id == "time" and func.attr in WALL_CLOCK_TIME_FNS:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        _symbol_for(ctx, node, symbols),
                        f"time.{func.attr}() read inside a result-producing "
                        f"package; results must not depend on wall-clock time",
                    )
                elif receiver.id in ("datetime", "date") and func.attr in WALL_CLOCK_DATETIME_FNS:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        _symbol_for(ctx, node, symbols),
                        f"{receiver.id}.{func.attr}() read inside a result-producing "
                        f"package; results must not depend on wall-clock time",
                    )
            elif (
                isinstance(receiver, ast.Attribute)
                and receiver.attr == "datetime"
                and func.attr in WALL_CLOCK_DATETIME_FNS
            ):
                yield self.finding(
                    ctx,
                    node.lineno,
                    _symbol_for(ctx, node, symbols),
                    f"datetime.{func.attr}() read inside a result-producing package",
                )


@register
class IdOrderingRule(Rule):
    """RPR103: ``id()`` values inside result-producing packages."""

    id = "RPR103"
    name = "id-ordering"
    description = (
        "id() values depend on the allocator (address-space layout), so any "
        "comparison, hash or tiebreak built on them differs run to run.  Use "
        "a sequence number or a monotonic counter instead."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(RESULT_PACKAGES):
            return
        symbols = qualified_symbols(ctx.tree)
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
            ):
                yield self.finding(
                    ctx,
                    node.lineno,
                    _symbol_for(ctx, node, symbols),
                    "id() is address-derived and varies across runs; key on a "
                    "sequence number or an itertools.count() tick instead",
                )


class _SetCollector(ast.NodeVisitor):
    """Collects names/attributes statically known to hold ``set`` objects."""

    def __init__(self) -> None:
        self.known: Set[str] = set()

    def _note_target(self, target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return f"self.{target.attr}"
        return None

    @staticmethod
    def _is_set_expr(value: Optional[ast.AST]) -> bool:
        if value is None:
            return False
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id in ("set", "frozenset"):
                return True
        if isinstance(value, ast.SetComp) or isinstance(value, ast.Set):
            return True
        return False

    @staticmethod
    def _is_set_annotation(annotation: Optional[ast.AST]) -> bool:
        if annotation is None:
            return False
        text = ast.dump(annotation)
        return "'Set'" in text or "'set'" in text or "'FrozenSet'" in text or "'frozenset'" in text

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                name = self._note_target(target)
                if name:
                    self.known.add(name)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._is_set_annotation(node.annotation) or self._is_set_expr(node.value):
            name = self._note_target(node.target)
            if name:
                self.known.add(name)
        self.generic_visit(node)


def _expr_key(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


@register
class SetOrderRule(Rule):
    """RPR104: materializing an ordered view of a hash set."""

    id = "RPR104"
    name = "set-order"
    description = (
        "list()/tuple()/list-comprehension over a bare set turns hash-table "
        "iteration order — which varies with insertion history and object "
        "addresses — into an ordered value that can reach result bits.  Sort "
        "by a deterministic key (e.g. the instruction sequence number) at "
        "the point of materialization.  Commutative folds over sets (sums, "
        "membership scans) are fine and not flagged."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(RESULT_PACKAGES):
            return
        collector = _SetCollector()
        collector.visit(ctx.tree)
        known = collector.known
        if not known:
            return
        symbols = qualified_symbols(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("list", "tuple") and len(node.args) == 1:
                    key = _expr_key(node.args[0])
                    if key in known:
                        yield self.finding(
                            ctx,
                            node.lineno,
                            _symbol_for(ctx, node, symbols),
                            f"{node.func.id}({key}) materializes hash-set iteration "
                            f"order; sort by a deterministic key instead",
                        )
            elif isinstance(node, ast.ListComp):
                for generator in node.generators:
                    key = _expr_key(generator.iter)
                    if key in known:
                        yield self.finding(
                            ctx,
                            node.lineno,
                            _symbol_for(ctx, node, symbols),
                            f"list comprehension over set {key} materializes "
                            f"hash-set iteration order; sort by a deterministic "
                            f"key instead",
                        )


@register
class AmbientEnvRule(Rule):
    """RPR105: environment reads inside result-producing packages."""

    id = "RPR105"
    name = "ambient-env"
    description = (
        "os.environ/os.getenv inside core/branch/memory/trace/isa/workloads/"
        "common lets the process environment alter result bits without "
        "reaching the cache key.  Environment-driven configuration belongs "
        "in the CLI/sweep layer, where it feeds explicit config fields."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(RESULT_PACKAGES):
            return
        symbols = qualified_symbols(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr in ("environ", "getenv"):
                if isinstance(node.value, ast.Name) and node.value.id == "os":
                    yield self.finding(
                        ctx,
                        node.lineno,
                        _symbol_for(ctx, node, symbols),
                        f"os.{node.attr} read inside a result-producing package; "
                        f"thread the value through an explicit config field so it "
                        f"reaches the cache key",
                    )
