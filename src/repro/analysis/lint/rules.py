"""Rule framework: the visitor base classes and the rule registry.

Two kinds of rules exist:

* a :class:`Rule` examines one file at a time (``check(ctx)``);
* a :class:`ProjectRule` sees every parsed file plus the linted root at
  once (``check_project(ctxs, root)``) — this is where cross-module
  passes like cache-key purity and the semantic-fingerprint manifest
  live.

Rules self-register through :func:`register`; the engine runs whatever
is in the registry, so adding a rule is: write the class, decorate it,
document it in the catalog (docs/architecture.md), add fixtures.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Type

from .context import ModuleContext
from .findings import ERROR, Finding

#: Packages (top-level directories under src/repro) whose code produces
#: result bits: anything here feeds cycles/IPC/statistics and therefore
#: the persistent result cache.  The determinism rules scope to these.
RESULT_PACKAGES: Set[str] = {"core", "branch", "memory", "trace", "isa", "workloads", "common"}

#: Packages whose classes sit on the per-instruction/per-cycle hot path
#: (the PR 4 ``__slots__`` overhaul); the hot-path hygiene rules scope here.
HOTPATH_PACKAGES: Set[str] = {"core", "memory", "branch"}


class Rule:
    """Base per-file rule; subclass and implement :meth:`check`."""

    id: str = ""
    name: str = ""
    description: str = ""
    severity: str = ERROR

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, line: int, symbol: str, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            file=ctx.rel,
            line=line,
            symbol=symbol,
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """Cross-module rule; sees every file of the run plus the root."""

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_project(
        self, ctxs: Sequence[ModuleContext], root: Path
    ) -> Iterable[Finding]:
        raise NotImplementedError


#: The registry the engine runs, in registration order.
RULES: List[Rule] = []
_RULE_IDS: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (ids must be unique)."""
    if not cls.id or not cls.name:
        raise ValueError(f"rule {cls.__name__} needs an id and a name")
    if cls.id in _RULE_IDS:
        raise ValueError(f"duplicate rule id {cls.id}")
    _RULE_IDS[cls.id] = cls
    RULES.append(cls())
    return cls


def rule_ids() -> List[str]:
    return sorted(_RULE_IDS)


def rule_catalog() -> List[Dict[str, str]]:
    """Machine-readable rule listing (id, name, description)."""
    return [
        {"id": rule.id, "name": rule.name, "description": rule.description}
        for rule in sorted(RULES, key=lambda r: r.id)
    ]


# ---------------------------------------------------------------------------
# Shared AST helpers used by several rule modules
# ---------------------------------------------------------------------------


def class_declares_slots(node: ast.ClassDef) -> bool:
    """True if the class body assigns ``__slots__`` or the dataclass
    decorator passes ``slots=True``."""
    for statement in node.body:
        targets = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
    return False


def is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def dataclass_field_names(node: ast.ClassDef) -> List[str]:
    """Field names of a dataclass body (annotated assignments), in order.

    ClassVar annotations are not dataclass fields and are skipped.
    """
    names: List[str] = []
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            annotation = ast.dump(statement.annotation)
            if "ClassVar" in annotation:
                continue
            names.append(statement.target.id)
    return names


def base_names(node: ast.ClassDef) -> List[str]:
    """Textual base-class names ("Probe", "core.Probe" -> last segment)."""
    out: List[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            out.append(base.id)
        elif isinstance(base, ast.Attribute):
            out.append(base.attr)
    return out


def literal_dict_keys(node: ast.Dict) -> List[str]:
    """String keys of a dict literal (non-constant keys are skipped)."""
    keys: List[str] = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append(key.value)
    return keys
