"""Robustness rules (RPR6xx): failure handling in the sweep substrate.

The fault-tolerance work (retry, quarantine, crash-safe caching,
journals) only holds if failures stay *visible* and writes stay
*atomic*.  These rules police the two patterns that silently erode
both, scoped to the packages that own durable sweep state
(:data:`ROBUST_PACKAGES` — ``experiments`` and ``robustness``):

``RPR601`` (swallowed-exception)
    ``except Exception: pass`` (or a bare ``except``) turns a failing
    cell into a missing result with no journal record, no retry
    accounting, and no quarantine entry.  Narrow handlers
    (``except OSError: pass``) are fine — they document exactly which
    failure is acceptable to drop.

``RPR602`` (non-atomic-write)
    ``open(path, "w")`` + ``json.dump`` without an ``os.replace`` in the
    same function is a torn-file generator: a crash mid-``dump`` leaves
    a half-written JSON file at the *final* path, which a later reader
    must then treat as corruption.  Write to a temp file and
    ``os.replace`` it into place (see ``ResultCache.store`` and
    ``save_trace`` for the idiom).
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from .context import ModuleContext, qualified_symbols
from .determinism import _symbol_for
from .findings import Finding
from .rules import Rule, register

#: Packages that own durable sweep state: the engine/cache/journal side
#: of the repo, where a swallowed failure or a torn write corrupts a
#: *persisted* artifact rather than one in-memory run.
ROBUST_PACKAGES: Set[str] = {"experiments", "robustness"}

#: Exception names broad enough to hide everything.
BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _is_broad(expr: ast.expr) -> bool:
    """True for ``Exception``/``BaseException`` or a tuple containing one."""
    if isinstance(expr, ast.Name):
        return expr.id in BROAD_EXCEPTIONS
    if isinstance(expr, ast.Tuple):
        return any(_is_broad(element) for element in expr.elts)
    return False


def _only_drops(body) -> bool:
    """True when a handler body does nothing but discard the exception."""
    return all(isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in body)


@register
class SwallowedExceptionRule(Rule):
    """RPR601: broad exception handlers that silently drop the failure."""

    id = "RPR601"
    name = "swallowed-exception"
    description = (
        "`except Exception: pass` (or a bare `except`) inside experiments/"
        "robustness hides cell failures from the retry/quarantine/journal "
        "machinery.  Catch the narrow exception you mean, or record the "
        "failure before moving on."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(ROBUST_PACKAGES):
            return
        symbols = qualified_symbols(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                broad = handler.type is None or _is_broad(handler.type)
                if broad and _only_drops(handler.body):
                    caught = (
                        "bare except"
                        if handler.type is None
                        else f"except {ast.unparse(handler.type)}"
                    )
                    yield self.finding(
                        ctx,
                        handler.lineno,
                        _symbol_for(ctx, handler, symbols),
                        f"{caught}: pass swallows every failure silently; "
                        f"catch the specific exception or record the failure "
                        f"(journal/quarantine/log) before continuing",
                    )


def _open_write_call(node: ast.AST):
    """The ``open(..., \"w...\")`` call of a with-item, or None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if not (isinstance(func, ast.Name) and func.id == "open"):
        return None
    mode = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and mode.value.startswith("w")
        and "b" not in mode.value
    ):
        return node
    return None


def _contains_json_dump(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr == "dump"
            and isinstance(child.func.value, ast.Name)
            and child.func.value.id == "json"
        ):
            return True
    return False


def _contains_os_replace(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr == "replace"
            and isinstance(child.func.value, ast.Name)
            and child.func.value.id == "os"
        ):
            return True
    return False


@register
class NonAtomicWriteRule(Rule):
    """RPR602: ``open(..., "w")`` + ``json.dump`` without ``os.replace``."""

    id = "RPR602"
    name = "non-atomic-write"
    description = (
        "`open(path, \"w\")` + `json.dump` without an `os.replace` in the "
        "same function leaves a torn JSON file at the final path if the "
        "process dies mid-write.  Inside experiments/robustness, write to a "
        "temp file and os.replace() it into place (the ResultCache.store / "
        "save_trace idiom)."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(ROBUST_PACKAGES):
            return
        symbols = qualified_symbols(ctx.tree)
        # Scopes that can host the compensating os.replace: the enclosing
        # function if any, else the module.
        scopes = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.With):
                continue
            for item in node.items:
                call = _open_write_call(item.context_expr)
                if call is None:
                    continue
                if not _contains_json_dump(node):
                    continue
                enclosing = None
                for scope in scopes:
                    start = scope.lineno
                    end = getattr(scope, "end_lineno", start)
                    if start <= node.lineno <= end:
                        if enclosing is None or (
                            end - start
                            < getattr(enclosing, "end_lineno", enclosing.lineno)
                            - enclosing.lineno
                        ):
                            enclosing = scope
                host = enclosing if enclosing is not None else ctx.tree
                if _contains_os_replace(host):
                    continue
                yield self.finding(
                    ctx,
                    node.lineno,
                    _symbol_for(ctx, node, symbols),
                    "json.dump into open(..., \"w\") with no os.replace in the "
                    "enclosing function; a crash mid-write tears the file at "
                    "its final path — write a temp file and os.replace it",
                )
