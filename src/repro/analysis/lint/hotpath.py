"""Hot-path hygiene rules (RPR3xx).

PR 4 removed ``__dict__`` from every per-instruction/per-cycle class
(``__slots__`` everywhere on the hot path) — roughly a third of the
kernel speedup.  Both rules here stop that work from silently eroding:
a new class without ``__slots__`` or an attribute invented outside the
initializer re-adds a dict to every instance.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from .context import ModuleContext, qualified_symbols
from .findings import Finding
from .rules import (
    HOTPATH_PACKAGES,
    Rule,
    base_names,
    class_declares_slots,
    register,
)

#: Methods allowed to introduce instance attributes.  ``on_attach`` is
#: the probe lifecycle hook that plays the role of ``__init__`` for
#: per-run observer state (a probe is constructed once but attached to
#: each pipeline it observes).
INITIALIZER_METHODS = {"__init__", "__post_init__", "__new__", "on_attach"}


def _slots_names(node: ast.ClassDef) -> Set[str]:
    """Names listed in a ``__slots__`` assignment, if statically visible."""
    names: Set[str] = set()
    for statement in node.body:
        value = None
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    value = statement.value
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name) and statement.target.id == "__slots__":
                value = statement.value
        if value is not None and isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    names.add(element.value)
    return names


def _annotated_names(node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
            names.add(statement.target.id)
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _self_attr_assignments(fn: ast.AST) -> Iterable[ast.Attribute]:
    """``self.<x> = ...`` / ``self.<x>: T = ...`` / aug-assign targets in fn."""
    for node in ast.walk(fn):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        elif isinstance(node, ast.AugAssign):
            # self.x += 1 requires x to exist already, so it cannot
            # introduce a new attribute; skip.
            continue
        for target in targets:
            nodes = [target]
            if isinstance(target, ast.Tuple):
                nodes = list(target.elts)
            for item in nodes:
                if (
                    isinstance(item, ast.Attribute)
                    and isinstance(item.value, ast.Name)
                    and item.value.id == "self"
                ):
                    yield item


@register
class MissingSlotsRule(Rule):
    """RPR301: hot-path class without ``__slots__``."""

    id = "RPR301"
    name = "missing-slots"
    description = (
        "Classes in core/, memory/, branch/ are instantiated on the "
        "per-instruction or per-cycle path; without __slots__ (or "
        "@dataclass(slots=True)) every instance carries a __dict__, undoing "
        "the PR 4 hot-path overhaul.  Exception classes are exempt (they "
        "need __dict__-compatible BaseException machinery and are off the "
        "hot path by definition)."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(HOTPATH_PACKAGES):
            return
        symbols = qualified_symbols(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = base_names(node)
            if any(name.endswith(("Error", "Exception", "Warning")) for name in bases):
                continue
            if any(name in ("Enum", "IntEnum", "StrEnum", "Flag", "IntFlag", "Protocol") for name in bases):
                continue
            if not class_declares_slots(node):
                yield self.finding(
                    ctx,
                    node.lineno,
                    symbols.get(node, node.name),
                    f"class {node.name} in a hot-path package lacks __slots__ "
                    f"(or @dataclass(slots=True)); every instance pays for a "
                    f"__dict__",
                )


@register
class AttrOutsideInitRule(Rule):
    """RPR302: instance attribute invented outside the initializer."""

    id = "RPR302"
    name = "attr-outside-init"
    description = (
        "Assigning a brand-new self.<attr> outside __init__/__post_init__/"
        "__new__/on_attach hides the full shape of the object from __slots__ "
        "and from readers.  Declare the attribute in the initializer (use a "
        "None/0 sentinel) and only update it elsewhere.  Re-assigning an "
        "attribute the initializer already declared (reset(), restore()...) "
        "is fine and not flagged.  Declarations made by base classes defined "
        "in the same module count (subclasses may update inherited state)."
    )

    @staticmethod
    def _own_declared(node: ast.ClassDef) -> Set[str]:
        declared: Set[str] = set()
        declared |= _slots_names(node)
        declared |= _annotated_names(node)
        for item in node.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name in INITIALIZER_METHODS
            ):
                for attr in _self_attr_assignments(item):
                    declared.add(attr.attr)
        return declared

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(HOTPATH_PACKAGES):
            return
        symbols = qualified_symbols(ctx.tree)
        classes = [
            node for node in ast.walk(ctx.tree) if isinstance(node, ast.ClassDef)
        ]
        by_name = {node.name: node for node in classes}
        own = {node.name: self._own_declared(node) for node in classes}

        def inherited(name: str, seen: Set[str]) -> Set[str]:
            if name in seen or name not in by_name:
                return set()
            seen.add(name)
            out = set(own[name])
            for base in base_names(by_name[name]):
                out |= inherited(base, seen)
            return out

        for node in classes:
            declared = inherited(node.name, set())
            methods = [
                item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            for method in methods:
                if method.name in INITIALIZER_METHODS:
                    continue
                for attr in _self_attr_assignments(method):
                    if attr.attr not in declared:
                        declared.add(attr.attr)  # report each attr once
                        yield self.finding(
                            ctx,
                            attr.lineno,
                            f"{symbols.get(node, node.name)}.{method.name}",
                            f"self.{attr.attr} is first assigned in {method.name}(), "
                            f"outside the initializer; declare it in __init__ so "
                            f"__slots__ and readers see the object's full shape",
                        )
