"""Deprecated-shim rule (RPR5xx).

``repro.api`` is the one supported entry surface.  The legacy names
(``Processor``, ``simulate``, ``build_pipeline``) are kept importable
for external callers but internal code that reaches for them bypasses
the api layer's normalization (config coercion, machine registry,
sampling plumbing) and keeps the shims load-bearing forever.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .context import ModuleContext
from .findings import Finding
from .rules import Rule, register

#: Legacy symbols and the module suffixes they historically live in.
SHIM_SYMBOLS = {"Processor", "simulate", "build_pipeline"}

#: Files allowed to import the shims: the package __init__ re-exports
#: them for external compatibility, the api facade wraps them, and the
#: defining modules obviously reference themselves.
ALLOWED_FILES = {
    "__init__.py",
    "api.py",
    "core/__init__.py",
    "core/processor.py",
    "core/pipeline.py",
}


def _is_shim_module(module: str) -> bool:
    """True for modules that define/re-export the legacy entry points."""
    last = module.rsplit(".", 1)[-1]
    return last in ("processor", "pipeline", "repro") or module in ("repro", "")


@register
class DeprecatedShimRule(Rule):
    """RPR501: internal import of a deprecated entry-point shim."""

    id = "RPR501"
    name = "deprecated-shim"
    description = (
        "Internal modules must go through repro.api (api.run/api.sweep/"
        "api.build) instead of importing the legacy Processor/simulate/"
        "build_pipeline shims; the shims skip api-layer normalization and "
        "only exist for external callers."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.rel in ALLOWED_FILES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            module = node.module or ""
            # Relative imports: node.level > 0, module may be "core.processor"
            # or similar; absolute: "repro.core.processor".
            if module.endswith(".api") or module == "api":
                continue  # the supported surface
            if not _is_shim_module(module):
                continue
            for alias in node.names:
                if alias.name in SHIM_SYMBOLS:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        "<module>",
                        f"imports deprecated shim `{alias.name}` from "
                        f"`{module or '.'}`; use repro.api instead "
                        f"(api.run / api.build / api.sweep)",
                    )
