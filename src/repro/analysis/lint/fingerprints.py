"""Semantic fingerprints (RPR202): version bumps become machine-checked.

The rule used to be tribal: "if you change simulator semantics, bump
``repro.__version__`` so the result cache invalidates."  This module
replaces memory with a committed manifest
(``src/repro/analysis/fingerprints.json``) mapping every simulator
module to a hash of its *normalized* AST (docstrings stripped, so
comment/doc edits don't demand bumps).  CI fails when a fingerprinted
module changes while ``__version__`` stays put; the sanctioned flow is::

    # edit core/pipeline.py ...
    # bump __version__ in src/repro/__init__.py
    repro lint --update-fingerprints

``--update-fingerprints`` refuses to re-stamp at an unchanged version
(that would just launder the semantic change past the cache) unless
``--allow-same-version`` is passed — reserved for provably
result-identical refactors.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .context import ModuleContext
from .findings import Finding
from .rules import ProjectRule, register

#: Manifest location, relative to the linted package root.
MANIFEST_REL = "analysis/fingerprints.json"

#: Top-level packages whose every module is simulator-semantic.
FINGERPRINT_PACKAGES = {"core", "branch", "memory", "isa", "trace", "workloads"}

#: Individual modules outside those packages that also carry semantics.
FINGERPRINT_FILES = {"common/config.py", "common/stats.py"}


def is_fingerprinted(rel: str) -> bool:
    if rel in FINGERPRINT_FILES:
        return True
    top = rel.split("/", 1)[0] if "/" in rel else ""
    return top in FINGERPRINT_PACKAGES


def _strip_docstrings(tree: ast.Module) -> ast.Module:
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                node.body = body[1:] or [ast.Pass()]
    return tree


def module_fingerprint(source: str) -> str:
    """sha256 of the docstring-stripped AST dump of ``source``."""
    tree = _strip_docstrings(ast.parse(source))
    normalized = ast.dump(tree, include_attributes=False)
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()


def compute_fingerprints(ctxs: Sequence[ModuleContext]) -> Dict[str, str]:
    """rel-path -> fingerprint for every fingerprinted module in the run."""
    out: Dict[str, str] = {}
    for ctx in ctxs:
        if is_fingerprinted(ctx.rel):
            out[ctx.rel] = module_fingerprint("\n".join(ctx.lines))
    return out


def read_static_version(root: Path) -> Optional[str]:
    """``__version__`` of the package at ``root`` without importing it."""
    init = root / "__init__.py"
    if not init.is_file():
        return None
    try:
        tree = ast.parse(init.read_text(encoding="utf-8"))
    except SyntaxError:
        return None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "__version__"
                    and isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    return node.value.value
    return None


def load_manifest(root: Path) -> Optional[Dict]:
    path = root / MANIFEST_REL
    if not path.is_file():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def write_manifest(root: Path, version: str, modules: Dict[str, str]) -> Path:
    path = root / MANIFEST_REL
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "simulator_version": version,
        "modules": {rel: modules[rel] for rel in sorted(modules)},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    return path


def update_fingerprints(
    root: Path,
    ctxs: Sequence[ModuleContext],
    allow_same_version: bool = False,
) -> Tuple[Path, List[str]]:
    """Re-stamp the manifest; returns (path, modules whose hash changed).

    Raises ``ValueError`` when the stamp would stay at the version the
    existing manifest already records while hashes changed — re-stamping
    then would hide a semantic change from the result cache.
    """
    version = read_static_version(root)
    if version is None:
        raise ValueError(f"{root}/__init__.py defines no static __version__")
    current = compute_fingerprints(ctxs)
    manifest = load_manifest(root)
    changed: List[str] = []
    if manifest is not None:
        old = manifest.get("modules", {})
        changed = sorted(
            set(rel for rel in current if current[rel] != old.get(rel))
            | (set(old) - set(current))
        )
        if (
            changed
            and manifest.get("simulator_version") == version
            and not allow_same_version
        ):
            raise ValueError(
                f"refusing to re-stamp fingerprints at unchanged version "
                f"{version} (changed: {', '.join(changed)}); bump "
                f"repro.__version__ first, or pass --allow-same-version for "
                f"a provably result-identical refactor"
            )
    return write_manifest(root, version, current), changed


@register
class SemanticFingerprintRule(ProjectRule):
    """RPR202: simulator semantics changed without a version bump."""

    id = "RPR202"
    name = "semantic-fingerprint"
    description = (
        "Hashes the normalized ASTs of every simulator module against the "
        "committed manifest (analysis/fingerprints.json).  A hash that moved "
        "while repro.__version__ stayed put means cached results keyed at "
        "this version no longer match what the simulator computes; bump "
        "__version__ and run `repro lint --update-fingerprints`."
    )

    def check_project(
        self, ctxs: Sequence[ModuleContext], root: Path
    ) -> Iterable[Finding]:
        version = read_static_version(root)
        if version is None:
            return  # not a simulator package root (e.g. a fixture tree)
        manifest_rel = MANIFEST_REL
        manifest = load_manifest(root)
        if manifest is None:
            yield self.finding_at(
                manifest_rel,
                "<manifest>",
                "fingerprint manifest is missing; run "
                "`repro lint --update-fingerprints` and commit the result",
            )
            return
        stamped = manifest.get("simulator_version")
        if stamped != version:
            yield self.finding_at(
                manifest_rel,
                "<manifest>",
                f"fingerprint manifest is stamped at version {stamped!r} but "
                f"repro.__version__ is {version!r}; run "
                f"`repro lint --update-fingerprints` to re-stamp",
            )
            return
        old = manifest.get("modules", {})
        current = compute_fingerprints(ctxs)
        for rel in sorted(set(old) | set(current)):
            if rel not in current:
                yield self.finding_at(
                    manifest_rel,
                    rel,
                    f"fingerprinted module {rel} was removed without a "
                    f"repro.__version__ bump; cached results at {version} may "
                    f"be stale",
                )
            elif rel not in old:
                yield self.finding_at(
                    rel,
                    rel,
                    f"new simulator module {rel} is not in the fingerprint "
                    f"manifest; bump repro.__version__ (if semantics changed) "
                    f"and run `repro lint --update-fingerprints`",
                )
            elif current[rel] != old[rel]:
                yield self.finding_at(
                    rel,
                    rel,
                    f"semantic fingerprint of {rel} changed while "
                    f"repro.__version__ stayed at {version}; cached results "
                    f"keyed at this version are now stale — bump __version__ "
                    f"and run `repro lint --update-fingerprints`",
                )

    def finding_at(self, file: str, symbol: str, message: str) -> Finding:
        return Finding(
            rule=self.id,
            file=file,
            line=0,
            symbol=symbol,
            message=message,
            severity=self.severity,
        )
