"""``repro.analysis.lint`` — the simulator-aware static-analysis engine.

Public surface::

    from repro.analysis.lint import run_lint, LintEngine, LintReport, Finding

    report = run_lint()           # lint the installed repro package
    report.ok                     # True when no findings survive
    report.to_dict()              # JSON-ready, deterministic order

Rule families (the catalog lives in docs/architecture.md):

* RPR000        parse error (engine-emitted)
* RPR001/002    baseline hygiene: stale entries, missing reasons
* RPR101-105    determinism: ambient random, wall clock, id() ordering,
                set-order materialization, environment reads
* RPR201        cache-key purity: config fields vs to_dict/cell_cache_key
* RPR202        semantic fingerprints vs repro.__version__
* RPR301/302    hot-path hygiene: __slots__, attrs outside __init__
* RPR401        probe contract: on_cycle without on_idle_cycles
* RPR501        deprecated entry-point shims instead of repro.api
"""

from .baseline import META_RULES, BaselineEntry, load_baseline
from .engine import BASELINE_REL, PARSE_ERROR, LintEngine, default_root, run_lint
from .findings import ERROR, WARNING, Finding, LintReport
from .fingerprints import (
    MANIFEST_REL,
    compute_fingerprints,
    module_fingerprint,
    read_static_version,
    update_fingerprints,
)
from .rules import RULES, ProjectRule, Rule, register, rule_catalog, rule_ids

__all__ = [
    "BASELINE_REL",
    "BaselineEntry",
    "ERROR",
    "Finding",
    "LintEngine",
    "LintReport",
    "MANIFEST_REL",
    "META_RULES",
    "PARSE_ERROR",
    "ProjectRule",
    "RULES",
    "Rule",
    "WARNING",
    "compute_fingerprints",
    "default_root",
    "load_baseline",
    "module_fingerprint",
    "read_static_version",
    "register",
    "rule_catalog",
    "rule_ids",
    "run_lint",
    "update_fingerprints",
]
