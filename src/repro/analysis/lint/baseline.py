"""Committed baseline: grandfathered findings, with mandatory reasons.

The baseline (``src/repro/analysis/lint_baseline.json``) is a list of
entries ``{"rule", "file", "symbol", "reason"}``.  Matching is by
``(rule, file, symbol)`` — never by line number — so entries survive
unrelated edits.  Two meta-rules keep the file honest:

* **RPR001 (stale-baseline)**: an entry that matches no current finding
  is itself an error — fix-forward deletes its baseline entry in the
  same commit, or the suppression outlives the problem and hides the
  next one.
* **RPR002 (missing-reason)**: every baseline entry and every inline
  ``# lint: ignore[...]`` must say *why*.  A suppression without a
  justification is indistinguishable from giving up.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .context import ModuleContext
from .findings import Finding

STALE_BASELINE = "RPR001"
MISSING_REASON = "RPR002"

#: Documented alongside the registry rules even though these two are
#: emitted by the baseline machinery itself rather than an AST pass.
META_RULES = [
    {
        "id": STALE_BASELINE,
        "name": "stale-baseline",
        "description": (
            "A baseline entry matches no current finding; delete it in the "
            "same commit that fixed the underlying issue."
        ),
    },
    {
        "id": MISSING_REASON,
        "name": "missing-reason",
        "description": (
            "A baseline entry or inline `# lint: ignore[...]` comment has no "
            "justification; every suppression must say why."
        ),
    },
]


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    file: str
    symbol: str
    reason: str

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.file, self.symbol)


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Parse the committed baseline file (missing file -> empty baseline)."""
    if not path.is_file():
        return []
    raw = json.loads(path.read_text(encoding="utf-8"))
    entries = raw.get("entries", raw) if isinstance(raw, dict) else raw
    out: List[BaselineEntry] = []
    for item in entries:
        out.append(
            BaselineEntry(
                rule=str(item.get("rule", "")),
                file=str(item.get("file", "")),
                symbol=str(item.get("symbol", "")),
                reason=str(item.get("reason", "")).strip(),
            )
        )
    return out


def apply_baseline(
    findings: Sequence[Finding],
    entries: Sequence[BaselineEntry],
    baseline_rel: str,
) -> Tuple[List[Finding], int]:
    """Filter baselined findings; emit RPR001/RPR002 for bad entries.

    Returns (surviving findings + meta findings, baselined count).
    """
    by_key: Dict[Tuple[str, str, str], BaselineEntry] = {}
    for entry in entries:
        by_key[entry.key()] = entry

    survivors: List[Finding] = []
    matched: set = set()
    baselined = 0
    for finding in findings:
        entry = by_key.get(finding.baseline_key())
        if entry is not None:
            matched.add(entry.key())
            baselined += 1
        else:
            survivors.append(finding)

    for entry in entries:
        if entry.key() not in matched:
            survivors.append(
                Finding(
                    rule=STALE_BASELINE,
                    file=baseline_rel,
                    line=0,
                    symbol=f"{entry.rule}:{entry.file}:{entry.symbol}",
                    message=(
                        f"baseline entry ({entry.rule} {entry.file} "
                        f"[{entry.symbol}]) matches no current finding; the "
                        f"issue is fixed — delete the entry"
                    ),
                )
            )
        if not entry.reason:
            survivors.append(
                Finding(
                    rule=MISSING_REASON,
                    file=baseline_rel,
                    line=0,
                    symbol=f"{entry.rule}:{entry.file}:{entry.symbol}",
                    message=(
                        f"baseline entry ({entry.rule} {entry.file} "
                        f"[{entry.symbol}]) has no reason; every suppression "
                        f"must justify itself"
                    ),
                )
            )
    return survivors, baselined


def suppression_reason_findings(ctxs: Sequence[ModuleContext]) -> List[Finding]:
    """RPR002 findings for inline suppressions that carry no reason."""
    out: List[Finding] = []
    for ctx in ctxs:
        for suppression in ctx.suppressions:
            if not suppression.reason:
                out.append(
                    Finding(
                        rule=MISSING_REASON,
                        file=ctx.rel,
                        line=suppression.line,
                        symbol="<suppression>",
                        message=(
                            "inline lint: ignore comment has no reason; write "
                            "`# lint: ignore[RPRxxx] <why>`"
                        ),
                    )
                )
    return out
