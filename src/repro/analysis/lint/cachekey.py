"""Cache-key purity rule (RPR201).

The persistent result cache is only sound if every field that can alter
simulation output reaches the cache key.  Two ways that breaks:

* a dataclass with a hand-written literal ``to_dict`` gains a field the
  dict never mentions (``dataclasses.asdict``-based ``to_dict``s are
  immune — they pick up new fields automatically);
* ``SweepSpec`` gains a semantic field that never reaches the
  ``cell_cache_key`` payload.

Both are invisible at runtime — the cache silently serves stale results
— which is exactly why this is a static check.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Sequence, Set

from .context import ModuleContext, qualified_symbols
from .findings import Finding
from .rules import (
    RESULT_PACKAGES,
    ProjectRule,
    dataclass_field_names,
    is_dataclass,
    register,
)

#: Packages whose to_dicts feed cache keys (configs and sweep specs).
#: Report/diagnostic dataclasses elsewhere (e.g. fuzz reports) may
#: rename or summarize fields in their serializations freely.
CACHE_KEY_PACKAGES = RESULT_PACKAGES | {"experiments"}

#: SweepSpec fields that are not semantic: ``name`` is a label, and the
#: plural fan-out fields are expanded into per-cell singular keys, which
#: the singular-form check below accounts for on its own.
SWEEPSPEC_NONSEMANTIC = {"name"}

#: Keys the ``cell_cache_key`` payload must always carry, whatever else
#: it grows: these pin a result to (what ran) x (which simulator).
REQUIRED_CELL_KEY_FIELDS = {"config", "suite", "workload", "scale", "simulator_version"}


def _returns_asdict(fn: ast.AST) -> bool:
    """True if any return in fn is ``[dataclasses.]asdict(self[, ...])``."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
            func = node.value.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name == "asdict":
                return True
    return False


def _string_constants(fn: ast.AST) -> Set[str]:
    return {
        node.value
        for node in ast.walk(fn)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def _dict_literal_keys(fn: ast.AST) -> Set[str]:
    keys: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, ast.Call):
            # payload["sampling"] = ... style additions appear as
            # Subscript stores; dict(a=1) style as keywords.
            for keyword in node.keywords:
                if keyword.arg:
                    keys.add(keyword.arg)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    index = target.slice
                    if isinstance(index, ast.Constant) and isinstance(index.value, str):
                        keys.add(index.value)
    return keys


def _find_method(node: ast.ClassDef, name: str):
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) and item.name == name:
            return item
    return None


@register
class CacheKeyPurityRule(ProjectRule):
    """RPR201: config field that never reaches the cache key."""

    id = "RPR201"
    name = "cache-key-purity"
    description = (
        "Every dataclass field of a config object must reach its to_dict/"
        "stable_hash serialization, and every semantic SweepSpec field must "
        "reach the cell_cache_key payload; otherwise the result cache serves "
        "stale entries when that field changes.  asdict-based to_dicts are "
        "immune; hand-written literal dicts are checked field by field."
    )

    # -- per-file: dataclasses with hand-written to_dict -------------------

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(CACHE_KEY_PACKAGES):
            return
        symbols = qualified_symbols(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not is_dataclass(node):
                continue
            to_dict = _find_method(node, "to_dict")
            if to_dict is None:
                continue
            if _returns_asdict(to_dict):
                continue  # picks up new fields automatically
            serialized = _dict_literal_keys(to_dict)
            missing = [
                fieldname
                for fieldname in dataclass_field_names(node)
                if fieldname not in serialized
            ]
            if missing:
                yield self.finding(
                    ctx,
                    to_dict.lineno,
                    symbols.get(node, node.name),
                    f"{node.name}.to_dict() is a literal dict that omits "
                    f"dataclass field(s) {', '.join(sorted(missing))}; the "
                    f"cache key will not change when they do — add them or "
                    f"switch to dataclasses.asdict",
                )

    # -- cross-module: SweepSpec fields vs cell_cache_key payload ----------

    def check_project(
        self, ctxs: Sequence[ModuleContext], root: Path
    ) -> Iterable[Finding]:
        sweep = next((ctx for ctx in ctxs if ctx.rel == "experiments/sweep.py"), None)
        if sweep is None:
            return
        cell_key_fn = None
        sweep_spec = None
        for node in ast.walk(sweep.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "cell_cache_key":
                cell_key_fn = node
            elif isinstance(node, ast.ClassDef) and node.name == "SweepSpec":
                sweep_spec = node
        if cell_key_fn is None:
            yield self.finding(
                sweep,
                0,
                "cell_cache_key",
                "experiments/sweep.py no longer defines cell_cache_key(); the "
                "cache-key purity check cannot anchor — restore it or update "
                "the lint rule alongside the refactor",
            )
            return
        payload_keys = _string_constants(cell_key_fn) | _dict_literal_keys(cell_key_fn)
        for required in sorted(REQUIRED_CELL_KEY_FIELDS - payload_keys):
            yield self.finding(
                sweep,
                cell_key_fn.lineno,
                "cell_cache_key",
                f"cell_cache_key() payload no longer carries '{required}'; "
                f"results would collide across different {required} values",
            )
        if sweep_spec is None:
            return
        for fieldname in dataclass_field_names(sweep_spec):
            if fieldname in SWEEPSPEC_NONSEMANTIC:
                continue
            singular = fieldname[:-1] if fieldname.endswith("s") else fieldname
            if fieldname in payload_keys or singular in payload_keys:
                continue
            yield self.finding(
                sweep,
                sweep_spec.lineno,
                "SweepSpec",
                f"SweepSpec field '{fieldname}' never reaches the "
                f"cell_cache_key payload; a sweep differing only in "
                f"'{fieldname}' would reuse stale cached cells — add it to "
                f"the payload or list it in SWEEPSPEC_NONSEMANTIC with a "
                f"justification",
            )
