"""Finding objects: what a lint rule reports and how it serializes.

A :class:`Finding` names the violated rule, where it happened
(repo-relative file, 1-based line) and *which symbol* it is about
(``symbol`` — usually a dotted class or function path).  The symbol is
what the committed baseline matches on, so baselined findings survive
unrelated edits that move line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


#: Finding severities.  Every shipped rule reports ``error`` — the lint
#: gate is binary by design (a "warning" that cannot fail CI decays into
#: noise); the level exists so downstream tooling can grade custom rules.
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str  #: rule id, e.g. "RPR104"
    file: str  #: path relative to the linted package root (posix form)
    line: int  #: 1-based line number (0 for whole-file/project findings)
    symbol: str  #: dotted symbol the finding is about (baseline match key)
    message: str
    severity: str = ERROR

    def sort_key(self) -> tuple:
        return (self.file, self.line, self.rule, self.symbol)

    def baseline_key(self) -> tuple:
        """Identity used to match committed baseline entries (no line)."""
        return (self.rule, self.file, self.symbol)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "file": self.file,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }

    def format(self) -> str:
        location = f"{self.file}:{self.line}" if self.line else self.file
        return f"{location}: {self.rule} [{self.symbol}] {self.message}"


@dataclass
class LintReport:
    """Everything one lint run produced, in deterministic order."""

    findings: list = field(default_factory=list)
    files_checked: int = 0
    rules_run: int = 0
    suppressed: int = 0  #: findings silenced by inline ``lint: ignore``
    baselined: int = 0  #: findings matched by committed baseline entries

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules_run": self.rules_run,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def summary(self) -> str:
        status = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        extras = []
        if self.baselined:
            extras.append(f"{self.baselined} baselined")
        if self.suppressed:
            extras.append(f"{self.suppressed} suppressed inline")
        suffix = f" ({', '.join(extras)})" if extras else ""
        return (
            f"repro lint: {status} across {self.files_checked} file(s), "
            f"{self.rules_run} rule(s){suffix}"
        )
