"""Occupancy analysis: in-flight and live instruction distributions.

These helpers post-process the per-cycle occupancy statistics recorded by
the pipeline into the quantities Figures 7 and 11 of the paper report:
percentiles of the in-flight distribution (weighted by cycles) and the
average number of live (not-yet-issued) instructions, split into
"blocked behind a long-latency load" and "blocked for a short time".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from ..core.result import SimulationResult

#: The percentiles the paper annotates in Figure 7.
FIGURE7_PERCENTILES = (0.10, 0.25, 0.50, 0.75, 0.90)


def _distribution_weights(result: SimulationResult, name: str) -> Dict[int, int]:
    """Extract the weighted distribution recorded under ``name``."""
    blob = result.stats.get(name)
    if not isinstance(blob, dict):
        return {}
    weights = blob.get("weights", {})
    if not isinstance(weights, dict):
        return {}
    return {int(value): int(count) for value, count in weights.items()}


def weighted_percentile(weights: Mapping[int, int], fraction: float) -> int:
    """Smallest value v such that at least ``fraction`` of the weight is <= v."""
    total = sum(weights.values())
    if total == 0:
        return 0
    target = fraction * total
    cumulative = 0
    for value in sorted(weights):
        cumulative += weights[value]
        if cumulative >= target:
            return value
    return max(weights)


def weighted_mean(weights: Mapping[int, int]) -> float:
    total = sum(weights.values())
    if total == 0:
        return 0.0
    return sum(value * count for value, count in weights.items()) / total


@dataclass
class OccupancyProfile:
    """Summary of one run's window occupancy (the Figure 7 quantities)."""

    workload: str
    in_flight_percentiles: Dict[float, int]
    mean_in_flight: float
    mean_live: float
    mean_live_fp_long: float
    mean_live_fp_short: float

    @property
    def mean_live_fp(self) -> float:
        return self.mean_live_fp_long + self.mean_live_fp_short

    @property
    def live_fraction(self) -> float:
        """Live instructions as a fraction of in-flight instructions."""
        if self.mean_in_flight == 0:
            return 0.0
        return self.mean_live / self.mean_in_flight


def occupancy_profile(
    result: SimulationResult,
    percentiles: Sequence[float] = FIGURE7_PERCENTILES,
) -> OccupancyProfile:
    """Build the Figure-7 style occupancy profile of one simulation run."""
    weights = _distribution_weights(result, "occupancy.in_flight_dist")
    return OccupancyProfile(
        workload=result.workload,
        in_flight_percentiles={
            fraction: weighted_percentile(weights, fraction) for fraction in percentiles
        },
        mean_in_flight=result.mean_in_flight,
        mean_live=result.mean_live,
        mean_live_fp_long=result.mean_live_fp_long,
        mean_live_fp_short=result.mean_live_fp_short,
    )


def average_profiles(profiles: Sequence[OccupancyProfile]) -> OccupancyProfile:
    """Average several per-workload profiles (the paper averages SPEC2000fp)."""
    if not profiles:
        raise ValueError("need at least one profile to average")
    keys = profiles[0].in_flight_percentiles.keys()
    return OccupancyProfile(
        workload="average",
        in_flight_percentiles={
            key: int(sum(p.in_flight_percentiles.get(key, 0) for p in profiles) / len(profiles))
            for key in keys
        },
        mean_in_flight=sum(p.mean_in_flight for p in profiles) / len(profiles),
        mean_live=sum(p.mean_live for p in profiles) / len(profiles),
        mean_live_fp_long=sum(p.mean_live_fp_long for p in profiles) / len(profiles),
        mean_live_fp_short=sum(p.mean_live_fp_short for p in profiles) / len(profiles),
    )


def mean_in_flight(results: Sequence[SimulationResult]) -> float:
    """Average in-flight instruction count across runs (Figure 11 bars)."""
    if not results:
        return 0.0
    return sum(result.mean_in_flight for result in results) / len(results)
