"""Post-processing of simulation results: occupancy, breakdowns, reports."""

from .breakdown import (
    FIGURE12_ORDER,
    RetirementBreakdown,
    average_breakdown,
    retirement_breakdown,
)
from .occupancy import (
    FIGURE7_PERCENTILES,
    OccupancyProfile,
    average_profiles,
    mean_in_flight,
    occupancy_profile,
    weighted_mean,
    weighted_percentile,
)
from .report import format_bar_chart, format_stacked_percentages, format_table, indent

__all__ = [
    "FIGURE12_ORDER",
    "RetirementBreakdown",
    "average_breakdown",
    "retirement_breakdown",
    "FIGURE7_PERCENTILES",
    "OccupancyProfile",
    "average_profiles",
    "mean_in_flight",
    "occupancy_profile",
    "weighted_mean",
    "weighted_percentile",
    "format_bar_chart",
    "format_stacked_percentages",
    "format_table",
    "indent",
]
