"""Post-processing of simulation results, plus static analysis.

Two halves live here:

* result post-processing (occupancy, breakdowns, reports) — the
  original contents of this package;
* :mod:`repro.analysis.lint` — the simulator-aware static-analysis
  engine behind ``repro lint``, together with its committed artifacts
  (``fingerprints.json``, ``lint_baseline.json``).
"""

from .breakdown import (
    FIGURE12_ORDER,
    RetirementBreakdown,
    average_breakdown,
    retirement_breakdown,
)
from .occupancy import (
    FIGURE7_PERCENTILES,
    OccupancyProfile,
    average_profiles,
    mean_in_flight,
    occupancy_profile,
    weighted_mean,
    weighted_percentile,
)
from .report import format_bar_chart, format_stacked_percentages, format_table, indent

# The lint subpackage is imported lazily (see __getattr__ below) so that
# `import repro.analysis` for occupancy math does not pay for parsing the
# rule registry.

__all__ = [
    "Finding",
    "LintEngine",
    "LintReport",
    "run_lint",
    "FIGURE12_ORDER",
    "RetirementBreakdown",
    "average_breakdown",
    "retirement_breakdown",
    "FIGURE7_PERCENTILES",
    "OccupancyProfile",
    "average_profiles",
    "mean_in_flight",
    "occupancy_profile",
    "weighted_mean",
    "weighted_percentile",
    "format_bar_chart",
    "format_stacked_percentages",
    "format_table",
    "indent",
]

_LINT_EXPORTS = {"Finding", "LintEngine", "LintReport", "run_lint"}


def __getattr__(name):
    if name in _LINT_EXPORTS or name == "lint":
        from . import lint

        if name == "lint":
            return lint
        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
