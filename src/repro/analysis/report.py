"""Plain-text reporting: aligned tables and ASCII bar charts.

The experiment harness prints its results through these helpers so the
benchmark output looks like the rows/series the paper reports, without any
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        # Union of keys across rows, in order of first appearance, so rows
        # with extra summary columns still display them.
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(str(column)), max((len(row[index]) for row in rendered), default=0))
        for index, column in enumerate(columns)
    ]
    lines = []
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    max_value: Optional[float] = None,
) -> str:
    """Render labelled values as horizontal ASCII bars."""
    if not values:
        return "(no data)"
    peak = max_value if max_value is not None else max(values.values())
    peak = peak if peak > 0 else 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        bar_length = int(round(width * value / peak)) if peak else 0
        bar = "#" * max(0, bar_length)
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.3f}{unit}")
    return "\n".join(lines)


def format_stacked_percentages(
    stacks: Mapping[str, Mapping[str, float]],
    categories: Sequence[str],
) -> str:
    """Render stacked-percentage data (Figure 12 style) as a table."""
    rows = []
    for label, stack in stacks.items():
        row: Dict[str, object] = {"config": label}
        for category in categories:
            row[category] = f"{stack.get(category, 0.0):.1f}%"
        rows.append(row)
    return format_table(rows, columns=["config", *categories])


def indent(text: str, prefix: str = "  ") -> str:
    """Indent every line of ``text`` (used when nesting reports)."""
    return "\n".join(prefix + line for line in text.splitlines())
