"""Plain-text reporting: aligned tables and ASCII bar charts.

The experiment harness prints its results through these helpers so the
benchmark output looks like the rows/series the paper reports, without any
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        # Union of keys across rows, in order of first appearance, so rows
        # with extra summary columns still display them.
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(str(column)), max((len(row[index]) for row in rendered), default=0))
        for index, column in enumerate(columns)
    ]
    lines = []
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    max_value: Optional[float] = None,
) -> str:
    """Render labelled values as horizontal ASCII bars."""
    if not values:
        return "(no data)"
    peak = max_value if max_value is not None else max(values.values())
    peak = peak if peak > 0 else 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        bar_length = int(round(width * value / peak)) if peak else 0
        bar = "#" * max(0, bar_length)
        lines.append(f"{label.ljust(label_width)}  {bar} {value:.3f}{unit}")
    return "\n".join(lines)


def format_stacked_percentages(
    stacks: Mapping[str, Mapping[str, float]],
    categories: Sequence[str],
) -> str:
    """Render stacked-percentage data (Figure 12 style) as a table."""
    rows = []
    for label, stack in stacks.items():
        row: Dict[str, object] = {"config": label}
        for category in categories:
            row[category] = f"{stack.get(category, 0.0):.1f}%"
        rows.append(row)
    return format_table(rows, columns=["config", *categories])


#: Stage mark characters of the ASCII pipeline timeline, in stage order.
TIMELINE_STAGES = (
    ("fetch", "F"),
    ("dispatch", "D"),
    ("issue", "I"),
    ("complete", "C"),
    ("commit", "R"),
)


def format_timeline(
    rows: Sequence[Mapping[str, object]],
    width: int = 100,
) -> str:
    """Render per-instruction lifecycle rows as a Konata-style timeline.

    Each row is one instruction with per-stage cycle numbers under the
    keys ``fetch``/``dispatch``/``issue``/``complete``/``commit`` (None
    when the stage never happened, e.g. on squashed instructions) plus
    ``seq``, ``label`` and a ``squashed`` flag.  One text lane per
    instruction: ``F`` fetch, ``D`` dispatch, ``I`` issue, ``=``
    executing, ``C`` complete (write-back), ``R`` retire/commit, ``.``
    waiting in a queue, ``x`` the squash point.  When the cycle span
    exceeds ``width`` columns, each column covers several cycles (noted
    in the header).  Front-end bubbles wider than one cycle between
    consecutive instructions get an explicit gap line.
    """
    stage_keys = [key for key, _mark in TIMELINE_STAGES]
    drawable = [
        row
        for row in rows
        if any(isinstance(row.get(key), int) for key in stage_keys)
    ]
    if not drawable:
        return "(no timeline events)"
    cycles = [
        int(row[key])  # type: ignore[arg-type]
        for row in drawable
        for key in stage_keys
        if isinstance(row.get(key), int)
    ]
    lo, hi = min(cycles), max(cycles)
    span = hi - lo + 1
    scale = max(1, -(-span // max(10, width)))  # ceil; never below 10 columns
    columns = -(-span // scale)

    def column(cycle: int) -> int:
        return (cycle - lo) // scale

    lines = [
        f"cycles {lo}..{hi}"
        + (f" ({scale} cycles/column)" if scale > 1 else "")
        + "  [F fetch, D dispatch, I issue, = execute, C complete, R commit,"
        + " . wait, x squash]"
    ]
    previous_fetch: Optional[int] = None
    for row in drawable:
        fetch = row.get("fetch")
        if (
            isinstance(fetch, int)
            and isinstance(previous_fetch, int)
            and fetch - previous_fetch > 1
        ):
            lines.append(f"{'':>8} -- fetch gap: {fetch - previous_fetch - 1} cycle(s) --")
        if isinstance(fetch, int):
            previous_fetch = fetch
        lane = [" "] * columns
        marked = [
            (int(row[key]), mark)  # type: ignore[arg-type]
            for key, mark in TIMELINE_STAGES
            if isinstance(row.get(key), int)
        ]
        first = column(min(cycle for cycle, _mark in marked))
        last = column(max(cycle for cycle, _mark in marked))
        for index in range(first, last + 1):
            lane[index] = "."
        issue, complete = row.get("issue"), row.get("complete")
        if isinstance(issue, int) and isinstance(complete, int):
            for index in range(column(issue), column(complete) + 1):
                lane[index] = "="
        for cycle, mark in marked:
            lane[column(cycle)] = mark
        if row.get("squashed"):
            lane[last] = "x"
        seq = row.get("seq", "")
        label = str(row.get("label", ""))
        lines.append(f"{seq!s:>8} {''.join(lane).rstrip()}  {label}")
    return "\n".join(lines)


def indent(text: str, prefix: str = "  ") -> str:
    """Indent every line of ``text`` (used when nesting reports)."""
    return "\n".join(prefix + line for line in text.splitlines())
