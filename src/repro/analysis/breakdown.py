"""Pseudo-ROB retirement breakdown (Figure 12 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..isa.instruction import RetireClass
from ..core.result import SimulationResult

#: Figure 12 stacks the categories bottom-to-top in this order.
FIGURE12_ORDER = (
    RetireClass.MOVED,
    RetireClass.FINISHED,
    RetireClass.SHORT_LATENCY,
    RetireClass.FINISHED_LOAD,
    RetireClass.LONG_LATENCY_LOAD,
    RetireClass.STORE,
)


@dataclass
class RetirementBreakdown:
    """Fractions of each pseudo-ROB retirement class for one or more runs."""

    workload: str
    fractions: Dict[RetireClass, float]

    def fraction(self, retire_class: RetireClass) -> float:
        return self.fractions.get(retire_class, 0.0)

    def as_percentages(self) -> Dict[str, float]:
        """Human friendly view keyed by category name, values in percent."""
        return {rc.value: round(self.fraction(rc) * 100.0, 2) for rc in FIGURE12_ORDER}

    @property
    def total(self) -> float:
        return sum(self.fractions.values())


def retirement_breakdown(result: SimulationResult) -> RetirementBreakdown:
    """Breakdown of one run (requires the cooo machine's pseudo-ROB stats)."""
    raw = result.pseudo_rob_breakdown()
    fractions: Dict[RetireClass, float] = {}
    for retire_class in RetireClass:
        fractions[retire_class] = float(raw.get(retire_class.value, 0.0))
    return RetirementBreakdown(workload=result.workload, fractions=fractions)


def average_breakdown(results: Sequence[SimulationResult]) -> RetirementBreakdown:
    """Average the breakdown over a suite of workloads (one Figure-12 bar)."""
    if not results:
        raise ValueError("need at least one result")
    breakdowns = [retirement_breakdown(result) for result in results]
    averaged: Dict[RetireClass, float] = {}
    for retire_class in RetireClass:
        averaged[retire_class] = sum(b.fraction(retire_class) for b in breakdowns) / len(breakdowns)
    return RetirementBreakdown(workload="average", fractions=averaged)
