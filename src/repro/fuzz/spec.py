"""Declarative fuzz cases: a replayable ``(seed, spec)`` pair.

A :class:`CaseSpec` pins *everything* a fuzz case needs to be replayed
bit-for-bit on another machine or in another process: the workload
composition (which registered workloads, with which knob values, in
which :class:`~repro.workloads.scenario.Scenario` or
:func:`~repro.workloads.scenario.interleave` arrangement), the total
dynamic-instruction budget, the scenario stream seed, and the machine
tuning knobs every registered machine is built with.  Trace generation
reuses the scenario DSL's sha256 stream seeding
(:func:`~repro.workloads.scenario.stream_rng`), so a spec built today
produces the same trace in any process on any Python version.

Specs round-trip through plain JSON dictionaries (:meth:`CaseSpec.to_dict`
/ :meth:`CaseSpec.from_dict`) — the corpus files under ``tests/corpus/``
are exactly these dictionaries plus replay metadata.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..common.config import ProcessorConfig
from ..common.errors import ConfigurationError
from ..core.registry_machines import CLI_DEFAULTS, get_machine
from ..trace.trace import Trace
from ..workloads.registry import get_workload
from ..workloads.scenario import MIN_PHASE_SIZE, Phase, Scenario, interleave, stream_rng

#: Case kinds: one bare workload, a phased scenario, or block interleaving.
CASE_KINDS = ("single", "scenario", "interleave")

#: Smallest total budget a case may declare (keeps every phase above the
#: DSL's MIN_PHASE_SIZE floor and traces non-empty by construction).
MIN_CASE_SIZE = 32


@dataclass(frozen=True)
class PhaseSpec:
    """One workload slice of a fuzz case.

    ``knobs`` are overrides for the registered workload's tunables; they
    are validated against the registry at build time, so a stale corpus
    file naming a removed knob fails loudly instead of silently drifting.
    """

    workload: str
    weight: float = 1.0
    knobs: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(
                f"phase {self.workload!r}: weight must be positive, got {self.weight}"
            )

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"workload": self.workload, "weight": self.weight}
        if self.knobs:
            data["knobs"] = dict(self.knobs)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PhaseSpec":
        return cls(
            workload=str(data["workload"]),
            weight=float(data.get("weight", 1.0)),  # type: ignore[arg-type]
            knobs=dict(data.get("knobs") or {}),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class MachineTuning:
    """The machine-side knobs a case is simulated with.

    Mirrors the ``repro simulate`` machine flags (the registry's CLI
    profiles translate them into each registered machine's config), plus
    the deadlock watchdog threshold the differential oracles rely on to
    turn a hang into a failed verdict instead of a wedged fuzz run.
    """

    memory_latency: int = 200
    window: int = 128
    iq_size: int = 32
    sliq_size: int = 256
    checkpoints: int = 8
    deadlock_cycles: int = 100_000

    def to_dict(self) -> Dict[str, int]:
        return {
            "memory_latency": self.memory_latency,
            "window": self.window,
            "iq_size": self.iq_size,
            "sliq_size": self.sliq_size,
            "checkpoints": self.checkpoints,
            "deadlock_cycles": self.deadlock_cycles,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MachineTuning":
        return cls(**{key: int(data[key]) for key in cls().to_dict() if key in data})  # type: ignore[index]

    def build_config(self, mode: str) -> ProcessorConfig:
        """The registered machine ``mode`` configured with these knobs."""
        args = argparse.Namespace(**dict(CLI_DEFAULTS))
        args.memory_latency = self.memory_latency
        args.window = self.window
        args.iq_size = self.iq_size
        args.sliq_size = self.sliq_size
        args.checkpoints = self.checkpoints
        config = get_machine(mode).build_cli_config(args)
        return config.copy(deadlock_cycles=self.deadlock_cycles)


@dataclass(frozen=True)
class CaseSpec:
    """One fully-pinned fuzz case: composition, budget, seeds, machine knobs."""

    name: str
    kind: str
    phases: Tuple[PhaseSpec, ...]
    size: int
    repeat: int = 1
    seed: int = 0
    block: int = 32
    shuffle: bool = False
    tuning: MachineTuning = field(default_factory=MachineTuning)

    def __post_init__(self) -> None:
        if self.kind not in CASE_KINDS:
            raise ConfigurationError(
                f"case {self.name!r}: kind must be one of {CASE_KINDS}, got {self.kind!r}"
            )
        if not self.phases:
            raise ConfigurationError(f"case {self.name!r}: needs at least one phase")
        if self.kind == "single" and len(self.phases) != 1:
            raise ConfigurationError(
                f"case {self.name!r}: kind 'single' takes exactly one phase"
            )
        if self.size < MIN_CASE_SIZE:
            raise ConfigurationError(
                f"case {self.name!r}: size must be >= {MIN_CASE_SIZE}, got {self.size}"
            )
        if self.repeat < 1:
            raise ConfigurationError(
                f"case {self.name!r}: repeat must be >= 1, got {self.repeat}"
            )
        if self.block < 1:
            raise ConfigurationError(
                f"case {self.name!r}: block must be >= 1, got {self.block}"
            )

    # -- trace construction -------------------------------------------------
    def _phase_kernel(self, phase: PhaseSpec):
        spec = get_workload(phase.workload)
        knobs = dict(phase.knobs)

        def kernel(size: int, rng) -> Trace:  # rng: DSL stream, unused —
            # registered generators carry their own seed knobs, which the
            # case generator already pinned into ``knobs``.
            return spec.build(size=size, **knobs)

        return kernel

    def _interleave_budgets(self) -> List[int]:
        total_weight = sum(phase.weight for phase in self.phases)
        return [
            max(MIN_PHASE_SIZE, int(self.size * phase.weight / total_weight))
            for phase in self.phases
        ]

    def build_trace(self) -> Trace:
        """Generate the case's trace; deterministic for a given spec."""
        if self.kind == "single":
            phase = self.phases[0]
            trace = self._phase_kernel(phase)(self.size, None)
            return trace.relabel(f"{self.name}.{phase.workload}", name=self.name)
        if self.kind == "scenario":
            scenario = Scenario(
                self.name,
                [
                    Phase(f"p{i}.{phase.workload}", self._phase_kernel(phase), phase.weight)
                    for i, phase in enumerate(self.phases)
                ],
                seed=self.seed,
                repeat=self.repeat,
            )
            return scenario.build(self.size)
        # interleave: block-granular mixing of independently built traces.
        budgets = self._interleave_budgets()
        pieces = [
            self._phase_kernel(phase)(budget, None).relabel(f"{self.name}.p{i}")
            for i, (phase, budget) in enumerate(zip(self.phases, budgets))
        ]
        rng = stream_rng(self.name, "interleave", self.seed) if self.shuffle else None
        return interleave(pieces, block=self.block, name=self.name, rng=rng)

    def build_config(self, mode: str) -> ProcessorConfig:
        """The registered machine ``mode`` under this case's tuning."""
        return self.tuning.build_config(mode)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "phases": [phase.to_dict() for phase in self.phases],
            "size": self.size,
            "repeat": self.repeat,
            "seed": self.seed,
            "block": self.block,
            "shuffle": self.shuffle,
            "tuning": self.tuning.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CaseSpec":
        return cls(
            name=str(data["name"]),
            kind=str(data["kind"]),
            phases=tuple(
                PhaseSpec.from_dict(phase) for phase in data["phases"]  # type: ignore[union-attr]
            ),
            size=int(data["size"]),  # type: ignore[arg-type]
            repeat=int(data.get("repeat", 1)),  # type: ignore[arg-type]
            seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
            block=int(data.get("block", 32)),  # type: ignore[arg-type]
            shuffle=bool(data.get("shuffle", False)),
            tuning=MachineTuning.from_dict(data.get("tuning") or {}),  # type: ignore[arg-type]
        )

    def with_(self, **changes: object) -> "CaseSpec":
        """A copy with the given fields replaced (shrinker convenience)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def describe(self) -> str:
        phases = "+".join(
            f"{phase.workload}" + (f"*{phase.weight:g}" if phase.weight != 1 else "")
            for phase in self.phases
        )
        extra = ""
        if self.kind == "scenario" and self.repeat > 1:
            extra = f" repeat={self.repeat}"
        if self.kind == "interleave":
            extra = f" block={self.block}" + (" shuffled" if self.shuffle else "")
        return (
            f"{self.kind}[{phases}] size={self.size}{extra} "
            f"lat={self.tuning.memory_latency}"
        )


def case_workloads(case: CaseSpec) -> List[str]:
    """The distinct registered workload names a case draws from."""
    seen: List[str] = []
    for phase in case.phases:
        if phase.workload not in seen:
            seen.append(phase.workload)
    return seen
