"""Corpus I/O: fuzz cases serialized as permanent JSON repro files.

A corpus file is one :class:`~repro.fuzz.spec.CaseSpec` plus the replay
contract: which oracles to check, on which machines, and a provenance
note saying where the case came from (a minimized divergence, or a
behaviorally novel case promoted as a regression anchor).  The committed
corpus lives in ``tests/corpus/`` and ``tests/test_corpus.py`` replays
every file on every run, so anything the fuzzer ever caught (or any
behavior it found worth pinning) stays checked forever.

Files are small, human-readable, and diffable::

    {
      "schema": 1,
      "case": { ... CaseSpec.to_dict() ... },
      "oracles": ["kernel-equivalence", "no-deadlock"],
      "machines": ["baseline", "cooo"],
      "note": "minimized from fuzz-s7-c42: ...",
      "coverage": ["cooo|sliq|inflight:<256", ...]
    }
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Tuple

from ..common.errors import ConfigurationError
from .oracles import resolve_oracles
from .spec import CaseSpec

#: Bumped when the corpus file layout changes incompatibly.
CORPUS_SCHEMA = 1

#: Filename suffix every corpus file carries.
CORPUS_SUFFIX = ".case.json"


@dataclass(frozen=True)
class CorpusCase:
    """One replayable corpus entry: the case plus its replay contract."""

    case: CaseSpec
    oracles: Tuple[str, ...]
    machines: Tuple[str, ...]
    note: str = ""
    coverage: Tuple[str, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict:
        data = {
            "schema": CORPUS_SCHEMA,
            "case": self.case.to_dict(),
            "oracles": list(self.oracles),
            "machines": list(self.machines),
        }
        if self.note:
            data["note"] = self.note
        if self.coverage:
            data["coverage"] = list(self.coverage)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusCase":
        schema = data.get("schema")
        if schema != CORPUS_SCHEMA:
            raise ConfigurationError(
                f"corpus schema {schema!r} is not supported (expected {CORPUS_SCHEMA})"
            )
        oracles = tuple(resolve_oracles(list(data.get("oracles") or [])) or ())
        machines = tuple(str(name) for name in data.get("machines") or ())
        if not machines:
            raise ConfigurationError("a corpus case must name at least one machine")
        return cls(
            case=CaseSpec.from_dict(data["case"]),
            oracles=oracles or tuple(resolve_oracles(None)),
            machines=machines,
            note=str(data.get("note", "")),
            coverage=tuple(str(sig) for sig in data.get("coverage") or ()),
        )


def corpus_filename(name: str) -> str:
    """The canonical corpus filename for a case name."""
    return f"{name.replace('/', '_')}{CORPUS_SUFFIX}"


def save_case(entry: CorpusCase, directory: os.PathLike) -> Path:
    """Write one corpus entry under its canonical filename; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / corpus_filename(entry.case.name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_case(path: os.PathLike) -> CorpusCase:
    """Load one corpus file; raises ``ConfigurationError`` on bad shape."""
    with open(path, encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"corpus file {path}: invalid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError(f"corpus file {path}: expected a JSON object")
    try:
        return CorpusCase.from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"corpus file {path}: {exc}") from exc


def corpus_paths(directory: os.PathLike) -> List[Path]:
    """Every corpus file under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob(f"*{CORPUS_SUFFIX}"))


def load_corpus(directory: os.PathLike) -> List[Tuple[Path, CorpusCase]]:
    """Load every corpus file under ``directory`` in name order."""
    return [(path, load_case(path)) for path in corpus_paths(directory)]


def default_corpus_dir() -> Path:
    """The committed corpus next to the test suite (repo layout) or CWD."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "tests" / "corpus"
        if (parent / "tests").is_dir():
            return candidate
    return Path("tests") / "corpus"
