"""Coverage-guided scenario fuzzing with differential validation.

The :mod:`repro.fuzz` package turns the repository's redundant execution
paths (per-cycle stepping, the event-driven kernel, sampled simulation,
trace file I/O) into a bug-finding engine: generate random-but-replayable
workload/machine compositions, require every path to agree under a set
of differential oracles, steer generation by behavioral coverage, and
shrink anything that disagrees into a minimal JSON repro committed under
``tests/corpus/``.

Entry points: :class:`FuzzCampaign` / :func:`run_fuzz` run a campaign,
:func:`replay_corpus` re-checks saved repro files, and the ``repro
fuzz`` CLI subcommand wraps both.
"""

from .corpus import (
    CORPUS_SCHEMA,
    CORPUS_SUFFIX,
    CorpusCase,
    corpus_paths,
    default_corpus_dir,
    load_case,
    load_corpus,
    save_case,
)
from .coverage import CoverageMap, coverage_signature, dominant_stall, occupancy_band
from .generator import CaseGenerator, eligible_workloads
from .oracles import (
    DEFAULT_SAMPLING_TOLERANCE,
    MachineRun,
    ORACLES,
    OracleVerdict,
    evaluate_oracle,
    oracle_names,
    resolve_oracles,
    sampling_plan_for,
)
from .runner import (
    FuzzCampaign,
    FuzzFailure,
    FuzzReport,
    replay_case,
    replay_corpus,
    run_fuzz,
)
from .shrinker import DEFAULT_SHRINK_BUDGET, shrink
from .spec import CaseSpec, MachineTuning, MIN_CASE_SIZE, PhaseSpec, case_workloads

__all__ = [
    "CORPUS_SCHEMA",
    "CORPUS_SUFFIX",
    "CaseGenerator",
    "CaseSpec",
    "CorpusCase",
    "CoverageMap",
    "DEFAULT_SAMPLING_TOLERANCE",
    "DEFAULT_SHRINK_BUDGET",
    "FuzzCampaign",
    "FuzzFailure",
    "FuzzReport",
    "MIN_CASE_SIZE",
    "MachineRun",
    "MachineTuning",
    "ORACLES",
    "OracleVerdict",
    "PhaseSpec",
    "case_workloads",
    "corpus_paths",
    "coverage_signature",
    "default_corpus_dir",
    "dominant_stall",
    "eligible_workloads",
    "evaluate_oracle",
    "load_case",
    "load_corpus",
    "occupancy_band",
    "oracle_names",
    "replay_case",
    "replay_corpus",
    "resolve_oracles",
    "run_fuzz",
    "sampling_plan_for",
    "save_case",
    "shrink",
]
