"""Differential oracles: the properties every fuzz case must satisfy.

The repository has three execution paths that must agree — per-cycle
stepping, the event-driven cycle-skipping kernel, and sampled execution
with a confidence interval — plus trace file I/O that must be lossless.
Each oracle checks one such agreement on one generated case:

``kernel-equivalence``
    The event-driven kernel's :class:`SimulationResult` (every counter,
    occupancy distribution and cache key input) is bit-identical to
    ``force_per_cycle=True`` stepping.  If both paths raise, they must
    raise the same error at the same simulated cycle.

``no-deadlock``
    The case completes: the deadlock watchdog (bounded by the case's
    ``tuning.deadlock_cycles``) never fires and no simulation error
    escapes.  This is what turns a hang into a minimizable repro.

``sampled-ci``
    Two contracts by trace length.  Traces shorter than
    :data:`SAMPLED_CI_MIN_TRACE` cannot hold a meaningful window; they
    get the degenerate full-detail plan, whose result must be
    *bit-identical* to the exact run.  Longer traces run a real
    fast-forward/window plan and are checked against the invariants any
    correct sampled implementation must satisfy — instruction accounting
    conserves the trace (fast-forwarded + detailed == total), every
    window is physically possible (positive cycles, IPC bounded by the
    commit width), the extrapolated IPC lies within the per-window IPC
    range (it is their cycle-weighted mean), the CI is finite — plus an
    order-of-magnitude accuracy band: sampled and exact IPC must agree
    within a factor of :data:`DEFAULT_SAMPLING_TOLERANCE`.  The band is
    deliberately loose: systematic sampling on short, phase-periodic
    traces carries real aliasing and warmup-convergence bias (factor
    ~2 is legitimate), while genuine warm-state divergence bugs — the
    kind this oracle exists to catch, like the sampled perfect-l2
    hierarchy regression — show up as 10x+.

``trace-roundtrip``
    ``save -> load -> simulate`` is lossless: the reloaded instruction
    records equal the originals and the reloaded trace's result is
    bit-identical.  Runs once per case (the trace does not depend on the
    machine).

``fault-recovery``
    An injected mid-simulate fault (a probe raising
    :class:`~repro.common.errors.InjectedFaultError` halfway through the
    trace, via :class:`repro.robustness.FaultInjector`) must propagate
    as exactly that error — not get swallowed, not surface as something
    else — and a fresh run afterwards must be bit-identical to the
    memoized exact artifact: an aborted simulation leaves no residue in
    any process-level state.  Runs once per case.

Oracles are pure functions of a :class:`MachineRun`, which lazily
executes and memoizes the exact / per-cycle / sampled artifacts so an
oracle set shares simulations instead of re-running them.
"""

from __future__ import annotations

import math
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from .. import api
from ..common.config import ProcessorConfig, SamplingPlan
from ..common.errors import DeadlockError, InjectedFaultError, ReproError
from ..core.result import SimulationResult
from ..trace.trace import Trace
from .spec import CaseSpec

#: Maximum sampled/exact IPC *ratio* the ``sampled-ci`` oracle accepts on
#: sampling-eligible traces.  Fuzz traces are short and deliberately
#: phase-periodic, where systematic sampling's stationarity assumption is
#: weakest — aliasing and warmup convergence make multi-factor deviations
#: legitimate (a 100-case x 4-machine calibration campaign measured
#: legitimate deviations up to ~6x on few-window multi_chase/blocked
#: mixes, where warmup absorbs the miss bursts and the measured windows
#: read systematically fast).  The band catches *broken* machinery (warm
#: state diverging from the machine, mis-attributed cycles, sign
#: errors), which shows up beyond an order of magnitude or trips the
#: mechanical invariants; the XL benchmarks guard accuracy at <=5% on
#: workloads long and homogeneous enough for sampling to be sound.
DEFAULT_SAMPLING_TOLERANCE = 10.0

#: Below this trace length the whole run is one cold-start transient and
#: steady-state sampling *legitimately* disagrees with the exact IPC, so
#: the oracle switches contract: short traces get the degenerate
#: full-detail plan, whose result must be bit-identical to the exact run.
SAMPLED_CI_MIN_TRACE = 3000


def sampling_plan_for(total: int) -> SamplingPlan:
    """The sampling plan the ``sampled-ci`` oracle applies to a case.

    Short traces (below :data:`SAMPLED_CI_MIN_TRACE`) get a degenerate
    plan with nothing to fast-forward — ``run_sampled`` then does one
    continuous detailed run that must match the exact simulation bit for
    bit.  Longer traces get period = total/3 with a *warmup-heavy*
    detailed region (half the period warming, a sixth measured): under
    couple-hundred-cycle latencies the congestion state of the window
    structures (SLIQ and MSHR occupancy, checkpoint pressure) takes on
    the order of a thousand instructions to converge, and a window
    measured before convergence reads systematically fast.
    """
    if total < SAMPLED_CI_MIN_TRACE:
        return SamplingPlan(period=96, window=48, warmup=48, seed=1).validate()
    period = total // 3
    window = max(96, period // 6)
    warmup = period // 2
    return SamplingPlan(period=period, window=window, warmup=warmup, seed=1).validate()


@dataclass
class OracleVerdict:
    """Outcome of one oracle on one (case, machine) pair."""

    oracle: str
    machine: str
    ok: bool
    details: str = ""

    def __str__(self) -> str:
        status = "ok" if self.ok else "FAIL"
        text = f"{self.oracle} on {self.machine}: {status}"
        return f"{text} — {self.details}" if self.details else text


class MachineRun:
    """Lazily-executed differential artifacts of one case on one machine.

    Each artifact is a ``(result, error)`` pair: a simulation that raised
    keeps its exception instead of aborting the campaign, so oracles can
    compare *failure behavior* across execution paths too.
    """

    def __init__(
        self,
        case: CaseSpec,
        trace: Trace,
        machine: str,
        *,
        sampling_tolerance: float = DEFAULT_SAMPLING_TOLERANCE,
    ) -> None:
        self.case = case
        self.trace = trace
        self.machine = machine
        self.config: ProcessorConfig = case.build_config(machine)
        self.sampling_tolerance = sampling_tolerance
        self._artifacts: Dict[str, Tuple[Optional[SimulationResult], Optional[ReproError]]] = {}

    def _execute(
        self, label: str, **kwargs
    ) -> Tuple[Optional[SimulationResult], Optional[ReproError]]:
        if label not in self._artifacts:
            try:
                self._artifacts[label] = (api.run(self.config, self.trace, **kwargs), None)
            except ReproError as exc:
                self._artifacts[label] = (None, exc)
        return self._artifacts[label]

    @property
    def exact(self) -> Tuple[Optional[SimulationResult], Optional[ReproError]]:
        """Event-driven run — the reference artifact (also feeds coverage)."""
        return self._execute("exact")

    @property
    def per_cycle(self) -> Tuple[Optional[SimulationResult], Optional[ReproError]]:
        return self._execute("per_cycle", force_per_cycle=True)

    @property
    def sampled(self) -> Tuple[Optional[SimulationResult], Optional[ReproError]]:
        return self._execute("sampled", sampling=sampling_plan_for(len(self.trace)))


def _first_difference(fast: Dict[str, object], slow: Dict[str, object]) -> str:
    for key in sorted(set(fast) | set(slow)):
        if fast.get(key) != slow.get(key):
            if key != "stats":
                return f"field {key!r}: {fast.get(key)!r} != {slow.get(key)!r}"
            fast_stats = fast.get("stats") or {}
            slow_stats = slow.get("stats") or {}
            for stat in sorted(set(fast_stats) | set(slow_stats)):  # type: ignore[arg-type]
                if fast_stats.get(stat) != slow_stats.get(stat):  # type: ignore[union-attr]
                    return (
                        f"stat {stat!r}: {fast_stats.get(stat)!r} != "  # type: ignore[union-attr]
                        f"{slow_stats.get(stat)!r}"
                    )
    return "results differ"


def oracle_kernel_equivalence(run: MachineRun) -> OracleVerdict:
    fast, fast_error = run.exact
    slow, slow_error = run.per_cycle
    name = "kernel-equivalence"
    if fast_error is not None or slow_error is not None:
        same = (
            fast_error is not None
            and slow_error is not None
            and type(fast_error) is type(slow_error)
            and str(fast_error) == str(slow_error)
        )
        if same:
            return OracleVerdict(name, run.machine, True, "both paths raised identically")
        return OracleVerdict(
            name,
            run.machine,
            False,
            f"event-driven {fast_error!r} vs per-cycle {slow_error!r}",
        )
    assert fast is not None and slow is not None
    if fast.to_dict() == slow.to_dict():
        return OracleVerdict(name, run.machine, True)
    return OracleVerdict(
        name, run.machine, False, _first_difference(fast.to_dict(), slow.to_dict())
    )


def oracle_no_deadlock(run: MachineRun) -> OracleVerdict:
    _result, error = run.exact
    name = "no-deadlock"
    if error is None:
        return OracleVerdict(name, run.machine, True)
    kind = "deadlock" if isinstance(error, DeadlockError) else "simulation error"
    return OracleVerdict(name, run.machine, False, f"{kind}: {error}")


def oracle_sampled_ci(run: MachineRun) -> OracleVerdict:
    name = "sampled-ci"
    exact, exact_error = run.exact
    if exact_error is not None:
        # The exact path already failed; no-deadlock reports it.
        return OracleVerdict(name, run.machine, True, "skipped: exact run failed")
    sampled, sampled_error = run.sampled
    if sampled_error is not None:
        return OracleVerdict(name, run.machine, False, f"sampled run raised: {sampled_error}")
    assert exact is not None and sampled is not None
    if len(run.trace) < SAMPLED_CI_MIN_TRACE:
        # Degenerate full-detail plan: the contract is bit-identity.
        if sampled.cycles == exact.cycles and sampled.ipc == exact.ipc:
            return OracleVerdict(
                name, run.machine, True,
                f"degenerate plan, bit-identical ({sampled.cycles} cycles)",
            )
        return OracleVerdict(
            name, run.machine, False,
            f"degenerate full-detail plan diverged: sampled {sampled.ipc:.4f}/"
            f"{sampled.cycles} cycles vs exact {exact.ipc:.4f}/{exact.cycles} cycles",
        )
    # Real sampling: mechanical invariants, then the accuracy band.
    if not sampled.sampled or not sampled.windows:
        return OracleVerdict(
            name, run.machine, False,
            f"sampling-eligible trace produced no windows "
            f"(sampled={sampled.sampled}, {len(sampled.windows)} windows)",
        )
    accounted = sampled.stat("sampling.fast_forwarded_instructions") + sampled.stat(
        "sampling.detailed_instructions"
    )
    if accounted != len(run.trace):
        return OracleVerdict(
            name, run.machine, False,
            f"instruction accounting leaked: fast-forwarded + detailed = "
            f"{accounted:.0f}, trace has {len(run.trace)}",
        )
    commit_width = run.config.core.commit_width
    for window in sampled.windows:
        instructions = int(window["instructions"])
        cycles = int(window["cycles"])
        if instructions <= 0 or cycles <= 0 or instructions > cycles * commit_width:
            return OracleVerdict(
                name, run.machine, False,
                f"physically impossible window {window!r} "
                f"(commit width {commit_width})",
            )
    window_ipcs = [float(window["ipc"]) for window in sampled.windows]
    epsilon = 1e-9
    if not (min(window_ipcs) - epsilon <= sampled.ipc <= max(window_ipcs) + epsilon):
        return OracleVerdict(
            name, run.machine, False,
            f"extrapolated IPC {sampled.ipc:.4f} outside its window range "
            f"[{min(window_ipcs):.4f}, {max(window_ipcs):.4f}]",
        )
    if not math.isfinite(sampled.ipc_ci95) or sampled.ipc_ci95 < 0:
        return OracleVerdict(
            name, run.machine, False, f"broken CI: {sampled.ipc_ci95!r}"
        )
    if exact.ipc > 0 and sampled.ipc > 0:
        ratio = max(sampled.ipc, exact.ipc) / min(sampled.ipc, exact.ipc)
    else:
        ratio = math.inf if sampled.ipc != exact.ipc else 1.0
    if ratio > run.sampling_tolerance:
        return OracleVerdict(
            name, run.machine, False,
            f"sampled {sampled.ipc:.4f} vs exact {exact.ipc:.4f}: ratio "
            f"{ratio:.2f} exceeds {run.sampling_tolerance:g} "
            f"({len(sampled.windows)} windows, ci95 {sampled.ipc_ci95:.4f})",
        )
    return OracleVerdict(
        name, run.machine, True,
        f"sampled {sampled.ipc:.4f} vs exact {exact.ipc:.4f} "
        f"(ratio {ratio:.2f}, {len(sampled.windows)} windows, "
        f"ci95 {sampled.ipc_ci95:.4f})",
    )


def oracle_trace_roundtrip(run: MachineRun) -> OracleVerdict:
    name = "trace-roundtrip"
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
        path = Path(tmp) / "case.trace.gz"
        run.trace.save(path)
        loaded = Trace.load(path)
        original = [instr.to_record() for instr in run.trace]
        reloaded = [instr.to_record() for instr in loaded]
        if original != reloaded:
            for index, (a, b) in enumerate(zip(original, reloaded)):
                if a != b:
                    return OracleVerdict(
                        name, run.machine, False,
                        f"instruction {index} changed across save/load: {a} != {b}",
                    )
            return OracleVerdict(
                name, run.machine, False,
                f"length changed across save/load: {len(original)} != {len(reloaded)}",
            )
        exact, exact_error = run.exact
        if exact_error is not None:
            return OracleVerdict(
                name, run.machine, True, "records match (exact run failed; not re-simulated)"
            )
        try:
            replayed = api.run(run.config, loaded)
        except ReproError as exc:
            return OracleVerdict(name, run.machine, False, f"reloaded trace raised: {exc}")
        assert exact is not None
        if replayed.to_dict() == exact.to_dict():
            return OracleVerdict(name, run.machine, True)
        return OracleVerdict(
            name, run.machine, False,
            "reloaded-trace result diverged: "
            + _first_difference(replayed.to_dict(), exact.to_dict()),
        )


def oracle_fault_recovery(run: MachineRun) -> OracleVerdict:
    """Injected faults fail cleanly and leave no residue behind."""
    from ..robustness import FaultInjector, FaultPlan, FaultRule

    name = "fault-recovery"
    exact, exact_error = run.exact
    if exact_error is not None:
        # The case itself cannot run; no-deadlock reports that.
        return OracleVerdict(name, run.machine, True, "skipped: exact run failed")
    assert exact is not None
    injector = FaultInjector(
        FaultPlan(seed=0, rules=(FaultRule("simulate.error", rate=1.0),))
    )
    probe = injector.simulate_error_probe(
        f"fuzz:{run.case.name}", after_commits=max(1, len(run.trace) // 2)
    )
    assert probe is not None  # rate 1.0 always fires
    try:
        api.run(run.config, run.trace, probes=(probe,))
    except InjectedFaultError:
        pass
    except ReproError as exc:
        return OracleVerdict(
            name, run.machine, False,
            f"injected fault surfaced as {type(exc).__name__}: {exc}",
        )
    else:
        return OracleVerdict(
            name, run.machine, False,
            "injected mid-simulate fault was swallowed (run completed)",
        )
    try:
        clean = api.run(run.config, run.trace)
    except ReproError as exc:
        return OracleVerdict(
            name, run.machine, False,
            f"clean rerun after the injected fault raised: {exc}",
        )
    if clean.to_dict() == exact.to_dict():
        return OracleVerdict(
            name, run.machine, True,
            "fault propagated cleanly; post-fault rerun bit-identical",
        )
    return OracleVerdict(
        name, run.machine, False,
        "post-fault rerun diverged: "
        + _first_difference(clean.to_dict(), exact.to_dict()),
    )


#: name -> (function, scope); "machine" oracles run on every machine,
#: "case" oracles once per case (on the first machine in the list).
ORACLES: Dict[str, Tuple[Callable[[MachineRun], OracleVerdict], str]] = {
    "kernel-equivalence": (oracle_kernel_equivalence, "machine"),
    "no-deadlock": (oracle_no_deadlock, "machine"),
    "sampled-ci": (oracle_sampled_ci, "machine"),
    "trace-roundtrip": (oracle_trace_roundtrip, "case"),
    "fault-recovery": (oracle_fault_recovery, "case"),
}


def oracle_names() -> List[str]:
    """Every registered oracle name, in definition order."""
    return list(ORACLES)


def resolve_oracles(names: Optional[List[str]] = None) -> List[str]:
    """Validate a user-supplied oracle list (None means all of them)."""
    if names is None:
        return oracle_names()
    unknown = [name for name in names if name not in ORACLES]
    if unknown:
        raise KeyError(
            f"unknown oracles {unknown}; registered oracles: {', '.join(ORACLES)}"
        )
    return list(names)


def evaluate_oracle(
    case: CaseSpec,
    oracle: str,
    machine: str,
    *,
    sampling_tolerance: float = DEFAULT_SAMPLING_TOLERANCE,
) -> OracleVerdict:
    """Build the case's trace and run one oracle on one machine.

    Fresh state end to end — this is the shrinker's predicate and the
    corpus replay path, so nothing may leak between evaluations.
    """
    function, _scope = ORACLES[oracle]
    trace = case.build_trace()
    run = MachineRun(case, trace, machine, sampling_tolerance=sampling_tolerance)
    return function(run)
