"""Seeded, coverage-biased generation of fuzz cases.

Every case draws from a private sha256-derived RNG stream
(:func:`~repro.workloads.scenario.stream_rng` over ``("repro-fuzz",
campaign seed, case index)``), so generation is deterministic across
processes and Python versions and each case is replayable from its
``(seed, index)`` identity alone — the spec it produces is saved to the
corpus verbatim.

Coverage feedback biases, it does not randomize: when a case produces a
behavioral signature the campaign has not seen
(:mod:`~repro.fuzz.coverage`), the weights of the workloads it drew from
are boosted, making related compositions more likely in later cases.
The weight state is itself a deterministic function of earlier
simulation results, so the bias never breaks replayability.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..workloads.registry import workload_specs
from ..workloads.scenario import stream_rng
from .spec import CaseSpec, MachineTuning, PhaseSpec

#: (kind, weight) pairs for drawing the case composition style.
KIND_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("single", 0.30),
    ("scenario", 0.45),
    ("interleave", 0.25),
)

#: Total dynamic-instruction budgets a case may draw.  Mostly small —
#: a fuzz campaign's value is breadth, and every case runs 3+
#: simulations per machine under the differential oracles — with a
#: couple of sampling-eligible sizes (>= SAMPLED_CI_MIN_TRACE) so the
#: real fast-forward/window machinery gets exercised too.
SIZE_CHOICES: Sequence[int] = (240, 320, 480, 640, 960, 3600, 5600)

#: Machine-knob pools; one value of each is drawn per case.
LATENCY_CHOICES: Sequence[int] = (100, 200, 300)
WINDOW_CHOICES: Sequence[int] = (64, 256)
IQ_CHOICES: Sequence[int] = (16, 32)
SLIQ_CHOICES: Sequence[int] = (128, 512)
CHECKPOINT_CHOICES: Sequence[int] = (4, 8)

#: Workloads above this base size (the XL registrations, if any) are
#: excluded from generation — fuzz cases must stay seconds-scale.
MAX_ELIGIBLE_BASE_SIZE = 4000

#: Multiplicative boost applied to a workload's weight on novel coverage,
#: and the cap that keeps one hot workload from starving the rest.
NOVELTY_BOOST = 2.0
WEIGHT_CAP = 8.0

#: Trace size of the tiny probe build used to vet randomized knob draws.
KNOB_PROBE_SIZE = 32


def _weighted_choice(rng: random.Random, items: Sequence[str], weights: Dict[str, float]) -> str:
    total = sum(weights[item] for item in items)
    mark = rng.random() * total
    acc = 0.0
    for item in items:
        acc += weights[item]
        if mark < acc:
            return item
    return items[-1]


def eligible_workloads() -> List[str]:
    """Registered workloads the generator may draw, sorted by name."""
    return [
        spec.name
        for spec in workload_specs()
        if spec.base_size <= MAX_ELIGIBLE_BASE_SIZE
    ]


class CaseGenerator:
    """Draws :class:`CaseSpec`s from a seeded stream with coverage bias."""

    def __init__(self, seed: int, workloads: Optional[Sequence[str]] = None) -> None:
        self.seed = seed
        self.workloads = list(workloads) if workloads is not None else eligible_workloads()
        if not self.workloads:
            raise ValueError("the fuzz generator needs at least one eligible workload")
        self.weights: Dict[str, float] = {name: 1.0 for name in self.workloads}

    # -- coverage feedback --------------------------------------------------
    def note_novelty(self, workloads: Sequence[str]) -> None:
        """Boost the workloads of a case that produced new coverage."""
        for name in workloads:
            if name in self.weights:
                self.weights[name] = min(WEIGHT_CAP, self.weights[name] * NOVELTY_BOOST)

    # -- knob randomization -------------------------------------------------
    def _randomize_knobs(self, rng: random.Random, workload: str) -> Dict[str, object]:
        from ..workloads.registry import get_workload

        spec = get_workload(workload)
        overrides: Dict[str, object] = {}
        for knob, default in sorted(spec.knobs.items()):
            if rng.random() < 0.5:
                continue  # leave this knob at its registered default
            if "seed" in knob:
                overrides[knob] = rng.randrange(1, 1_000_000)
            elif isinstance(default, bool):
                overrides[knob] = rng.random() < 0.5
            elif isinstance(default, float) or "probability" in knob:
                overrides[knob] = rng.choice([0.05, 0.2, 0.5, 0.8, 0.95])
            elif isinstance(default, int):
                factor = rng.choice([0.25, 0.5, 2, 4])
                overrides[knob] = max(1, int(default * factor))
        # Generators enforce their own knob ranges (e.g. a chain-count
        # ceiling) that the registry's name-level validation cannot see.
        # Probe with a tiny build and drop offending draws — the probe and
        # the drops are functions of the draw alone, so determinism holds.
        while overrides:
            try:
                spec.build(size=KNOB_PROBE_SIZE, **overrides)
            except Exception:
                del overrides[sorted(overrides)[0]]
            else:
                break
        return overrides

    # -- case construction --------------------------------------------------
    def generate(self, index: int) -> CaseSpec:
        """The deterministic case at ``index`` under the current bias."""
        rng = stream_rng("repro-fuzz", self.seed, index)
        kind = _weighted_choice(
            rng, [name for name, _ in KIND_WEIGHTS],
            {name: weight for name, weight in KIND_WEIGHTS},
        )
        phase_count = 1 if kind == "single" else rng.randint(2, 4)
        phases = []
        for _ in range(phase_count):
            workload = _weighted_choice(rng, self.workloads, self.weights)
            weight = float(rng.choice([1, 1, 1, 2, 3]))
            phases.append(
                PhaseSpec(
                    workload=workload,
                    weight=weight,
                    knobs=self._randomize_knobs(rng, workload),
                )
            )
        if len(phases) > 1 and rng.random() < 0.25:
            # Phase-change-heavy shape: one regime dominates the budget,
            # the others are short disruptions — where warm-state biases
            # and kernel idle-gating are most likely to disagree.
            dominant = rng.randrange(len(phases))
            phases[dominant] = PhaseSpec(
                workload=phases[dominant].workload,
                weight=8.0,
                knobs=phases[dominant].knobs,
            )
        tuning = MachineTuning(
            memory_latency=rng.choice(list(LATENCY_CHOICES)),
            window=rng.choice(list(WINDOW_CHOICES)),
            iq_size=rng.choice(list(IQ_CHOICES)),
            sliq_size=rng.choice(list(SLIQ_CHOICES)),
            checkpoints=rng.choice(list(CHECKPOINT_CHOICES)),
        )
        return CaseSpec(
            name=f"fuzz-s{self.seed}-c{index}",
            kind=kind,
            phases=tuple(phases),
            size=rng.choice(list(SIZE_CHOICES)),
            repeat=rng.choice([1, 1, 1, 2, 3]) if kind == "scenario" else 1,
            seed=rng.randrange(1 << 16),
            block=rng.choice([8, 16, 32, 64]) if kind == "interleave" else 32,
            shuffle=bool(rng.random() < 0.5) if kind == "interleave" else False,
            tuning=tuning,
        )
