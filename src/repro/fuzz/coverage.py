"""Behavioral coverage: which machine behaviors the fuzzer has exercised.

Classic fuzzers track code coverage; a simulator's interesting space is
*behavioral* — which machine got pushed into which bottleneck regime.
Each finished simulation is reduced to a compact signature::

    <machine> | <dominant stall reason> | inflight:<occupancy band>

where the stall reason is the structure whose full-stall counter
dominates the run (ROB, issue queues, LSQ, SLIQ, checkpoint table,
front-end mispredict restarts, or ``none`` when nothing stalled) and the
occupancy band buckets the mean number of in-flight instructions into
powers-of-four.  The :class:`CoverageMap` counts signatures; a case that
produces a *new* signature is behaviorally novel, and the campaign
feeds that novelty back into generation bias (see
:class:`~repro.fuzz.generator.CaseGenerator`).

Signatures are derived purely from :class:`SimulationResult` stats, so
they are as deterministic as the simulator itself: same seed, same
specs, same signatures — the property the acceptance gate checks.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Tuple

from ..core.result import SimulationResult

#: (label, stats key) pairs competing for the dominant stall reason.
STALL_SOURCES: Tuple[Tuple[str, str], ...] = (
    ("rob", "rob.full_stalls"),
    ("iq-int", "iq.int.full_stalls"),
    ("iq-fp", "iq.fp.full_stalls"),
    ("lsq", "lsq.full_stalls"),
    ("sliq", "sliq.full_stalls"),
    ("checkpoint", "checkpoint.full_stalls"),
    ("mispredict", "fetch.mispredict_stall_cycles"),
)

#: Upper edges of the mean-in-flight occupancy bands (powers of four).
OCCUPANCY_BANDS: Tuple[int, ...] = (4, 16, 64, 256, 1024)


def occupancy_band(mean_in_flight: float) -> str:
    """The powers-of-four band label for a mean in-flight occupancy."""
    for edge in OCCUPANCY_BANDS:
        if mean_in_flight < edge:
            return f"<{edge}"
    return f">={OCCUPANCY_BANDS[-1]}"


def dominant_stall(result: SimulationResult) -> str:
    """The structure whose full-stall counter dominates ``result``."""
    best_label, best_value = "none", 0.0
    for label, key in STALL_SOURCES:
        value = result.stat(key)
        if value > best_value:
            best_label, best_value = label, value
    return best_label


def coverage_signature(machine: str, result: SimulationResult) -> str:
    """The behavioral signature of one (machine, result) pair."""
    return (
        f"{machine}|{dominant_stall(result)}|"
        f"inflight:{occupancy_band(result.mean_in_flight)}"
    )


class CoverageMap:
    """Counts of observed behavioral signatures, insertion-ordered."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, signature: str) -> bool:
        """Record one observation; True when the signature is new."""
        novel = signature not in self._counts
        self._counts[signature] = self._counts.get(signature, 0) + 1
        return novel

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, signature: str) -> bool:
        return signature in self._counts

    def count(self, signature: str) -> int:
        return self._counts.get(signature, 0)

    def signatures(self) -> List[str]:
        """Every observed signature, sorted."""
        return sorted(self._counts)

    def to_dict(self) -> Dict[str, int]:
        return {signature: self._counts[signature] for signature in sorted(self._counts)}

    def merge(self, signatures: Iterable[str]) -> int:
        """Bulk-add signatures (e.g. from a saved corpus); returns #novel."""
        return sum(1 for signature in signatures if self.add(signature))

    def digest(self) -> str:
        """A stable hash of the signature *set* — the campaign's coverage
        fingerprint, comparable across runs and machines."""
        blob = "\n".join(self.signatures()).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]
