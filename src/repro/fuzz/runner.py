"""The fuzz campaign: generate, differentially check, minimize, record.

:class:`FuzzCampaign` drives the whole loop behind ``repro fuzz``:

1. draw the next :class:`~repro.fuzz.spec.CaseSpec` from the seeded,
   coverage-biased generator;
2. build its trace once and run every requested oracle on every
   requested machine (simulations are shared across oracles through
   :class:`~repro.fuzz.oracles.MachineRun`);
3. fold each machine's exact run into the behavioral
   :class:`~repro.fuzz.coverage.CoverageMap`; novel signatures boost the
   generator's bias toward the workloads that produced them;
4. on any failed verdict, delta-debug the case down to a minimal repro
   (:func:`~repro.fuzz.shrinker.shrink`) and — when a corpus directory
   is given — serialize it as a permanent JSON regression file.

Everything runs through :func:`repro.api.run` on fresh pipelines and
**never touches the persistent sweep cache**: fuzz results must not
poison (or be poisoned by) ``~/.cache/repro/sweeps``, and the oracles
compare live simulations, not cached ones.

The campaign is deterministic end to end: same seed and knobs mean the
same specs, the same verdicts, the same coverage digest and the same
minimized repro files.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..common.errors import ReproError
from ..core.registry_machines import machine_names
from .corpus import CorpusCase, load_corpus, save_case
from .coverage import CoverageMap, coverage_signature
from .generator import CaseGenerator
from .oracles import (
    DEFAULT_SAMPLING_TOLERANCE,
    MachineRun,
    ORACLES,
    OracleVerdict,
    evaluate_oracle,
    resolve_oracles,
)
from .shrinker import DEFAULT_SHRINK_BUDGET, shrink
from .spec import CaseSpec, case_workloads

ProgressFn = Callable[[str], None]


@dataclass
class FuzzFailure:
    """One oracle violation, minimized and (optionally) written to disk."""

    case: CaseSpec
    verdict: OracleVerdict
    minimized: CaseSpec
    minimized_verdict: OracleVerdict
    shrink_attempts: int = 0
    corpus_path: Optional[Path] = None

    def describe(self) -> str:
        lines = [
            f"{self.case.name}: {self.verdict}",
            f"  minimized ({self.shrink_attempts} shrink attempts): "
            f"{self.minimized.describe()}",
            f"  minimized verdict: {self.minimized_verdict}",
        ]
        if self.corpus_path is not None:
            lines.append(f"  repro written to {self.corpus_path}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Everything one campaign produced."""

    seed: int
    cases: int
    machines: List[str]
    oracles: List[str]
    verdicts: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    coverage: CoverageMap = field(default_factory=CoverageMap)
    #: (case, its novel signatures) — behaviorally distinct cases, in
    #: discovery order; candidates for corpus promotion.
    novel: List[Tuple[CaseSpec, List[str]]] = field(default_factory=list)
    elapsed: float = 0.0
    #: True when the campaign stopped early on Ctrl-C; ``cases_run`` is
    #: then how many cases actually completed (== ``cases`` otherwise).
    interrupted: bool = False
    cases_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        completed = (
            f"{self.cases_run}/{self.cases} cases (interrupted)"
            if self.interrupted
            else f"{self.cases} cases"
        )
        return (
            f"fuzz seed={self.seed}: {completed} x {len(self.machines)} machines, "
            f"{self.verdicts} verdicts, {len(self.failures)} violation(s), "
            f"{len(self.coverage)} coverage signatures (digest {self.coverage.digest()}) "
            f"in {self.elapsed:.1f}s"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "machines": self.machines,
            "oracles": self.oracles,
            "verdicts": self.verdicts,
            "violations": [
                {
                    "case": failure.case.to_dict(),
                    "verdict": str(failure.verdict),
                    "minimized": failure.minimized.to_dict(),
                    "minimized_verdict": str(failure.minimized_verdict),
                    "corpus_path": str(failure.corpus_path) if failure.corpus_path else None,
                }
                for failure in self.failures
            ],
            "coverage": self.coverage.to_dict(),
            "coverage_digest": self.coverage.digest(),
            "novel_cases": [case.name for case, _sigs in self.novel],
            "elapsed": round(self.elapsed, 3),
            "interrupted": self.interrupted,
            "cases_run": self.cases_run,
        }


class FuzzCampaign:
    """One configured fuzzing run; see the module docstring for the loop."""

    def __init__(
        self,
        cases: int,
        *,
        seed: int = 0,
        machines: Optional[Sequence[str]] = None,
        oracles: Optional[Sequence[str]] = None,
        sampling_tolerance: float = DEFAULT_SAMPLING_TOLERANCE,
        shrink_failures: bool = True,
        shrink_budget: int = DEFAULT_SHRINK_BUDGET,
        corpus_dir: Optional[Path] = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        if cases < 1:
            raise ValueError(f"cases must be >= 1, got {cases}")
        self.cases = cases
        self.seed = seed
        self.machines = list(machines) if machines else machine_names()
        unknown = [name for name in self.machines if name not in machine_names()]
        if unknown:
            raise KeyError(
                f"unknown machines {unknown}; registered machines: "
                f"{', '.join(machine_names())}"
            )
        self.oracles = resolve_oracles(list(oracles) if oracles is not None else None)
        self.sampling_tolerance = sampling_tolerance
        self.shrink_failures = shrink_failures
        self.shrink_budget = shrink_budget
        self.corpus_dir = Path(corpus_dir) if corpus_dir is not None else None
        self.progress = progress

    def _report(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _still_fails(self, oracle: str, machine: str) -> Callable[[CaseSpec], bool]:
        def predicate(candidate: CaseSpec) -> bool:
            try:
                verdict = evaluate_oracle(
                    candidate, oracle, machine,
                    sampling_tolerance=self.sampling_tolerance,
                )
            except (ReproError, ValueError, KeyError):
                # The candidate cannot even build/run: not a reproduction.
                return False
            return not verdict.ok

        return predicate

    def _handle_failure(
        self, report: FuzzReport, case: CaseSpec, verdict: OracleVerdict
    ) -> None:
        minimized, attempts = case, 0
        minimized_verdict = verdict
        if self.shrink_failures:
            minimized, attempts = shrink(
                case,
                self._still_fails(verdict.oracle, verdict.machine),
                budget=self.shrink_budget,
            )
            minimized_verdict = evaluate_oracle(
                minimized, verdict.oracle, verdict.machine,
                sampling_tolerance=self.sampling_tolerance,
            )
        # Repro files carry a stable name derived from the *minimized*
        # case so re-running the campaign overwrites, not duplicates.
        repro = minimized.with_(name=f"{case.name}-min")
        corpus_path: Optional[Path] = None
        if self.corpus_dir is not None:
            corpus_path = save_case(
                CorpusCase(
                    case=repro,
                    oracles=(verdict.oracle,),
                    machines=(verdict.machine,),
                    note=(
                        f"minimized from {case.name} "
                        f"(seed {self.seed}): {verdict.details or verdict.oracle}"
                    ),
                ),
                self.corpus_dir,
            )
        failure = FuzzFailure(
            case=case,
            verdict=verdict,
            minimized=repro,
            minimized_verdict=minimized_verdict,
            shrink_attempts=attempts,
            corpus_path=corpus_path,
        )
        report.failures.append(failure)
        self._report(failure.describe())

    def run(self) -> FuzzReport:
        """Execute the campaign; deterministic for fixed constructor args.

        Ctrl-C does not lose the campaign: the loop stops at the current
        case boundary and the partial report comes back with
        ``interrupted=True`` — every verdict, failure and coverage
        signature gathered so far intact.
        """
        start = time.perf_counter()
        report = FuzzReport(
            seed=self.seed, cases=self.cases,
            machines=list(self.machines), oracles=list(self.oracles),
        )
        generator = CaseGenerator(self.seed)
        try:
            self._run_cases(generator, report)
        except KeyboardInterrupt:
            report.interrupted = True
            self._report(
                f"interrupted after {report.cases_run}/{self.cases} case(s); "
                "reporting partial results"
            )
        report.elapsed = time.perf_counter() - start
        return report

    def _run_cases(self, generator: CaseGenerator, report: FuzzReport) -> None:
        for index in range(self.cases):
            case = generator.generate(index)
            try:
                trace = case.build_trace()
            except (ReproError, ValueError, KeyError) as exc:
                # A spec the generator produced must always build; treat a
                # failure as a (non-minimizable) violation of generation.
                report.verdicts += 1
                report.failures.append(
                    FuzzFailure(
                        case=case,
                        verdict=OracleVerdict("generate", "-", False, str(exc)),
                        minimized=case,
                        minimized_verdict=OracleVerdict("generate", "-", False, str(exc)),
                    )
                )
                report.cases_run = index + 1
                continue
            case_signatures: List[str] = []
            for position, machine in enumerate(self.machines):
                run = MachineRun(
                    case, trace, machine, sampling_tolerance=self.sampling_tolerance
                )
                for oracle in self.oracles:
                    function, scope = ORACLES[oracle]
                    if scope == "case" and position > 0:
                        continue
                    verdict = function(run)
                    report.verdicts += 1
                    if not verdict.ok:
                        self._handle_failure(report, case, verdict)
                result, _error = run.exact
                if result is not None:
                    signature = coverage_signature(machine, result)
                    if report.coverage.add(signature):
                        case_signatures.append(signature)
            if case_signatures:
                generator.note_novelty(case_workloads(case))
                report.novel.append((case, case_signatures))
            report.cases_run = index + 1
            self._report(
                f"[{index + 1}/{self.cases}] {case.name}: {case.describe()} "
                f"(+{len(case_signatures)} signatures, "
                f"{len(report.coverage)} total)"
            )


def run_fuzz(
    cases: int,
    *,
    seed: int = 0,
    machines: Optional[Sequence[str]] = None,
    oracles: Optional[Sequence[str]] = None,
    corpus_dir: Optional[Path] = None,
    progress: Optional[ProgressFn] = None,
    **kwargs,
) -> FuzzReport:
    """One-call campaign — the :mod:`repro.api` face of the fuzzer."""
    return FuzzCampaign(
        cases,
        seed=seed,
        machines=machines,
        oracles=oracles,
        corpus_dir=corpus_dir,
        progress=progress,
        **kwargs,
    ).run()


def replay_case(
    entry: CorpusCase,
    *,
    sampling_tolerance: float = DEFAULT_SAMPLING_TOLERANCE,
) -> List[OracleVerdict]:
    """Re-run one corpus entry's oracle/machine contract; all must pass."""
    verdicts: List[OracleVerdict] = []
    trace = entry.case.build_trace()
    for position, machine in enumerate(entry.machines):
        run = MachineRun(
            entry.case, trace, machine, sampling_tolerance=sampling_tolerance
        )
        for oracle in entry.oracles:
            function, scope = ORACLES[oracle]
            if scope == "case" and position > 0:
                continue
            verdicts.append(function(run))
    return verdicts


def replay_corpus(
    directory: Path,
    *,
    progress: Optional[ProgressFn] = None,
    sampling_tolerance: float = DEFAULT_SAMPLING_TOLERANCE,
) -> List[Tuple[Path, List[OracleVerdict]]]:
    """Replay every corpus file under ``directory`` in name order."""
    outcomes: List[Tuple[Path, List[OracleVerdict]]] = []
    for path, entry in load_corpus(directory):
        verdicts = replay_case(entry, sampling_tolerance=sampling_tolerance)
        outcomes.append((path, verdicts))
        failed = [verdict for verdict in verdicts if not verdict.ok]
        if progress is not None:
            status = "ok" if not failed else f"{len(failed)} FAILED"
            progress(f"{path.name}: {len(verdicts)} verdicts, {status}")
    return outcomes
