"""Delta-debugging shrinker: minimize a failing fuzz case.

Given a case and a predicate ("does this oracle still fail?"), the
shrinker greedily applies structure-reducing transformations and keeps
every candidate on which the failure reproduces:

1. drop phases, one at a time (a one-phase repro beats a four-phase one);
2. collapse scenario repetition to a single pass;
3. halve the dynamic-instruction budget (down to the case floor);
4. reset workload knob overrides to their registered defaults, knob by
   knob;
5. relax the composition: unshuffle the interleave, restore the default
   block size;
6. reset machine tuning knobs toward their defaults one field at a time
   (a failure that survives at the default window/IQ/SLIQ sizes is a
   simulator bug, not a corner-case configuration).

The pass list loops to a fixpoint, so transformations re-enabled by
earlier ones (e.g. another size halving after a phase was dropped) are
still applied.  Everything is deterministic: candidates are generated in
a fixed order and evaluated by re-running only the failing oracle on the
failing machine through :func:`~repro.fuzz.oracles.evaluate_oracle`,
each time from a fresh trace and pipeline.  ``budget`` caps the number
of predicate evaluations, since each one is a full differential
simulation.
"""

from __future__ import annotations

from typing import Callable, Iterator, Tuple

from .spec import CaseSpec, MachineTuning, MIN_CASE_SIZE, PhaseSpec

#: A predicate deciding whether a candidate still reproduces the failure.
FailsFn = Callable[[CaseSpec], bool]

#: Default cap on predicate evaluations during one shrink.
DEFAULT_SHRINK_BUDGET = 64


def _candidates(case: CaseSpec) -> Iterator[CaseSpec]:
    """Strictly-smaller variants of ``case``, most aggressive first."""
    # 1. Drop whole phases.
    if len(case.phases) > 1:
        for index in range(len(case.phases)):
            phases = case.phases[:index] + case.phases[index + 1 :]
            kind = "single" if len(phases) == 1 else case.kind
            yield case.with_(phases=phases, kind=kind)
    # 2. Collapse repetition.
    if case.repeat > 1:
        yield case.with_(repeat=1)
    # 3. Halve the budget.
    if case.size // 2 >= MIN_CASE_SIZE:
        yield case.with_(size=case.size // 2)
    # 4. Reset knob overrides, one knob at a time.
    for index, phase in enumerate(case.phases):
        for knob in sorted(phase.knobs):
            remaining = {k: v for k, v in phase.knobs.items() if k != knob}
            reset = PhaseSpec(workload=phase.workload, weight=phase.weight, knobs=remaining)
            yield case.with_(phases=case.phases[:index] + (reset,) + case.phases[index + 1 :])
        if phase.weight != 1.0:
            flat = PhaseSpec(workload=phase.workload, weight=1.0, knobs=phase.knobs)
            yield case.with_(phases=case.phases[:index] + (flat,) + case.phases[index + 1 :])
    # 5. Simplify the composition.
    if case.shuffle:
        yield case.with_(shuffle=False)
    if case.kind == "interleave" and case.block != 32:
        yield case.with_(block=32)
    if case.seed != 0:
        yield case.with_(seed=0)
    # 6. Reset machine tuning toward defaults, field by field.
    defaults = MachineTuning()
    for field_name in ("memory_latency", "window", "iq_size", "sliq_size", "checkpoints"):
        current = getattr(case.tuning, field_name)
        default = getattr(defaults, field_name)
        if current != default:
            tuning = MachineTuning(**{**case.tuning.to_dict(), field_name: default})
            yield case.with_(tuning=tuning)


def shrink(
    case: CaseSpec,
    fails: FailsFn,
    *,
    budget: int = DEFAULT_SHRINK_BUDGET,
) -> Tuple[CaseSpec, int]:
    """Greedily minimize ``case`` while ``fails`` keeps returning True.

    Returns ``(minimized case, predicate evaluations spent)``.  The
    input case is assumed to fail; the result is the smallest variant
    found within ``budget`` evaluations on which the failure still
    reproduces.
    """
    attempts = 0
    current = case
    progress = True
    while progress and attempts < budget:
        progress = False
        for candidate in _candidates(current):
            if attempts >= budget:
                break
            attempts += 1
            if fails(candidate):
                current = candidate
                progress = True
                break  # restart the pass list from the smaller case
    return current, attempts
