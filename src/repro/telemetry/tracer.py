"""Wall-clock phase spans and the Chrome trace-event export.

A :class:`Tracer` records named, possibly nested :class:`Span`s — trace
build, functional fast-forward, detailed windows, per-cell sweep
execution — against an injected :class:`~repro.telemetry.clock.Clock`.
The simulator packages never call ``time.*`` themselves (lint rule
RPR102); they accept a tracer and open spans on it, and the clock choice
(wall clock vs the deterministic :class:`~repro.telemetry.clock.TickClock`)
stays a caller decision.

Export targets the Chrome trace-event format (the ``traceEvents`` JSON
array of ``ph: "X"`` complete events with microsecond ``ts``/``dur``),
loadable directly in Perfetto or ``chrome://tracing``.  Spans recorded
by worker processes can be merged in after the fact via
:meth:`Tracer.add_span` with an explicit ``tid``, so a parallel sweep
renders as one process with one track per worker.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .clock import Clock, WallClock

#: Track id used for spans opened on the tracer itself (the main thread).
MAIN_TRACK = 0


class Span:
    """One named interval; use as a context manager or close explicitly."""

    __slots__ = ("name", "category", "start", "end", "depth", "tid", "args", "_tracer")

    def __init__(
        self,
        tracer: Optional["Tracer"],
        name: str,
        category: str,
        start: float,
        depth: int,
        tid: int = MAIN_TRACK,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.start = start
        self.end: Optional[float] = None
        self.depth = depth
        self.tid = tid
        self.args: Dict[str, object] = dict(args or {})

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def annotate(self, **args: object) -> "Span":
        """Attach key/value detail shown in the trace viewer; chains."""
        self.args.update(args)
        return self

    def close(self) -> None:
        if self.end is None and self._tracer is not None:
            self._tracer._close(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Tracer:
    """Records spans; the host-side phase profiler.

    Spans opened through :meth:`span` nest via an explicit stack (the
    innermost open span is the parent), which maps directly onto the
    trace viewer's flame layout.  All recorded spans — including merged
    worker spans — live in one flat list in completion order.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else WallClock()
        self.spans: List[Span] = []
        self._stack: List[Span] = []

    def span(
        self, name: str, category: str = "phase", **args: object
    ) -> Span:
        """Open a nested span; close it via ``with`` or :meth:`Span.close`."""
        opened = Span(
            self, name, category, self.clock.now(), depth=len(self._stack), args=args
        )
        self._stack.append(opened)
        return opened

    def _close(self, span: Span) -> None:
        span.end = self.clock.now()
        # Close any nested spans left open (exception unwound past them).
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            if dangling.end is None:
                dangling.end = span.end
                self.spans.append(dangling)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        self.spans.append(span)

    def add_span(
        self,
        name: str,
        start: float,
        duration: float,
        *,
        category: str = "phase",
        tid: int = MAIN_TRACK,
        **args: object,
    ) -> Span:
        """Record an already-measured interval (e.g. reported by a worker)."""
        span = Span(None, name, category, start, depth=0, tid=tid, args=args)
        span.end = start + duration
        self.spans.append(span)
        return span

    # -- queries -------------------------------------------------------
    def find(self, name: str) -> Iterator[Span]:
        return (span for span in self.spans if span.name == name)

    def total(self, name: str) -> float:
        """Summed duration of every closed span with ``name``."""
        return sum(span.duration for span in self.find(name))

    # -- export --------------------------------------------------------
    def to_chrome_trace(self, process_name: str = "repro") -> Dict[str, object]:
        """The spans as a Chrome trace-event JSON object.

        Complete events (``ph: "X"``) with microsecond timestamps
        rebased to the earliest span, one ``pid`` for the whole run and
        ``tid`` per track, plus metadata events naming the process and
        tracks — the exact shape Perfetto / ``chrome://tracing`` load.
        """
        origin = min((span.start for span in self.spans), default=0.0)
        events: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": MAIN_TRACK,
                "args": {"name": process_name},
            }
        ]
        for tid in sorted({span.tid for span in self.spans}):
            track = "main" if tid == MAIN_TRACK else f"worker-{tid}"
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        for span in self.spans:
            if span.end is None:
                continue
            event: Dict[str, object] = {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round((span.start - origin) * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": 0,
                "tid": span.tid,
            }
            if span.args:
                event["args"] = {key: span.args[key] for key in sorted(span.args)}
            events.append(event)
        # Deterministic order: by track, then start time, then name.
        events.sort(
            key=lambda ev: (
                ev["ph"] != "M",
                ev["tid"],
                ev.get("ts", -1.0),
                ev["name"],
            )
        )
        return {"traceEvents": events, "displayTimeUnit": "ms"}
