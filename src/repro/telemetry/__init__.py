"""Opt-in observability for the simulator: metrics, spans, timelines.

The telemetry layer answers the questions the result statistics cannot:
*when* and *why* did each instruction stall, and where does wall-clock
go inside a sweep.  Four pieces compose:

:class:`MetricsRegistry`
    Host-side counters/gauges/histograms (cache hits, worker
    utilization) with deterministic JSON export.
:class:`Tracer` / :class:`Span`
    Wall-clock phase spans (trace build, fast-forward, detailed
    windows, per-cell sweep execution) behind a :class:`Clock`
    abstraction, exported as Chrome trace-event JSON for Perfetto.
:class:`TimelineProbe`
    Per-instruction lifecycle events in a bounded ring buffer, rendered
    as a Konata-style ASCII pipeline timeline.
:class:`StallAttributionProbe`
    A CPI breakdown classifying every cycle into exactly one of
    base / rob_full / checkpoint_wait / memory / branch / other.

:class:`TelemetrySession` bundles them for the common case and plugs
into :class:`repro.api.Simulation` via ``telemetry=``; the CLI surfaces
it as ``repro profile`` and ``repro timeline``.  Everything is strictly
opt-in: without a session, no probe is attached, no clock is read, and
simulation results are bit-identical to a telemetry-free build.

This package is deliberately *outside* the simulator's restricted
package sets: it may read wall clocks (RPR102 does not apply here) and
is not semantically fingerprinted, because nothing in it can influence a
simulation result — probes are pure observers by contract.
"""

from __future__ import annotations

from typing import List, Optional

from .clock import Clock, ManualClock, TickClock, WallClock
from .exporters import (
    chrome_trace_json,
    render_stall_table,
    render_timeline,
    timeline_rows,
    validate_chrome_trace,
    write_chrome_trace,
)
from .logging import get_logger, resolve_level, setup_cli_logging
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .stalls import CATEGORIES, StallAttributionProbe
from .timeline import DEFAULT_CAPACITY, TimelineEvent, TimelineProbe
from .tracer import MAIN_TRACK, Span, Tracer


class TelemetrySession:
    """One profiling run's bundle: tracer + metrics + the two probes.

    Pass a session to :class:`repro.api.Simulation` (or
    ``api.run(telemetry=...)``) and it attaches its probes to every
    pipeline of the run, wraps the run in tracer spans, and collects the
    stall-attribution and timeline data alongside the ordinary result::

        session = TelemetrySession()
        result = api.run(config, trace, telemetry=session)
        print(render_stall_table({trace.name: session.stalls.breakdown()}))

    ``deterministic=True`` swaps the wall clock for a
    :class:`TickClock`, making every exported span file byte-identical
    across runs — the mode the CI smoke job uses.  ``timeline=False``
    drops the per-instruction probe (cheaper for stall-only profiling);
    ``stalls=False`` additionally drops the stall classifier, leaving a
    spans-only session — what ``repro bench`` uses to split sampled
    wall-clock into fast-forward vs detailed-window time without any
    per-cycle probe overhead.
    """

    def __init__(
        self,
        *,
        deterministic: bool = False,
        timeline: bool = True,
        stalls: bool = True,
        timeline_capacity: int = DEFAULT_CAPACITY,
        clock: Optional[Clock] = None,
    ) -> None:
        if clock is None:
            clock = TickClock() if deterministic else WallClock()
        self.deterministic = deterministic
        self.clock = clock
        self.tracer = Tracer(clock)
        self.metrics = MetricsRegistry()
        self.stalls: Optional[StallAttributionProbe] = (
            StallAttributionProbe() if stalls else None
        )
        self.timeline: Optional[TimelineProbe] = (
            TimelineProbe(timeline_capacity) if timeline else None
        )

    def probes(self) -> List[object]:
        """The probes a Simulation should attach for this session."""
        attach: List[object] = []
        if self.stalls is not None:
            attach.append(self.stalls)
        if self.timeline is not None:
            attach.append(self.timeline)
        return attach


__all__ = [
    "CATEGORIES",
    "Clock",
    "Counter",
    "DEFAULT_CAPACITY",
    "Gauge",
    "Histogram",
    "MAIN_TRACK",
    "ManualClock",
    "MetricsRegistry",
    "Span",
    "StallAttributionProbe",
    "TelemetrySession",
    "TickClock",
    "TimelineEvent",
    "TimelineProbe",
    "Tracer",
    "WallClock",
    "chrome_trace_json",
    "get_logger",
    "render_stall_table",
    "render_timeline",
    "resolve_level",
    "setup_cli_logging",
    "timeline_rows",
    "validate_chrome_trace",
    "write_chrome_trace",
]
