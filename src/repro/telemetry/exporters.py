"""Serialisation of telemetry: Chrome traces, stall tables, timelines.

Three consumers, three shapes:

* **Perfetto / chrome://tracing** — :func:`write_chrome_trace` emits the
  ``traceEvents`` JSON produced by
  :meth:`~repro.telemetry.tracer.Tracer.to_chrome_trace`, and
  :func:`validate_chrome_trace` is the schema check the CI
  telemetry-smoke job runs against the emitted file;
* **terminal reports** — :func:`render_stall_table` turns per-workload
  :class:`~repro.telemetry.stalls.StallAttributionProbe` breakdowns into
  the stacked-percentage table style the paper's Figure 12 uses;
* **pipeline timelines** — :func:`render_timeline` draws a Konata-style
  ASCII lane per instruction through
  :func:`repro.analysis.report.format_timeline`.

Every export is deterministic: dict keys are sorted, event order is a
pure function of the recorded spans, and floats are rounded before
serialisation — so identical runs produce byte-identical files.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Sequence

from ..analysis.report import format_stacked_percentages, format_timeline
from .stalls import CATEGORIES
from .timeline import TimelineEvent
from .tracer import Tracer

#: Phases of a Chrome trace event this exporter emits (complete + metadata).
_VALID_PHASES = {"X", "M"}


def chrome_trace_json(tracer: Tracer, process_name: str = "repro") -> str:
    """The tracer's spans as a deterministic Chrome trace JSON string."""
    return json.dumps(
        tracer.to_chrome_trace(process_name), sort_keys=True, separators=(",", ":")
    )


def write_chrome_trace(tracer: Tracer, path, process_name: str = "repro") -> None:
    """Write the Chrome trace JSON to ``path`` (byte-deterministic)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(chrome_trace_json(tracer, process_name))
        handle.write("\n")


def validate_chrome_trace(data: object) -> List[str]:
    """Schema problems in a parsed Chrome trace object ([] when valid).

    Checks the subset of the trace-event format this package emits —
    enough to guarantee Perfetto loads the file: a ``traceEvents`` list
    whose entries carry ``name``/``ph``/``pid``/``tid``, with complete
    events (``ph: "X"``) adding non-negative numeric ``ts``/``dur``.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: unexpected phase {phase!r}")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"{where}: {key} must be a non-negative number")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems


def render_stall_table(
    breakdowns: Mapping[str, Mapping[str, int]],
) -> str:
    """Per-workload CPI stall attribution as a stacked-percentage table.

    ``breakdowns`` maps a row label (workload or config name) to the
    bucket -> cycles dict of a
    :class:`~repro.telemetry.stalls.StallAttributionProbe`.
    """
    stacks: Dict[str, Dict[str, float]] = {}
    for label, breakdown in breakdowns.items():
        total = sum(breakdown.values())
        stacks[label] = {
            category: (100.0 * breakdown.get(category, 0) / total) if total else 0.0
            for category in CATEGORIES
        }
    return format_stacked_percentages(stacks, CATEGORIES)


def timeline_rows(events: Sequence[TimelineEvent]) -> List[Dict[str, object]]:
    """Timeline events as the plain dict rows the report renderer draws."""
    rows: List[Dict[str, object]] = []
    for event in events:
        rows.append(
            {
                "seq": event.seq,
                "trace_index": event.trace_index,
                "label": event.label,
                "fetch": event.fetch_cycle,
                "dispatch": event.dispatch_cycle,
                "issue": event.issue_cycle,
                "complete": event.complete_cycle,
                "commit": event.commit_cycle,
                "squashed": event.squashed,
                "mispredicted": event.mispredicted,
                "l2_miss": event.l2_miss,
            }
        )
    return rows


def render_timeline(events: Sequence[TimelineEvent], width: int = 100) -> str:
    """Konata-style ASCII pipeline timeline of ``events``."""
    return format_timeline(timeline_rows(events), width=width)
