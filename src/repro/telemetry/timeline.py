"""Per-instruction lifecycle recording on the probe API.

:class:`TimelineProbe` observes dispatch/issue/complete/commit/squash
through :mod:`repro.core.probes` and stores one record per *finished*
instruction (committed or squashed) in a bounded ring buffer.  It is a
pure observer and deliberately does **not** subscribe to ``on_cycle``:
lifecycle cycle numbers come from the timestamps the pipeline already
stamps on every :class:`~repro.isa.instruction.DynInst`, so attaching
the probe leaves the event-driven cycle-skipping kernel's fast path
fully intact (no per-cycle forcing), and the recorded cycles are
identical under ``force_per_cycle``.

Fetch-stall gaps fall out of the records: consecutive committed
instructions whose fetch cycles are more than one apart bracket a
front-end bubble (redirect penalty or I-cache miss), which the ASCII
timeline renderer marks explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.probes import Probe
from ..isa.instruction import DynInst

#: Default ring capacity: enough for a whole small workload while
#: bounding memory on XL traces (one record is a few dozen bytes).
DEFAULT_CAPACITY = 65536


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    """Lifecycle of one finished dynamic instruction."""

    seq: int
    trace_index: int
    label: str
    fetch_cycle: Optional[int]
    dispatch_cycle: Optional[int]
    issue_cycle: Optional[int]
    complete_cycle: Optional[int]
    commit_cycle: Optional[int]
    squashed: bool
    mispredicted: bool
    l2_miss: bool

    @property
    def committed(self) -> bool:
        return not self.squashed


def _record(inst: DynInst, squashed: bool, end_cycle: Optional[int]) -> TimelineEvent:
    return TimelineEvent(
        seq=inst.seq,
        trace_index=inst.trace_index,
        label=inst.instr.describe(),
        fetch_cycle=inst.fetch_cycle,
        dispatch_cycle=inst.dispatch_cycle,
        issue_cycle=inst.issue_cycle,
        complete_cycle=inst.complete_cycle,
        commit_cycle=end_cycle,
        squashed=squashed,
        mispredicted=inst.mispredicted,
        l2_miss=inst.l2_miss,
    )


class TimelineProbe(Probe):
    """Bounded ring buffer of per-instruction lifecycle events.

    Records are appended at commit/squash (when every timestamp is
    final); once ``capacity`` is reached the oldest records are
    overwritten, so a long run keeps the *most recent* window of
    activity.  ``dropped`` counts the overwritten records.  The ring
    accumulates across attaches (a sampled run attaches the probe to
    every window pipeline in turn, like the stall probe); call
    :meth:`reset` to start over.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: List[Optional[TimelineEvent]] = []
        self._next = 0
        self.recorded = 0
        self.dropped = 0

    def reset(self) -> None:
        self._ring = []
        self._next = 0
        self.recorded = 0
        self.dropped = 0

    def _append(self, event: TimelineEvent) -> None:
        if len(self._ring) < self.capacity:
            self._ring.append(event)
        else:
            self._ring[self._next] = event
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1
        self.recorded += 1

    def on_commit(self, pipeline, inst: DynInst) -> None:
        # commit_cycle is stamped by the commit stage before the hook on
        # both shipped machines; fall back to the current cycle so the
        # record is complete on any custom machine that stamps later.
        end = inst.commit_cycle if inst.commit_cycle is not None else pipeline.cycle
        self._append(_record(inst, squashed=False, end_cycle=end))

    def on_squash(self, pipeline, inst: DynInst) -> None:
        # Only instructions that made it into the window are on the
        # timeline; fetched-but-never-dispatched victims carry no stage
        # timestamps worth drawing.
        if inst.dispatch_cycle is not None:
            self._append(_record(inst, squashed=True, end_cycle=None))

    def events(self) -> List[TimelineEvent]:
        """Recorded events in append (≈ retirement) order."""
        return self._ring[self._next :] + self._ring[: self._next]

    def window(self, start: int, stop: int) -> List[TimelineEvent]:
        """Events whose trace index falls in ``[start, stop)``."""
        if stop < start:
            raise ValueError(f"window stop {stop} precedes start {start}")
        return [ev for ev in self.events() if start <= ev.trace_index < stop]
