"""Clock abstraction behind every telemetry timestamp.

Telemetry is the one part of the repository that *wants* wall-clock
time, while the simulator packages are forbidden from touching it (lint
rule RPR102 keeps ``time.*`` out of every result-bearing package so
results stay a pure function of the configuration).  The resolution is
an injected clock: the simulator-side hooks accept a
:class:`~repro.telemetry.tracer.Tracer` whose clock lives *here*, in a
package outside the RPR102 scope, and deterministic runs (CI, golden
files) swap in :class:`TickClock` so two identical invocations emit
byte-identical trace files.
"""

from __future__ import annotations

import time


class Clock:
    """Monotonic time source for spans and metrics timestamps."""

    def now(self) -> float:
        """Current time in seconds (monotonic; origin unspecified)."""
        raise NotImplementedError


class WallClock(Clock):
    """Real wall-clock time via ``time.perf_counter`` (the default)."""

    def now(self) -> float:
        return time.perf_counter()


class TickClock(Clock):
    """Deterministic clock: every :meth:`now` call advances one fixed tick.

    Span durations become a function of the *call sequence* alone, so a
    deterministic program produces byte-identical trace exports run over
    run — the property the CI telemetry-smoke job asserts.  The default
    tick of 1 ms keeps exported microsecond timestamps integral.
    """

    def __init__(self, tick: float = 0.001) -> None:
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        self.tick = tick
        self._now = 0.0

    def now(self) -> float:
        self._now += self.tick
        return self._now


class ManualClock(Clock):
    """Test clock advanced explicitly via :meth:`advance`."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds})")
        self._now += seconds
