"""Structured logging for the ``repro`` CLI.

The CLI historically reported progress with ad-hoc ``print(...,
file=sys.stderr)`` calls; the root ``--log-level``/``-v`` flag routes
those through stdlib :mod:`logging` with one consistent formatter, so
``repro -v sweep ...`` timestamps its progress lines and ``repro
--log-level debug ...`` exposes the engine's internals without touching
stdout (tables and JSON stay pipeable).

Only the CLI configures handlers; library code just calls
:func:`get_logger` and emits — applications embedding :mod:`repro`
keep full control of logging configuration, per stdlib convention.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

#: Root logger name for the whole package.
ROOT_LOGGER = "repro"

#: One consistent formatter for every CLI log line.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
LOG_DATEFMT = "%H:%M:%S"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The package logger, or a namespaced child (``repro.<name>``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def resolve_level(log_level: Optional[str], verbosity: int = 0) -> int:
    """Effective level from ``--log-level`` and repeated ``-v`` flags.

    An explicit ``--log-level`` wins; otherwise ``-v`` means INFO and
    ``-vv`` (or more) DEBUG.  The quiet default is WARNING, which keeps
    the CLI's stdout/stderr contract unchanged when neither flag is
    given.
    """
    if log_level:
        numeric = logging.getLevelName(log_level.upper())
        if not isinstance(numeric, int):
            raise ValueError(f"unknown log level {log_level!r}")
        return numeric
    if verbosity >= 2:
        return logging.DEBUG
    if verbosity == 1:
        return logging.INFO
    return logging.WARNING


def setup_cli_logging(
    log_level: Optional[str] = None, verbosity: int = 0, stream=None
) -> logging.Logger:
    """Configure the CLI's stderr handler; returns the package logger.

    Idempotent: re-invoking replaces the handler rather than stacking
    duplicates (tests call ``main()`` many times in one process).
    """
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(resolve_level(log_level, verbosity))
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT, datefmt=LOG_DATEFMT))
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    # The CLI owns the tree below 'repro'; don't duplicate into root.
    logger.propagate = False
    return logger
