"""CPI stall attribution: where did every cycle go?

:class:`StallAttributionProbe` classifies **each simulated cycle into
exactly one bucket**, so the buckets always sum to the run's total
cycles — the invariant the acceptance tests assert on both shipped
machines.  The taxonomy (first match wins):

``base``
    At least one instruction committed this cycle: the machine made
    architectural progress.
``rob_full`` / ``checkpoint_wait``
    No commit, and the machine's commit structure is the bottleneck —
    the baseline's ROB is full, or the checkpointed machine is draining
    a checkpoint / its checkpoint table is full.  This is the paper's
    headline pathology: in-order commit serialised behind a long miss.
``memory``
    No commit and no structural backpressure, but at least one L2-miss
    load is in flight: the window is waiting on main memory.
``branch``
    The front end is waiting out a redirect penalty or I-cache refill
    (fetch buffer empty, resume cycle in the future) with nothing else
    to blame.
``other``
    Everything else (issue-width limits, drain tails, warm-up).

The probe is **skip-aware**: it overrides both ``on_cycle`` and
``on_idle_cycles``, so the event-driven kernel keeps skipping idle
spans.  Every signal the classifier reads is constant across an idle
span (no commits, completions, dispatches or redirects can occur inside
one), so classifying the span once and weighting by its length is
bit-identical to stepping it cycle by cycle.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.probes import Probe
from ..isa.instruction import DynInst

#: Bucket names in reporting order.
CATEGORIES: Tuple[str, ...] = (
    "base",
    "rob_full",
    "checkpoint_wait",
    "memory",
    "branch",
    "other",
)


class StallAttributionProbe(Probe):
    """Per-cycle CPI breakdown; buckets sum exactly to total cycles.

    The bucket counters accumulate across attaches (a sampled run
    attaches the same probe to every window pipeline in turn), so after
    a sampled run they cover every *detailed* cycle simulated.  Call
    :meth:`reset` to start over; per-pipeline state (committed watermark,
    in-flight misses, structure handles) rebinds on every attach.
    """

    def __init__(self) -> None:
        self.cycles: Dict[str, int] = {category: 0 for category in CATEGORIES}
        self._committed_seen = 0
        self._pending_l2 = 0
        self._rob = None
        self._checkpoints = None

    def reset(self) -> None:
        self.cycles = {category: 0 for category in CATEGORIES}

    def on_attach(self, pipeline) -> None:
        self._committed_seen = pipeline.committed
        self._pending_l2 = 0
        # The baseline has a ROB; the checkpointed machine a checkpoint
        # table.  Resolve the structural signal once at attach time.
        self._rob = getattr(pipeline, "rob", None)
        self._checkpoints = getattr(pipeline, "checkpoints", None)

    # -- memory pressure tracking --------------------------------------
    def on_issue(self, pipeline, inst: DynInst) -> None:
        # Hooks fire after _execution_time, so the L2 verdict is final.
        if inst.l2_miss:
            self._pending_l2 += 1

    def on_complete(self, pipeline, inst: DynInst) -> None:
        if inst.l2_miss:
            self._pending_l2 -= 1

    def on_squash(self, pipeline, inst: DynInst) -> None:
        # A squashed in-flight load never reaches on_complete (write-back
        # drops SQUASHED entries), so release its miss here.
        if inst.l2_miss and inst.issue_cycle is not None and inst.complete_cycle is None:
            self._pending_l2 -= 1

    # -- classification ------------------------------------------------
    def _classify_stall(self, pipeline) -> str:
        """Bucket for a cycle with no commit (also valid for idle spans)."""
        rob = self._rob
        if rob is not None and rob.is_full:
            return "rob_full"
        checkpoints = self._checkpoints
        if checkpoints is not None and (
            pipeline._draining is not None or checkpoints.is_full
        ):
            return "checkpoint_wait"
        if self._pending_l2 > 0:
            return "memory"
        frontend = pipeline.frontend
        if (
            not pipeline.fetch_buffer
            and not frontend.exhausted
            and frontend.resume_cycle > pipeline.cycle
        ):
            return "branch"
        return "other"

    def on_cycle(self, pipeline) -> None:
        committed = pipeline.committed
        if committed > self._committed_seen:
            self._committed_seen = committed
            self.cycles["base"] += 1
            return
        self.cycles[self._classify_stall(pipeline)] += 1

    def on_idle_cycles(self, pipeline, cycles: int) -> None:
        # Commits never happen inside a skipped span, and every signal
        # _classify_stall reads is constant across it (the kernel only
        # skips when all stages are provably no-ops), so one
        # classification weighted by the span length matches per-cycle
        # stepping exactly.
        self.cycles[self._classify_stall(pipeline)] += cycles

    # -- reporting -----------------------------------------------------
    @property
    def total(self) -> int:
        return sum(self.cycles.values())

    def breakdown(self) -> Dict[str, int]:
        """Bucket -> cycles, in :data:`CATEGORIES` order."""
        return {category: self.cycles[category] for category in CATEGORIES}

    def fractions(self) -> Dict[str, float]:
        total = self.total
        if not total:
            return {category: 0.0 for category in CATEGORIES}
        return {category: self.cycles[category] / total for category in CATEGORIES}
