"""Counters, gauges and histograms with deterministic JSON export.

The simulator's own :class:`~repro.common.stats.StatsRegistry` records
*simulated* quantities and is part of every result (and therefore of the
cache contract).  The :class:`MetricsRegistry` here is its host-side
sibling: it records facts about the *run* — cache hits, worker
utilization, spans completed — that must never leak into results.
Keeping the two registries separate is what lets telemetry stay strictly
opt-in: a simulation's ``SimulationResult`` is bit-identical whether or
not a ``MetricsRegistry`` was watching.

Export is deterministic by construction: ``to_dict`` sorts every name
and bucket, and ``to_json`` serialises with sorted keys, so two runs
that observed the same events emit byte-identical JSON.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional


class Counter:
    """Monotonically increasing count of events."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (add {amount})")
        self.value += amount


class Gauge:
    """A value that can move both ways (queue depth, workers busy)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Power-of-two bucketed distribution of observed values.

    Buckets hold counts of observations with ``value <= bound``; the
    bound sequence is 0, 1, 2, 4, 8, ... so cheap integer quantities
    (durations in ms, batch sizes) land in stable, merge-friendly
    buckets.  ``sum``/``count``/``min``/``max`` are exact.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        bound = 0
        while bound < value:
            bound = 1 if bound == 0 else bound * 2
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named counters/gauges/histograms with deterministic export.

    Instruments are created on first use and idempotent thereafter
    (asking twice for the same name returns the same object); asking for
    an existing name as a *different* kind is an error — silent aliasing
    is how dashboards end up summing a gauge into a counter.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        kinds = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other, table in kinds.items():
            if other != kind and name in table:
                raise ValueError(f"metric {name!r} already registered as a {other}")

    def counter(self, name: str) -> Counter:
        self._check_unique(name, "counter")
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        self._check_unique(name, "gauge")
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        self._check_unique(name, "histogram")
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def names(self) -> List[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def to_dict(self) -> Dict[str, object]:
        """Deterministic plain-dict snapshot (sorted names and buckets)."""
        out: Dict[str, object] = {}
        for name in sorted(self._counters):
            out[name] = {"kind": "counter", "value": self._counters[name].value}
        for name in sorted(self._gauges):
            out[name] = {"kind": "gauge", "value": self._gauges[name].value}
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            out[name] = {
                "kind": "histogram",
                "count": histogram.count,
                "sum": histogram.total,
                "min": histogram.minimum,
                "max": histogram.maximum,
                "buckets": {
                    str(bound): histogram.buckets[bound]
                    for bound in sorted(histogram.buckets)
                },
            }
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)
