"""A direct-mapped branch target buffer.

The trace already knows every branch target, so the BTB only influences
performance through *misses*: a taken branch whose target is not in the
BTB is treated as a misprediction by the front end (it cannot redirect
fetch to an unknown target).
"""

from __future__ import annotations

from typing import Optional

from ..common.config import BranchConfig
from ..common.stats import StatsRegistry


class BranchTargetBuffer:
    """Direct-mapped tagged target buffer."""

    __slots__ = ("_entries", "_mask", "_tags", "_targets", "_hits", "_misses")

    def __init__(self, config: BranchConfig, stats: StatsRegistry) -> None:
        self._entries = config.btb_entries
        self._mask = self._entries - 1
        self._tags = [None] * self._entries  # type: list[Optional[int]]
        self._targets = [0] * self._entries
        self._hits = stats.counter("btb.hits")
        self._misses = stats.counter("btb.misses")

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target of the branch at ``pc`` or None on a BTB miss."""
        index = self._index(pc)
        if self._tags[index] == pc:
            self._hits.add()
            return self._targets[index]
        self._misses.add()
        return None

    def update(self, pc: int, target: int) -> None:
        """Install (or refresh) the target of a resolved taken branch."""
        index = self._index(pc)
        self._tags[index] = pc
        self._targets[index] = target

    def invalidate(self) -> None:
        """Flush the whole buffer (used by tests)."""
        self._tags = [None] * self._entries
        self._targets = [0] * self._entries

    def warm_state(self) -> list:
        """Valid entries as ``[[index, tag, target], ...]`` (JSON-safe)."""
        return [
            [index, tag, self._targets[index]]
            for index, tag in enumerate(self._tags)
            if tag is not None
        ]

    def load_warm_state(self, state: list) -> None:
        """Restore :meth:`warm_state` output, replacing the whole buffer."""
        self.invalidate()
        for index, tag, target in state:
            if not 0 <= index < self._entries:
                raise ValueError(f"btb warm state entry {index!r} outside {self._entries} slots")
            self._tags[index] = int(tag)
            self._targets[index] = int(target)
