"""Branch-predictor interface and the trivial static predictors."""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..common.config import BranchConfig
from ..common.stats import StatsRegistry


class BranchPredictor(ABC):
    """Interface shared by all direction predictors.

    The pipeline calls :meth:`predict` at fetch time and :meth:`update`
    when the branch resolves.  Predictors are speculatively updated at
    prediction time only for their history register (as gshare does); the
    pattern tables are updated at resolution.
    """

    __slots__ = ("config", "stats", "_predictions", "_mispredictions")

    def __init__(self, config: BranchConfig, stats: StatsRegistry) -> None:
        self.config = config
        self.stats = stats
        self._predictions = stats.counter("branch.predictions")
        self._mispredictions = stats.counter("branch.mispredictions")

    @abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""

    @abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train the predictor with the resolved outcome."""

    def record_outcome(self, predicted: bool, actual: bool) -> None:
        """Book-keeping used by the pipeline; counts accuracy statistics."""
        self._predictions.add()
        if predicted != actual:
            self._mispredictions.add()

    def warm(self, pc: int, taken: bool) -> None:
        """Train on one fast-forwarded branch without accuracy statistics.

        Used by the sampled-execution fast-forward engine.  The default
        trains the pattern table with the architectural outcome, which
        is exact for pc-indexed predictors (bimodal: the functional pass
        produces the same table a detailed run would) and a no-op for
        the static predictors.  History-based predictors override this —
        see ``GSharePredictor.warm`` for why gshare only advances its
        history register.
        """
        self.update(pc, taken)

    def warm_state(self):
        """Serializable warm state, or None for stateless predictors.

        Captures whatever :meth:`warm` evolves so sampled execution can
        snapshot/restore the predictor at window boundaries; accuracy
        statistics are deliberately excluded.
        """
        return None

    def load_warm_state(self, state) -> None:
        """Restore :meth:`warm_state` output (no-op for stateless predictors)."""

    @property
    def accuracy(self) -> float:
        """Fraction of predictions that were correct so far."""
        total = self._predictions.value
        if not total:
            return 1.0
        return 1.0 - self._mispredictions.value / total


class StaticTakenPredictor(BranchPredictor):
    """Always predicts taken.  Loop branches love it; everything else does not."""

    __slots__ = ()

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        return None


class StaticNotTakenPredictor(BranchPredictor):
    """Always predicts not-taken."""

    __slots__ = ()

    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        return None


class PerfectPredictor(BranchPredictor):
    """An oracle used for limit studies.

    The pipeline special-cases ``config.perfect`` and never reports a
    misprediction, so this class only has to return something sensible.
    """

    __slots__ = ()

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        return None


class BimodalPredictor(BranchPredictor):
    """A per-pc 2-bit saturating-counter predictor (no global history)."""

    __slots__ = ("_entries", "_counters")

    def __init__(self, config: BranchConfig, stats: StatsRegistry) -> None:
        super().__init__(config, stats)
        self._entries = config.history_entries
        self._counters = [2] * self._entries  # weakly taken

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self._entries - 1)

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)

    def warm_state(self):
        return {"counters": list(self._counters)}

    def load_warm_state(self, state) -> None:
        counters = [int(value) for value in state["counters"]]
        if len(counters) != self._entries:
            raise ValueError(
                f"bimodal warm state has {len(counters)} counters, table holds {self._entries}"
            )
        self._counters = counters
