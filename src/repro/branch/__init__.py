"""Branch prediction: gshare, bimodal, static predictors and a BTB."""

from ..common.config import BranchConfig
from ..common.stats import StatsRegistry
from .btb import BranchTargetBuffer
from .gshare import GSharePredictor
from .predictor import (
    BimodalPredictor,
    BranchPredictor,
    PerfectPredictor,
    StaticNotTakenPredictor,
    StaticTakenPredictor,
)


def build_predictor(config: BranchConfig, stats: StatsRegistry) -> BranchPredictor:
    """Factory mapping ``BranchConfig.kind`` to a predictor instance."""
    if config.perfect:
        return PerfectPredictor(config, stats)
    if config.kind == "gshare":
        return GSharePredictor(config, stats)
    if config.kind == "bimodal":
        return BimodalPredictor(config, stats)
    if config.kind == "static_taken":
        return StaticTakenPredictor(config, stats)
    if config.kind == "static_not_taken":
        return StaticNotTakenPredictor(config, stats)
    raise ValueError(f"unknown branch predictor kind {config.kind!r}")


__all__ = [
    "BranchPredictor",
    "BranchTargetBuffer",
    "GSharePredictor",
    "BimodalPredictor",
    "PerfectPredictor",
    "StaticTakenPredictor",
    "StaticNotTakenPredictor",
    "build_predictor",
]
