"""The gshare global-history predictor used by Table 1 (16K entries)."""

from __future__ import annotations

from ..common.config import BranchConfig
from ..common.stats import StatsRegistry
from .predictor import BranchPredictor


class GSharePredictor(BranchPredictor):
    """gshare: global history XOR pc indexes a table of 2-bit counters.

    The global history register is updated speculatively at prediction
    time and repaired on a misprediction (the pipeline calls
    :meth:`repair_history` with the history snapshot it saved when the
    branch was predicted).
    """

    __slots__ = (
        "_entries",
        "_index_mask",
        "_history_bits",
        "_history_mask",
        "_counters",
        "_history",
    )

    def __init__(self, config: BranchConfig, stats: StatsRegistry) -> None:
        super().__init__(config, stats)
        self._entries = config.history_entries
        self._index_mask = self._entries - 1
        self._history_bits = max(1, self._entries.bit_length() - 1)
        self._history_mask = (1 << self._history_bits) - 1
        self._counters = [2] * self._entries  # initialised weakly taken
        self._history = 0

    # -- history management -------------------------------------------------
    @property
    def history(self) -> int:
        """Current (speculative) global history register."""
        return self._history

    def repair_history(self, history: int) -> None:
        """Restore the history register after a squash.

        ``history`` should be the value captured *after* the mispredicted
        branch's own (corrected) outcome was shifted in.
        """
        self._history = history & self._history_mask

    def snapshot_history(self) -> int:
        """History value to stash alongside a predicted branch."""
        return self._history

    # -- prediction -----------------------------------------------------------
    def _index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ history) & self._index_mask

    def predict(self, pc: int) -> bool:
        index = self._index(pc, self._history)
        prediction = self._counters[index] >= 2
        # Speculative history update with the predicted direction.
        self._history = ((self._history << 1) | int(prediction)) & self._history_mask
        return prediction

    def update(self, pc: int, taken: bool, history: int = None) -> None:  # type: ignore[assignment]
        """Train the counter that produced the prediction.

        ``history`` is the snapshot taken at prediction time; when omitted
        the current history is used (good enough for tests that train the
        predictor in isolation).
        """
        used_history = self._history if history is None else history
        index = self._index(pc, used_history)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)

    def warm(self, pc: int, taken: bool) -> None:
        """Fast-forward warming: evolve the history, leave the table alone.

        The detailed front end runs gshare deeply speculatively: with
        many unresolved branches in flight, predictions index the table
        through histories containing *predicted* bits (corrected only
        when a misprediction resolves), and squashed wrong-path fetches
        train entries at those speculative indexes before the replay
        trains the architectural ones.  A functional pass knows only the
        architectural outcome sequence, so the best it could do is train
        at clean-history indexes — which the detailed machine largely
        never looks up again.  Measured on the branch-storm suite, that
        clean-history training performs *worse* than leaving the table
        at its weakly-taken initialisation (it pollutes entries that
        structural always-taken branches alias into), so warming only
        advances the history register; the sampled driver relies on the
        detailed warmup span to let the machine self-train its table
        (see the architecture docs on sampled-simulation bias).
        """
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def warm_state(self):
        """History register plus counter table.

        Functional warming only advances ``_history`` (see :meth:`warm`),
        but the table is captured too so a snapshot restores the
        predictor to exactly the state it was taken from regardless of
        how that state was produced.
        """
        return {"history": self._history, "counters": list(self._counters)}

    def load_warm_state(self, state) -> None:
        counters = [int(value) for value in state["counters"]]
        if len(counters) != self._entries:
            raise ValueError(
                f"gshare warm state has {len(counters)} counters, table holds {self._entries}"
            )
        self._counters = counters
        self._history = int(state["history"]) & self._history_mask

    def correct_history(self, history_before: int, taken: bool) -> None:
        """Rebuild history after a misprediction of a branch predicted with
        ``history_before``: shift in the *actual* outcome."""
        self._history = ((history_before << 1) | int(taken)) & self._history_mask
