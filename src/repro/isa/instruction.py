"""Static trace instructions and their dynamic (in-flight) instances."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from . import registers
from .opcodes import OpClass, is_branch, is_load, is_memory, is_store


@dataclass(frozen=True, slots=True)
class Instruction:
    """One entry of an execution trace.

    Because the simulator is trace-driven, each ``Instruction`` records a
    concrete dynamic execution of a static instruction: the effective
    memory address of loads/stores and the actual outcome of branches are
    part of the record.  The pipeline models *when* things happen, the
    trace says *what* happened.
    """

    pc: int
    op: OpClass
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    mem_addr: Optional[int] = None
    mem_size: int = 8
    branch_taken: bool = False
    branch_target: Optional[int] = None
    raises_exception: bool = False
    label: str = ""
    # Classification flags, precomputed once at construction: the
    # pipeline stages test them on every dispatch/retire/commit, and a
    # stored bool is much cheaper than re-hashing the op into the
    # OpClass sets each time.  Excluded from equality (fully derived).
    is_load: bool = field(init=False, repr=False, compare=False)
    is_store: bool = field(init=False, repr=False, compare=False)
    is_memory: bool = field(init=False, repr=False, compare=False)
    is_branch: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        op = self.op
        object.__setattr__(self, "is_load", is_load(op))
        object.__setattr__(self, "is_store", is_store(op))
        object.__setattr__(self, "is_memory", is_memory(op))
        object.__setattr__(self, "is_branch", is_branch(op))
        if self.dest is not None and not registers.is_valid(self.dest):
            raise ValueError(f"invalid destination register {self.dest}")
        registers.validate_regs(self.srcs)
        if self.is_memory and self.mem_addr is None:
            raise ValueError(f"memory instruction at pc={self.pc:#x} has no address")
        if self.is_store and self.dest is not None:
            raise ValueError("store instructions must not have a destination register")
        if op is OpClass.BRANCH and self.branch_taken and self.branch_target is None:
            raise ValueError("taken branch requires a target")

    # -- classification helpers ---------------------------------------
    @property
    def writes_register(self) -> bool:
        return self.dest is not None

    # -- serialisation -------------------------------------------------
    def to_record(self) -> Dict[str, Any]:
        """Plain-dict view of every field, round-trippable via :meth:`from_record`.

        The record is the canonical on-disk representation of one trace
        entry (``Trace.to_jsonl`` and :mod:`repro.trace.io` both emit it),
        so it preserves the kernel ``label`` and every other per-instruction
        field exactly.
        """
        return {
            "pc": self.pc,
            "op": self.op.value,
            "dest": self.dest,
            "srcs": list(self.srcs),
            "mem_addr": self.mem_addr,
            "mem_size": self.mem_size,
            "branch_taken": self.branch_taken,
            "branch_target": self.branch_target,
            "raises_exception": self.raises_exception,
            "label": self.label,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "Instruction":
        """Inverse of :meth:`to_record`; validates through ``__post_init__``.

        Raises ``KeyError``/``ValueError``/``TypeError`` on malformed
        records; trace-level loaders wrap those in ``TraceError``.
        """
        return cls(
            pc=record["pc"],
            op=OpClass(record["op"]),
            dest=record.get("dest"),
            srcs=tuple(record.get("srcs", ())),
            mem_addr=record.get("mem_addr"),
            mem_size=record.get("mem_size", 8),
            branch_taken=record.get("branch_taken", False),
            branch_target=record.get("branch_target"),
            raises_exception=record.get("raises_exception", False),
            label=record.get("label", ""),
        )

    # Explicit pickle support: frozen+slots dataclasses fail default
    # pickling on Python 3.10 (setattr on a frozen instance); traces
    # cross process boundaries in the parallel sweep engine.  Routing
    # through to_record/from_record keeps one canonical serialization
    # path, so new fields only ever need to be added there.
    def __reduce__(self):
        return (_instruction_from_record, (self.to_record(),))

    def describe(self) -> str:
        """Compact human-readable rendering used in debug dumps."""
        parts = [f"{self.op.value}"]
        if self.dest is not None:
            parts.append(registers.reg_name(self.dest))
        if self.srcs:
            parts.append(",".join(registers.reg_name(s) for s in self.srcs))
        if self.mem_addr is not None:
            parts.append(f"@{self.mem_addr:#x}")
        if self.is_branch:
            parts.append("taken" if self.branch_taken else "not-taken")
        return " ".join(parts)


def _instruction_from_record(record: Mapping[str, Any]) -> Instruction:
    """Module-level pickle rebuild hook (bound classmethods don't pickle)."""
    return Instruction.from_record(record)


class InstState(enum.Enum):
    """Lifecycle states of a dynamic instruction."""

    FETCHED = "fetched"
    DISPATCHED = "dispatched"
    ISSUED = "issued"
    EXECUTING = "executing"
    DONE = "done"
    COMMITTED = "committed"
    SQUASHED = "squashed"


class RetireClass(enum.Enum):
    """Status categories at pseudo-ROB retirement (Figure 12 of the paper)."""

    MOVED = "moved"
    FINISHED = "finished"
    SHORT_LATENCY = "short_latency"
    FINISHED_LOAD = "finished_load"
    LONG_LATENCY_LOAD = "long_latency_load"
    STORE = "store"


@dataclass(eq=False, slots=True)
class DynInst:
    """A dynamic, in-flight instance of a trace instruction.

    Identity (not value) equality is used: two dynamic instances of the
    same trace entry are different objects with different sequence numbers.

    Dynamic instructions are created at fetch and destroyed at commit or
    squash.  They carry the renamed operands, the structures they occupy
    (ROB slot, checkpoint index, LSQ slot, pseudo-ROB/SLIQ membership) and
    per-stage timestamps used by the analysis modules.

    The class is slotted: one ``DynInst`` is allocated per fetched
    instruction and its fields are the hottest attribute accesses in the
    simulator, so the queue/scheduler bookkeeping that used to ride
    along as ad-hoc attributes (``pending_srcs``, ``iq``, ...) is
    declared here instead.
    """

    seq: int
    trace_index: int
    instr: Instruction
    state: InstState = InstState.FETCHED

    # Renaming ----------------------------------------------------------
    phys_dest: Optional[int] = None
    phys_srcs: List[int] = field(default_factory=list)
    old_phys_dest: Optional[int] = None
    virtual_tag: Optional[int] = None

    # Structure occupancy ------------------------------------------------
    rob_index: Optional[int] = None
    checkpoint_id: Optional[int] = None
    lsq_index: Optional[int] = None
    in_iq: bool = False
    in_sliq: bool = False
    in_pseudo_rob: bool = False

    # Execution status ----------------------------------------------------
    long_latency: bool = False
    l2_miss: bool = False
    dl1_miss: bool = False
    store_drained: bool = False
    predicted_taken: Optional[bool] = None
    mispredicted: bool = False
    retire_class: Optional[RetireClass] = None

    # Timestamps (cycle numbers; None until the event happens) ------------
    fetch_cycle: Optional[int] = None
    dispatch_cycle: Optional[int] = None
    issue_cycle: Optional[int] = None
    complete_cycle: Optional[int] = None
    commit_cycle: Optional[int] = None
    sliq_enter_cycle: Optional[int] = None
    sliq_exit_cycle: Optional[int] = None

    # Scheduler/probe bookkeeping (owned by iq/sliq/probes) ----------------
    #: Physical source registers still unready (maintained by the issue queue).
    pending_srcs: Optional[Any] = None
    #: The issue queue currently (or last) holding this instruction.
    iq: Optional[Any] = None
    #: Wake-up register this instruction is filed under in the SLIQ.
    sliq_wakeup_preg: Optional[int] = None
    #: Late allocation: the physical register was claimed at write-back.
    claimed_phys: bool = False
    #: OccupancyProbe liveness class ("fp_long" / "fp_short" / None).
    live_class: Optional[str] = None
    #: Branch-history register as of fetching this instruction (gshare
    #: front ends only).  Checkpoints snapshot it so a rollback can
    #: restore the predictor to the state the re-fetched instruction was
    #: originally predicted under.
    fetch_history: Optional[int] = None

    # -- convenience -----------------------------------------------------
    @property
    def op(self) -> OpClass:
        return self.instr.op

    @property
    def is_load(self) -> bool:
        return self.instr.is_load

    @property
    def is_store(self) -> bool:
        return self.instr.is_store

    @property
    def is_memory(self) -> bool:
        return self.instr.is_memory

    @property
    def is_branch(self) -> bool:
        return self.instr.is_branch

    @property
    def dest(self) -> Optional[int]:
        return self.instr.dest

    @property
    def srcs(self) -> Tuple[int, ...]:
        return self.instr.srcs

    @property
    def completed(self) -> bool:
        return self.state in (InstState.DONE, InstState.COMMITTED)

    @property
    def squashed(self) -> bool:
        return self.state is InstState.SQUASHED

    def mark_squashed(self) -> None:
        """Transition to SQUASHED (idempotent; never applied to committed instructions)."""
        if self.state is InstState.COMMITTED:
            raise ValueError(f"cannot squash committed instruction seq={self.seq}")
        self.state = InstState.SQUASHED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynInst(seq={self.seq}, {self.instr.describe()}, state={self.state.value})"
        )


def nop(pc: int = 0) -> Instruction:
    """A no-op trace entry, occasionally handy in tests."""
    return Instruction(pc=pc, op=OpClass.NOP)
