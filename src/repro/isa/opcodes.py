"""Operation classes and their execution resources.

The trace-driven simulator does not interpret instruction semantics; it
only needs to know, for each dynamic instruction, which functional unit
executes it, for how long, and whether it touches memory or redirects
fetch.  ``OpClass`` captures exactly that.
"""

from __future__ import annotations

import enum
from typing import Dict

from ..common.config import FunctionalUnitConfig


class OpClass(enum.Enum):
    """Broad operation classes of the modelled ISA."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ALU = "fp_alu"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    FP_LOAD = "fp_load"
    STORE = "store"
    FP_STORE = "fp_store"
    BRANCH = "branch"
    NOP = "nop"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpClass.{self.name}"


#: Operation classes that read memory.
LOAD_CLASSES = frozenset({OpClass.LOAD, OpClass.FP_LOAD})
#: Operation classes that write memory.
STORE_CLASSES = frozenset({OpClass.STORE, OpClass.FP_STORE})
#: Operation classes handled by the memory pipeline.
MEMORY_CLASSES = LOAD_CLASSES | STORE_CLASSES
#: Operation classes handled by the floating-point issue queue.
FP_CLASSES = frozenset(
    {OpClass.FP_ALU, OpClass.FP_MUL, OpClass.FP_DIV, OpClass.FP_LOAD, OpClass.FP_STORE}
)


def is_load(op: OpClass) -> bool:
    """True for integer and floating-point loads."""
    return op in LOAD_CLASSES


def is_store(op: OpClass) -> bool:
    """True for integer and floating-point stores."""
    return op in STORE_CLASSES


def is_memory(op: OpClass) -> bool:
    """True for any memory operation."""
    return op in MEMORY_CLASSES


def is_branch(op: OpClass) -> bool:
    """True for control-transfer instructions."""
    return op is OpClass.BRANCH


def is_fp(op: OpClass) -> bool:
    """True if the instruction is steered to the floating-point queue."""
    return op in FP_CLASSES


class FUType(enum.Enum):
    """The functional-unit pools of Table 1."""

    INT_ALU = "int_alu"
    INT_MULDIV = "int_muldiv"
    FP = "fp"
    MEM_PORT = "mem_port"
    NONE = "none"


#: Which functional-unit pool executes each operation class.
FU_FOR_OP: Dict[OpClass, FUType] = {
    OpClass.INT_ALU: FUType.INT_ALU,
    OpClass.INT_MUL: FUType.INT_MULDIV,
    OpClass.INT_DIV: FUType.INT_MULDIV,
    OpClass.FP_ALU: FUType.FP,
    OpClass.FP_MUL: FUType.FP,
    OpClass.FP_DIV: FUType.FP,
    OpClass.LOAD: FUType.MEM_PORT,
    OpClass.FP_LOAD: FUType.MEM_PORT,
    OpClass.STORE: FUType.MEM_PORT,
    OpClass.FP_STORE: FUType.MEM_PORT,
    OpClass.BRANCH: FUType.INT_ALU,
    OpClass.NOP: FUType.NONE,
}


def execution_latency(op: OpClass, fu: FunctionalUnitConfig) -> int:
    """Pipeline latency of ``op`` on the configured functional units.

    Loads and stores return the address-generation latency only; the
    cache/memory access time is added by the memory hierarchy model.
    """
    if op is OpClass.INT_ALU or op is OpClass.BRANCH:
        return fu.int_alu_latency
    if op is OpClass.INT_MUL:
        return fu.int_mul_latency
    if op is OpClass.INT_DIV:
        return fu.int_div_latency
    if op is OpClass.FP_ALU or op is OpClass.FP_MUL:
        return fu.fp_latency
    if op is OpClass.FP_DIV:
        return fu.fp_div_latency
    if op in MEMORY_CLASSES:
        return fu.agen_latency
    return 1


def is_pipelined(op: OpClass) -> bool:
    """Whether the functional unit accepts a new instruction every cycle.

    Only the integer and floating point dividers are unpipelined
    (replay interval equals latency, per Table 1).
    """
    return op not in (OpClass.INT_DIV, OpClass.FP_DIV)
