"""Logical (architectural) register namespace.

The simulator models a RISC-like ISA with 32 integer and 32 floating
point architectural registers.  A logical register is represented as a
plain ``int`` in ``[0, 64)``: indices ``0..31`` are the integer registers
``r0..r31`` and indices ``32..63`` are the floating-point registers
``f0..f31``.  Using bare ints keeps the renaming hot path cheap.
"""

from __future__ import annotations

from typing import Iterable, List

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_LOGICAL_REGS = NUM_INT_REGS + NUM_FP_REGS

FP_BASE = NUM_INT_REGS


def int_reg(index: int) -> int:
    """Logical id of integer register ``r<index>``."""
    if not 0 <= index < NUM_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> int:
    """Logical id of floating-point register ``f<index>``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return FP_BASE + index


def is_fp(reg: int) -> bool:
    """True if the logical register id belongs to the FP register file."""
    return reg >= FP_BASE


def is_valid(reg: int) -> bool:
    """True if ``reg`` is a legal logical register id."""
    return 0 <= reg < NUM_LOGICAL_REGS


def reg_name(reg: int) -> str:
    """Human readable name (``r7``, ``f3``)."""
    if not is_valid(reg):
        raise ValueError(f"invalid logical register id {reg}")
    if is_fp(reg):
        return f"f{reg - FP_BASE}"
    return f"r{reg}"


def parse_reg(name: str) -> int:
    """Inverse of :func:`reg_name`."""
    name = name.strip().lower()
    if len(name) < 2 or name[0] not in ("r", "f"):
        raise ValueError(f"cannot parse register name {name!r}")
    index = int(name[1:])
    return fp_reg(index) if name[0] == "f" else int_reg(index)


def all_int_regs() -> List[int]:
    """All integer logical register ids."""
    return list(range(NUM_INT_REGS))


def all_fp_regs() -> List[int]:
    """All floating-point logical register ids."""
    return list(range(FP_BASE, FP_BASE + NUM_FP_REGS))


def registers_of_class(fp: bool) -> List[int]:
    """All logical register ids of one class."""
    return all_fp_regs() if fp else all_int_regs()


def validate_regs(regs: Iterable[int]) -> None:
    """Raise ``ValueError`` if any id in ``regs`` is out of range."""
    for reg in regs:
        if not is_valid(reg):
            raise ValueError(f"invalid logical register id {reg}")
