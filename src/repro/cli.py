"""Command-line interface: ``python -m repro <command> ...``.

Five subcommands cover the common workflows:

``simulate``
    Run one machine configuration over one workload (or a whole suite) and
    print the per-run statistics.  ``--machine`` accepts any registered
    machine organization (see ``repro modes``), not just the paper's two.

``experiment``
    Regenerate one of the paper's figures (or the checkpoint-policy
    ablation) and print its table.  Execution routes through the sweep
    engine: ``--jobs N`` simulates grid cells on N worker processes and a
    persistent result cache (``--cache-dir``, disable with ``--no-cache``)
    skips cells that were already simulated with identical parameters.

``sweep``
    Regenerate one or more experiments (or ``all``) through the sweep
    engine with per-cell progress reporting — the bulk way to rebuild the
    whole evaluation section.

``list``
    Show the available workloads (with behavioral descriptions), suites
    and experiments.

``modes``
    Show every registered machine organization with a one-line
    description (mirrors ``repro list`` for workloads).  Machines are
    pluggable: anything registered through
    :func:`repro.core.registry_machines.register_machine` appears here
    and in ``--machine`` automatically.

Examples::

    python -m repro simulate --machine cooo --workload daxpy --memory-latency 1000
    python -m repro simulate --machine baseline --window 128 --suite spec2000fp_like
    python -m repro simulate --machine unbounded-rob --workload gather
    python -m repro experiment figure09 --scale 0.5
    python -m repro experiment figure09 --jobs 4            # parallel grid
    python -m repro sweep figure09 figure11 --jobs 8        # two figures, shared cache
    python -m repro sweep all --full --jobs 8 --json out.json
    python -m repro sweep figure01 --no-cache               # force re-simulation
    python -m repro list
    python -m repro modes
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Optional

from .analysis.report import format_table
from .api import Simulation
from .common.config import ProcessorConfig
from .core.registry_machines import (
    CLI_DEFAULTS,
    get_machine,
    machine_names,
    machine_specs,
)
from .core.result import SimulationResult
from .experiments.registry import EXPERIMENTS, available_experiments
from .experiments.sweep import ResultCache, SweepEngine, default_cache_dir
from .trace.trace import Trace
from .workloads import integer, numerical
from .workloads.suite import SUITES, get_suite

#: Individual workload generators exposed on the command line.
WORKLOADS: Dict[str, Callable[[int], Trace]] = {
    "daxpy": lambda n: numerical.daxpy(elements=n),
    "triad": lambda n: numerical.stream_triad(elements=n),
    "stencil3": lambda n: numerical.stencil3(elements=n),
    "reduction": lambda n: numerical.reduction(elements=n),
    "gather": lambda n: numerical.random_gather(elements=n),
    "matvec": lambda n: numerical.matvec(rows=max(2, n // 32), cols=32),
    "blocked": lambda n: numerical.blocked_daxpy(elements=n),
    "fp_compute": lambda n: numerical.fp_compute_bound(iterations=n),
    "pointer_chase": lambda n: integer.pointer_chase(hops=n),
    "branchy_int": lambda n: integer.branchy_integer(iterations=n),
    "mixed": lambda n: integer.mixed_int_fp(iterations=n),
}

#: One-line behavioral description per workload, surfaced by ``repro list``.
WORKLOAD_DESCRIPTIONS: Dict[str, str] = {
    "daxpy": "streaming y[i] += a*x[i]: independent FP mul-adds, two loads + one store per element",
    "triad": "STREAM triad a[i] = b[i] + s*c[i]: pure bandwidth-bound streaming, no reuse",
    "stencil3": "3-point stencil over a vector: strided loads with neighbor reuse, mild dependencies",
    "reduction": "serial FP sum reduction: one long dependence chain, exposes issue-queue blocking",
    "gather": "random indirect loads over an 8 MiB table: near-100% cache misses, memory-level parallelism",
    "matvec": "dense matrix-vector product: row-wise streaming crossed with a per-row reduction",
    "blocked": "cache-blocked daxpy passes: high reuse, low miss rate, compute/memory balanced",
    "fp_compute": "FP-heavy loop with almost no memory traffic: bounded by FP unit latency/count",
    "pointer_chase": "linked-list traversal: serially dependent loads, defeats out-of-order overlap",
    "branchy_int": "integer loop with data-dependent branches: stresses prediction and rollback",
    "mixed": "interleaved integer and FP work with moderate branching: a middle-of-the-road blend",
}


def build_machine(args: argparse.Namespace) -> ProcessorConfig:
    """Translate CLI arguments into a ProcessorConfig.

    The config builder comes from the machine registry, so registered
    variants are CLI-runnable without edits here.
    """
    return get_machine(args.machine).build_cli_config(args)


def _result_row(name: str, result: SimulationResult) -> Dict[str, object]:
    return {
        "workload": name,
        "ipc": round(result.ipc, 4),
        "cycles": result.cycles,
        "instructions": result.committed_instructions,
        "in_flight": round(result.mean_in_flight, 1),
        "branch_acc": round(result.branch_accuracy, 4),
        "l2_miss%": round(100 * result.l2_load_miss_fraction, 2),
    }


def cmd_simulate(args: argparse.Namespace) -> int:
    config = build_machine(args)
    if args.suite:
        traces = get_suite(args.suite).build(args.scale)
    elif args.workload:
        traces = {args.workload: WORKLOADS[args.workload](args.size)}
    else:
        print("error: provide --workload or --suite", file=sys.stderr)
        return 2
    simulation = Simulation(config)
    rows: List[Dict[str, object]] = []
    results = {}
    for name, trace in traces.items():
        result = simulation.run(trace)
        results[name] = result
        rows.append(_result_row(name, result))
    print(f"machine: {config.name or config.mode}")
    print(format_table(rows))
    if len(rows) > 1:
        mean_ipc = sum(row["ipc"] for row in rows) / len(rows)  # type: ignore[arg-type]
        print(f"\nsuite average IPC: {mean_ipc:.4f}")
    if args.json:
        payload = {
            "machine": config.describe(),
            "results": {name: result.summary_row() for name, result in results.items()},
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def build_engine(args: argparse.Namespace, progress: bool = False) -> SweepEngine:
    """Translate --jobs/--cache-dir/--no-cache into a SweepEngine.

    Raises SystemExit(2) with a clean message if the cache directory is
    unusable (e.g. the path exists but is a regular file).
    """
    cache: Optional[ResultCache] = None
    if not args.no_cache:
        cache_dir = args.cache_dir if args.cache_dir else default_cache_dir()
        try:
            cache = ResultCache(cache_dir)
        except OSError as exc:
            print(f"error: unusable cache directory {cache_dir}: {exc}", file=sys.stderr)
            raise SystemExit(2)
    reporter = (lambda message: print(message, file=sys.stderr)) if progress else None
    return SweepEngine(jobs=args.jobs, cache=cache, progress=reporter)


def _experiment_kwargs(args: argparse.Namespace, runner, engine: SweepEngine) -> Dict[str, object]:
    kwargs: Dict[str, object] = {"engine": engine}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if getattr(args, "full", False) and "quick" in runner.__code__.co_varnames:
        kwargs["quick"] = False
    return kwargs


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.name not in EXPERIMENTS:
        print(
            f"error: unknown experiment {args.name!r}; available: "
            f"{', '.join(available_experiments())}",
            file=sys.stderr,
        )
        return 2
    runner = EXPERIMENTS[args.name]
    engine = build_engine(args, progress=args.progress)
    experiment = runner(**_experiment_kwargs(args, runner, engine))
    print(experiment.report())
    if engine.cache is not None:
        print(
            f"cells: {engine.total_simulated} simulated, {engine.total_cached} cached"
            f" (cache: {engine.cache.cache_dir})",
            file=sys.stderr,
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "experiment": experiment.experiment,
                    "description": experiment.description,
                    "rows": experiment.rows,
                    "notes": experiment.notes,
                },
                handle,
                indent=2,
            )
        print(f"\nwrote {args.json}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    names: List[str] = []
    for name in args.names:
        if name == "all":
            names.extend(available_experiments())
        elif name in EXPERIMENTS:
            names.append(name)
        else:
            print(
                f"error: unknown experiment {name!r}; available: "
                f"{', '.join(available_experiments())} (or 'all')",
                file=sys.stderr,
            )
            return 2
    names = list(dict.fromkeys(names))  # dedup (e.g. "all figure09"), keep order
    engine = build_engine(args, progress=not args.quiet)
    start = time.perf_counter()
    payload: Dict[str, object] = {}
    for name in names:
        runner = EXPERIMENTS[name]
        experiment = runner(**_experiment_kwargs(args, runner, engine))
        print(experiment.report())
        print()
        payload[name] = {
            "description": experiment.description,
            "rows": experiment.rows,
            "notes": experiment.notes,
        }
    elapsed = time.perf_counter() - start
    summary = (
        f"swept {len(names)} experiment(s) in {elapsed:.1f}s with {engine.jobs} job(s): "
        f"{engine.total_simulated} cell(s) simulated, {engine.total_cached} from cache"
    )
    if engine.cache is not None:
        summary += f" (cache: {engine.cache.cache_dir})"
    print(summary)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"experiments": payload}, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("workloads:")
    width = max(len(name) for name in WORKLOADS)
    for name in sorted(WORKLOADS):
        description = WORKLOAD_DESCRIPTIONS.get(name, "")
        print(f"  {name:<{width}}  {description}".rstrip())
    print("suites:")
    for name, suite in SUITES.items():
        print(f"  {name}: {', '.join(suite.names())}")
    print("experiments:")
    for name in available_experiments():
        print(f"  {name}")
    print("machines: (see 'repro modes')")
    print(f"  {', '.join(machine_names())}")
    return 0


def cmd_modes(args: argparse.Namespace) -> int:
    """List every registered machine organization."""
    specs = machine_specs()
    width = max(len(spec.name) for spec in specs)
    print("registered machines:")
    for spec in specs:
        print(f"  {spec.name:<{width}}  {spec.description}".rstrip())
    print(
        "\nregister more via repro.core.registry_machines.register_machine;"
        " any registered mode works with 'simulate --machine', ProcessorConfig"
        " and the sweep engine."
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Out-of-Order Commit Processors' (HPCA 2004)",
    )
    subparsers = parser.add_subparsers(dest="command")

    simulate = subparsers.add_parser("simulate", help="run one machine over one workload or suite")
    simulate.add_argument(
        "--machine", choices=machine_names(), default="cooo",
        help="registered machine organization (see 'repro modes')",
    )
    simulate.add_argument("--workload", choices=sorted(WORKLOADS), default=None)
    simulate.add_argument("--suite", choices=sorted(SUITES), default=None)
    simulate.add_argument("--size", type=int, default=1000,
                          help="workload size parameter (elements/iterations)")
    simulate.add_argument("--scale", type=float, default=0.5, help="suite scale")
    # Machine-knob defaults live in the registry (CLI_DEFAULTS) so the
    # profile builders and the parser can never drift apart.
    simulate.add_argument("--memory-latency", type=int, default=CLI_DEFAULTS["memory_latency"])
    simulate.add_argument("--perfect-l2", action="store_true")
    simulate.add_argument("--window", type=int, default=CLI_DEFAULTS["window"],
                          help="baseline window size")
    simulate.add_argument("--iq-size", type=int, default=CLI_DEFAULTS["iq_size"])
    simulate.add_argument("--sliq-size", type=int, default=CLI_DEFAULTS["sliq_size"])
    simulate.add_argument("--checkpoints", type=int, default=CLI_DEFAULTS["checkpoints"])
    simulate.add_argument("--reinsert-delay", type=int, default=CLI_DEFAULTS["reinsert_delay"])
    simulate.add_argument("--virtual-tags", type=int, default=CLI_DEFAULTS["virtual_tags"])
    simulate.add_argument("--physical-registers", type=int,
                          default=CLI_DEFAULTS["physical_registers"])
    simulate.add_argument("--late-allocation", action="store_true")
    simulate.add_argument("--json", default=None, help="write results to this JSON file")
    simulate.set_defaults(func=cmd_simulate)

    def positive_int(value: str) -> int:
        number = int(value)
        if number < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return number

    def add_engine_arguments(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--jobs", type=positive_int, default=1,
            help="worker processes for grid cells (default 1 = serial)",
        )
        subparser.add_argument(
            "--cache-dir", default=None,
            help="persistent result cache directory (default: "
                 "$REPRO_CACHE_DIR or ~/.cache/repro/sweeps)",
        )
        subparser.add_argument(
            "--no-cache", action="store_true",
            help="disable the persistent result cache",
        )

    experiment = subparsers.add_parser("experiment", help="regenerate one paper figure")
    experiment.add_argument("name", help="experiment name (see 'repro list')")
    experiment.add_argument("--scale", type=float, default=None)
    experiment.add_argument("--full", action="store_true", help="use the full parameter grid")
    experiment.add_argument("--json", default=None, help="write the rows to this JSON file")
    add_engine_arguments(experiment)
    experiment.add_argument(
        "--progress", action="store_true", help="report per-cell progress on stderr"
    )
    experiment.set_defaults(func=cmd_experiment)

    sweep = subparsers.add_parser(
        "sweep", help="regenerate experiments through the parallel sweep engine"
    )
    sweep.add_argument(
        "names", nargs="+", metavar="experiment",
        help="experiment names (see 'repro list'), or 'all'",
    )
    sweep.add_argument("--scale", type=float, default=None)
    sweep.add_argument("--full", action="store_true", help="use the full parameter grids")
    sweep.add_argument("--json", default=None, help="write every table to this JSON file")
    add_engine_arguments(sweep)
    sweep.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress reporting"
    )
    sweep.set_defaults(func=cmd_sweep)

    listing = subparsers.add_parser("list", help="list workloads, suites and experiments")
    listing.set_defaults(func=cmd_list)

    modes = subparsers.add_parser(
        "modes", help="list registered machine organizations"
    )
    modes.set_defaults(func=cmd_modes)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
