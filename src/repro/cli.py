"""Command-line interface: ``python -m repro <command> ...``.

The subcommands cover the common workflows:

``simulate``
    Run one machine configuration over one workload (or a whole suite) and
    print the per-run statistics.  ``--machine`` accepts any registered
    machine organization (see ``repro modes``); ``--workload``/``--suite``
    accept any registered workload or suite (see ``repro workloads``).

``experiment``
    Regenerate one of the paper's figures (or the checkpoint-policy
    ablation) and print its table.  Execution routes through the sweep
    engine: ``--jobs N`` simulates grid cells on N worker processes and a
    persistent result cache (``--cache-dir``, disable with ``--no-cache``)
    skips cells that were already simulated with identical parameters.
    ``--suite`` swaps the workload suite under the figure's machine grid.

``sweep``
    Regenerate one or more experiments (or ``all``) through the sweep
    engine with per-cell progress reporting — the bulk way to rebuild the
    whole evaluation section.  With ``--suite`` and no experiment names,
    sweeps a standard machine-comparison grid over that suite instead.

``trace``
    Save, inspect and replay trace files (versioned gzip-JSON): generate
    a workload or suite once with ``trace save``, check headers with
    ``trace info``, and simulate saved files with ``trace run``.

``checkpoint``
    Save, inspect and prune warm-state checkpoints (versioned
    gzip-JSON): ``checkpoint save`` runs the sampled driver's functional
    warm-up pass once and persists it keyed on (trace digest, sampling
    plan, warm parameters, simulator version); sampled runs pointed at
    the same directory (``--checkpoint-dir``) adopt it instead of
    re-warming.  ``checkpoint info`` prints headers and ``checkpoint
    gc`` LRU-evicts files past a size budget.

``list``
    Show the available workloads (with behavioral descriptions), suites
    and experiments.

``workloads``
    Show every registered workload with its knobs and base size, and
    every registered suite with its members (mirrors ``repro modes``).
    Workloads are pluggable: anything registered through
    :func:`repro.workloads.registry.register_workload` appears here and
    in ``--workload``/``--suite`` automatically.

``modes``
    Show every registered machine organization with a one-line
    description.  Machines are pluggable: anything registered through
    :func:`repro.core.registry_machines.register_machine` appears here
    and in ``--machine`` automatically.

``fuzz``
    Coverage-guided differential fuzzing (see :mod:`repro.fuzz`):
    generate seeded random scenario compositions, run each on every
    registered machine under the differential oracles (event-driven vs
    per-cycle bit-equality, sampled-IPC containment, deadlock watchdog,
    trace save/load round-trip), minimize failures to tiny repro specs
    and write them to a corpus directory.  ``--replay DIR`` re-checks a
    committed corpus as regressions.

Examples::

    python -m repro simulate --machine cooo --workload daxpy --memory-latency 1000
    python -m repro simulate --machine baseline --window 128 --suite spec2000fp_like
    python -m repro simulate --machine cooo --suite branch-storm --scale 0.4
    python -m repro simulate --machine baseline --suite spec2000fp-xl --scale 1.0 \
        --sample 50000:8000:4000                            # sampled XL run with CI
    python -m repro sweep --suite chase-xl --sample 50000:8000:4000 --jobs 4
    python -m repro experiment figure09 --scale 0.5
    python -m repro experiment figure09 --jobs 4 --suite pointer-chase
    python -m repro sweep figure09 figure11 --jobs 8        # two figures, shared cache
    python -m repro sweep all --full --jobs 8 --json out.json
    python -m repro sweep --suite server-mix --jobs 4       # machine grid over one suite
    python -m repro trace save --workload gather --size 4000 --out gather.trace.gz
    python -m repro trace save --suite pointer-chase --scale 0.6 --out-dir traces/
    python -m repro trace info traces/chase_cold.trace.gz
    python -m repro trace run gather.trace.gz --machine cooo --iq-size 64
    python -m repro simulate --suite spec2000fp-xl --scale 1.0 --sample 50000:8000:4000 \
        --sample-jobs 4 --checkpoint-dir warm-checkpoints   # parallel windows + reuse
    python -m repro checkpoint save --workload daxpy --size 30000 \
        --sample 50000:1500:500 --dir warm-checkpoints
    python -m repro checkpoint info warm-checkpoints/*.warm.gz
    python -m repro checkpoint gc --dir warm-checkpoints --max-bytes 50000000
    python -m repro fuzz --cases 40 --seed 7 --corpus-dir tests/corpus
    python -m repro fuzz --replay tests/corpus
    python -m repro list
    python -m repro workloads
    python -m repro modes
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from collections.abc import Mapping
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional

from .analysis.report import format_table
from .api import Simulation
from .common.config import ProcessorConfig, SamplingPlan, cooo_config, scaled_baseline
from .common.errors import ConfigurationError, TraceError
from .core.registry_machines import (
    CLI_DEFAULTS,
    get_machine,
    machine_names,
    machine_specs,
)
from .core.result import SimulationResult
from .experiments.registry import EXPERIMENTS, available_experiments
from .experiments.sweep import ResultCache, SweepEngine, SweepSpec, default_cache_dir
from .trace.io import TRACE_SUFFIX, load_trace, save_trace, trace_info
from .trace.trace import Trace
from .workloads.registry import (
    get_suite,
    get_workload,
    suite_names,
    suite_specs,
    workload_names,
    workload_specs,
)


class _WorkloadView(Mapping):
    """Live ``name -> fn(size)`` view over the workload registry.

    Kept for code written against the original module-level ``WORKLOADS``
    dict; runtime-registered workloads appear automatically.
    """

    def __getitem__(self, name: str) -> Callable[[int], Trace]:
        spec = get_workload(name)
        return lambda size: spec.build(size=size)

    def __iter__(self) -> Iterator[str]:
        return iter(workload_names())

    def __len__(self) -> int:
        return len(workload_names())


#: Individual workload generators exposed on the command line.
WORKLOADS: Mapping[str, Callable[[int], Trace]] = _WorkloadView()


def build_machine(args: argparse.Namespace) -> ProcessorConfig:
    """Translate CLI arguments into a ProcessorConfig.

    The config builder comes from the machine registry, so registered
    variants are CLI-runnable without edits here.
    """
    return get_machine(args.machine).build_cli_config(args)


def _result_row(name: str, result: SimulationResult) -> Dict[str, object]:
    row: Dict[str, object] = {
        "workload": name,
        "ipc": round(result.ipc, 4),
        "cycles": result.cycles,
        "instructions": result.committed_instructions,
        "in_flight": round(result.mean_in_flight, 1),
        "branch_acc": round(result.branch_accuracy, 4),
        "l2_miss%": round(100 * result.l2_load_miss_fraction, 2),
    }
    if result.sampled:
        row["ipc_ci95"] = round(result.ipc_ci95, 4)
        row["windows"] = len(result.windows)
    return row


def parse_sampling(args: argparse.Namespace) -> Optional[SamplingPlan]:
    """The --sample flag as a SamplingPlan (None when absent).

    Raises SystemExit(2) with a clean message on a malformed spec, so
    every subcommand reports sampling errors identically.
    """
    spec = getattr(args, "sample", None)
    if not spec:
        return None
    try:
        return SamplingPlan.parse(spec)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)


def cmd_simulate(args: argparse.Namespace) -> int:
    config = build_machine(args)
    sampling = parse_sampling(args)
    sample_jobs = getattr(args, "sample_jobs", None)
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    if sampling is None and (sample_jobs is not None or checkpoint_dir is not None):
        print(
            "error: --sample-jobs/--checkpoint-dir require --sample",
            file=sys.stderr,
        )
        return 2
    # Workload and suite names resolve through the registry at run time,
    # so registered plugins are usable without parser edits; unknown
    # names error out listing every registered one (like 'repro modes').
    try:
        if args.suite:
            traces = get_suite(args.suite).build(args.scale)
        elif args.workload:
            traces = {args.workload: get_workload(args.workload).build(size=args.size)}
        else:
            print("error: provide --workload or --suite", file=sys.stderr)
            return 2
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    simulation = Simulation(
        config,
        sampling=sampling,
        sample_jobs=sample_jobs,
        checkpoint_dir=checkpoint_dir,
    )
    rows: List[Dict[str, object]] = []
    results = {}
    for name, trace in traces.items():
        result = simulation.run(trace)
        results[name] = result
        rows.append(_result_row(name, result))
    print(f"machine: {config.name or config.mode}")
    if sampling is not None:
        print(f"sampling: {sampling.describe()}")
    print(format_table(rows))
    if len(rows) > 1:
        mean_ipc = sum(row["ipc"] for row in rows) / len(rows)  # type: ignore[arg-type]
        print(f"\nsuite average IPC: {mean_ipc:.4f}")
    if args.json:
        payload = {
            "machine": config.describe(),
            "results": {name: result.summary_row() for name, result in results.items()},
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def _progress_logger(name: str):
    """A per-cell progress reporter routed through stdlib logging.

    Progress goes out at INFO through the shared ``repro`` formatter; the
    subsystem logger is pinned to INFO so explicitly requested progress
    (``--progress``, or sweeps without ``--quiet``) still shows under the
    default WARNING root level.
    """
    from .telemetry import get_logger

    logger = get_logger(name)
    logger.setLevel(logging.INFO)
    return logger.info


def build_engine(args: argparse.Namespace, progress: bool = False) -> SweepEngine:
    """Translate the engine CLI flags into a SweepEngine.

    Besides --jobs/--cache-dir/--no-cache this wires the robustness
    knobs: --cell-timeout, --retries, --journal/--resume, and the
    --inject/--inject-seed fault plan.  Raises SystemExit(2) with a
    clean message if the cache directory is unusable (e.g. the path
    exists but is a regular file) or the fault plan does not parse.
    """
    cache: Optional[ResultCache] = None
    if not args.no_cache:
        cache_dir = args.cache_dir if args.cache_dir else default_cache_dir()
        try:
            cache = ResultCache(cache_dir)
        except OSError as exc:
            print(f"error: unusable cache directory {cache_dir}: {exc}", file=sys.stderr)
            raise SystemExit(2)
    reporter = _progress_logger("sweep") if progress else None
    retry = None
    retries = getattr(args, "retries", None)
    if retries is not None:
        from .robustness import RetryPolicy

        retry = RetryPolicy(max_attempts=retries)
    injector = None
    plan_spec = getattr(args, "inject", None)
    if plan_spec:
        from .common.errors import ConfigurationError
        from .robustness import FaultInjector, parse_fault_plan

        try:
            plan = parse_fault_plan(plan_spec, seed=getattr(args, "inject_seed", 0))
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            raise SystemExit(2)
        injector = FaultInjector(plan)
    journal = None
    journal_path = getattr(args, "journal", None)
    if journal_path:
        from .robustness import SweepJournal

        journal = SweepJournal(journal_path)
    resume = bool(getattr(args, "resume", False))
    if resume and journal is None:
        print("error: --resume requires --journal FILE", file=sys.stderr)
        raise SystemExit(2)
    return SweepEngine(
        jobs=args.jobs,
        cache=cache,
        progress=reporter,
        cell_timeout=getattr(args, "cell_timeout", None),
        retry=retry,
        injector=injector,
        journal=journal,
        resume=resume,
        sample_jobs=getattr(args, "sample_jobs", None),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
    )


def _experiment_kwargs(args: argparse.Namespace, runner, engine: SweepEngine) -> Dict[str, object]:
    kwargs: Dict[str, object] = {"engine": engine}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if getattr(args, "full", False) and "quick" in runner.__code__.co_varnames:
        kwargs["quick"] = False
    if getattr(args, "suite", None) and "suite" in runner.__code__.co_varnames:
        kwargs["suite"] = args.suite
    return kwargs


def _validate_suite_argument(args: argparse.Namespace) -> bool:
    """Resolve an optional --suite up front so unknown names exit cleanly."""
    suite = getattr(args, "suite", None)
    if suite:
        try:
            get_suite(suite)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return False
    return True


def cmd_experiment(args: argparse.Namespace) -> int:
    if not _validate_suite_argument(args):
        return 2
    if args.name not in EXPERIMENTS:
        print(
            f"error: unknown experiment {args.name!r}; available: "
            f"{', '.join(available_experiments())}",
            file=sys.stderr,
        )
        return 2
    runner = EXPERIMENTS[args.name]
    engine = build_engine(args, progress=args.progress)
    experiment = runner(**_experiment_kwargs(args, runner, engine))
    print(experiment.report())
    if engine.cache is not None:
        print(
            f"cells: {engine.total_simulated} simulated, {engine.total_cached} cached"
            f" (cache: {engine.cache.cache_dir})",
            file=sys.stderr,
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "experiment": experiment.experiment,
                    "description": experiment.description,
                    "rows": experiment.rows,
                    "notes": experiment.notes,
                },
                handle,
                indent=2,
            )
        print(f"\nwrote {args.json}")
    return 0


def _trace_filename(name: str) -> str:
    return f"{name.replace('/', '_')}{TRACE_SUFFIX}"


def cmd_trace_save(args: argparse.Namespace) -> int:
    if args.suite and args.out:
        print("error: --out applies to --workload; use --out-dir with --suite", file=sys.stderr)
        return 2
    if args.workload and args.out_dir:
        print("error: --out-dir applies to --suite; use --out with --workload", file=sys.stderr)
        return 2
    try:
        if args.suite:
            traces = get_suite(args.suite).build(args.scale)
            out_dir = Path(args.out_dir or f"{args.suite}-traces")
            for name, trace in traces.items():
                if trace.name != name:  # header carries the member name
                    trace = Trace(list(trace), name=name)
                path = save_trace(trace, out_dir / _trace_filename(name))
                print(f"wrote {path} ({len(trace)} instructions)")
        elif args.workload:
            trace = get_workload(args.workload).build(size=args.size)
            path = save_trace(trace, args.out or _trace_filename(args.workload))
            print(f"wrote {path} ({len(trace)} instructions)")
        else:
            print("error: provide --workload or --suite", file=sys.stderr)
            return 2
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    return 0


def cmd_trace_info(args: argparse.Namespace) -> int:
    status = 0
    for path in args.paths:
        try:
            header = dict(trace_info(path))
        except (TraceError, FileNotFoundError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 2
            continue
        distinct = header.get("distinct_instructions")
        sharing = (
            f", {distinct} distinct ({100 * distinct / header['instructions']:.0f}%)"
            if isinstance(distinct, int) and distinct > 0
            else ""
        )
        print(
            f"{path}: {header['name']} v{header['version']} — "
            f"{header['instructions']} instructions{sharing}"
        )
    return status


def cmd_trace_run(args: argparse.Namespace) -> int:
    config = build_machine(args)
    traces = []
    for path in args.paths:
        try:
            traces.append(load_trace(path))
        except (TraceError, FileNotFoundError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    simulation = Simulation(config)
    rows = [_result_row(trace.name, simulation.run(trace)) for trace in traces]
    print(f"machine: {config.name or config.mode}")
    print(format_table(rows))
    return 0


def cmd_checkpoint_save(args: argparse.Namespace) -> int:
    """Run the functional warm-up pass once and persist its checkpoint."""
    config = build_machine(args)
    plan = parse_sampling(args)
    if plan is None:
        print(
            "error: checkpoint save requires --sample PERIOD:WINDOW[:WARMUP[:SEED]]",
            file=sys.stderr,
        )
        return 2
    if args.workload and args.trace:
        print("error: provide --workload or --trace, not both", file=sys.stderr)
        return 2
    try:
        if args.trace:
            trace = load_trace(args.trace)
        elif args.workload:
            trace = get_workload(args.workload).build(size=args.size)
        else:
            print("error: provide --workload or --trace", file=sys.stderr)
            return 2
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except (TraceError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from .core.sampling import warm_checkpoint

    try:
        path, key, reused = warm_checkpoint(
            config, trace, plan, args.dir, checkpoint_max_bytes=args.max_bytes
        )
    except (ConfigurationError, TraceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    verb = "reused" if reused else "wrote"
    print(f"{verb} {path}")
    print(f"key {key}")
    print(f"{trace.name}: {len(trace)} instructions, plan {plan.describe()}")
    return 0


def cmd_checkpoint_info(args: argparse.Namespace) -> int:
    """Print the validated header of warm-checkpoint files."""
    from .trace.io import checkpoint_info

    status = 0
    for path in args.paths:
        try:
            header = checkpoint_info(path)
        except (TraceError, FileNotFoundError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 2
            continue
        plan = header.get("plan") or {}
        plan_text = (
            ":".join(
                str(plan[field])
                for field in ("period", "window", "warmup")
                if field in plan
            )
            or "?"
        )
        print(
            f"{path}: {header['trace_name']} @ simulator "
            f"{header['simulator_version']} — {header['instructions']} "
            f"instructions, {header['windows']} windows, plan {plan_text}"
        )
        print(f"  key {header['key']}")
        print(f"  trace digest {header['trace_digest']}")
    return status


def cmd_checkpoint_gc(args: argparse.Namespace) -> int:
    """LRU-evict checkpoint files past a directory size budget."""
    from .common.eviction import directory_size, evict_lru
    from .trace.io import CHECKPOINT_SUFFIX

    if args.max_bytes < 0:
        print("error: --max-bytes must be >= 0", file=sys.stderr)
        return 2
    directory = Path(args.dir)
    if not directory.is_dir():
        print(f"error: {directory} is not a directory", file=sys.stderr)
        return 2
    removed, freed = evict_lru(directory, args.max_bytes, CHECKPOINT_SUFFIX)
    remaining = directory_size(directory, CHECKPOINT_SUFFIX)
    print(
        f"{directory}: evicted {removed} checkpoint(s) ({freed} bytes), "
        f"{remaining} bytes remain under the {args.max_bytes}-byte budget"
    )
    return 0


def _parse_cell(spec: str, args: argparse.Namespace):
    """Resolve a ``MACHINE:WORKLOAD[:SIZE]`` cell spec.

    The machine name routes through the registry (machine knob flags on
    the subcommand still apply); returns ``(config, workload_name,
    trace)`` or raises SystemExit(2) with a clean message.
    """
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        print(
            f"error: cell must be MACHINE:WORKLOAD[:SIZE], got {spec!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    machine, workload = parts[0], parts[1]
    if machine not in machine_names():
        print(
            f"error: unknown machine {machine!r}; registered: "
            f"{', '.join(machine_names())}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    try:
        size = int(parts[2]) if len(parts) == 3 else args.size
    except ValueError:
        print(f"error: cell SIZE must be an integer, got {parts[2]!r}", file=sys.stderr)
        raise SystemExit(2)
    args.machine = machine
    config = build_machine(args)
    try:
        spec_workload = get_workload(workload)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        raise SystemExit(2)
    return config, workload, spec_workload.build(size=size)


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one cell: phase spans, CPI stall attribution, metrics."""
    from .telemetry import (
        MAIN_TRACK,
        TelemetrySession,
        render_stall_table,
        write_chrome_trace,
    )

    sampling = parse_sampling(args)
    session = TelemetrySession(deterministic=args.deterministic, timeline=False)
    started = time.perf_counter()
    with session.tracer.span("trace-build", category="trace"):
        config, workload, trace = _parse_cell(args.cell, args)
    result = Simulation(config, sampling=sampling, telemetry=session).run(trace)
    wall = time.perf_counter() - started
    print(f"machine: {config.name or config.mode}  workload: {workload}"
          f" ({len(trace)} instructions)")
    if sampling is not None:
        print(f"sampling: {sampling.describe()}")
    print(format_table([_result_row(workload, result)]))
    span_rows = [
        {
            "span": "  " * span.depth + span.name,
            "category": span.category,
            "ms": round(span.duration * 1000, 3),
        }
        for span in session.tracer.spans
        if span.tid == MAIN_TRACK
    ]
    print("\nphase spans" + (" (deterministic tick clock)" if args.deterministic else "") + ":")
    print(format_table(span_rows))
    print(f"\nCPI stall attribution ({session.stalls.total} detailed cycles):")
    print(render_stall_table({workload: session.stalls.breakdown()}))
    if not args.deterministic:
        print(f"\ntotal wall-clock: {wall:.3f}s")
    if args.trace_out:
        write_chrome_trace(session.tracer, args.trace_out)
        print(f"wrote Chrome trace: {args.trace_out} (load in Perfetto or chrome://tracing)")
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    """Render the per-instruction pipeline timeline of one cell."""
    from .telemetry import TelemetrySession, render_timeline

    sampling = parse_sampling(args)
    config, workload, trace = _parse_cell(args.cell, args)
    session = TelemetrySession(stalls=False, timeline_capacity=args.capacity)
    Simulation(config, sampling=sampling, telemetry=session).run(trace)
    probe = session.timeline
    assert probe is not None
    if args.window_range:
        try:
            start_str, stop_str = args.window_range.split(":", 1)
            start, stop = int(start_str), int(stop_str)
        except ValueError:
            print(
                f"error: --window must be START:STOP, got {args.window_range!r}",
                file=sys.stderr,
            )
            return 2
        events = probe.window(start, stop)
        scope = f"trace indices [{start}:{stop})"
    else:
        events = probe.events()
        scope = "all recorded"
    print(
        f"machine: {config.name or config.mode}  workload: {workload}  "
        f"events: {len(events)} shown ({scope}), {probe.recorded} recorded, "
        f"{probe.dropped} dropped by the ring buffer"
    )
    print(render_timeline(events, width=args.width))
    return 0


#: The standard machine-comparison grid used by ``repro sweep --suite``:
#: both paper reference baselines plus a small and a large COoO point.
def _suite_grid_configs(memory_latency: int = 1000) -> List[ProcessorConfig]:
    return [
        scaled_baseline(window=128, memory_latency=memory_latency),
        scaled_baseline(window=4096, memory_latency=memory_latency),
        cooo_config(iq_size=32, sliq_size=512, memory_latency=memory_latency),
        cooo_config(iq_size=128, sliq_size=2048, memory_latency=memory_latency),
    ]


def cmd_suite_sweep(args: argparse.Namespace) -> int:
    """Sweep the standard machine grid over one registered suite."""
    from .experiments.runner import DEFAULT_SCALE

    try:
        suite = get_suite(args.suite)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    scale = args.scale if args.scale is not None else DEFAULT_SCALE
    sampling = parse_sampling(args)
    spec = SweepSpec(
        f"suite-{args.suite}",
        _suite_grid_configs(),
        scale=scale,
        suite=args.suite,
        sampling=sampling,
    )
    engine = build_engine(args, progress=not args.quiet)
    outcome = engine.run(spec)
    rows = []
    for config, results in outcome.per_config():
        # Quarantined cells are simply absent from ``results`` — the row
        # shows a hole instead of the whole sweep crashing.
        row: Dict[str, object] = {"config": config.name or config.mode}
        for workload, result in results.items():
            row[workload] = round(result.ipc, 4)
        if results:
            row["mean_ipc"] = round(
                sum(r.ipc for r in results.values()) / len(results), 4
            )
        rows.append(row)
    print(f"suite: {args.suite} ({', '.join(suite.names())}) at scale {scale}")
    if sampling is not None:
        print(f"sampling: {sampling.describe()}")
    print(format_table(rows))
    summary = (
        f"cells: {outcome.simulated} simulated, {outcome.cached} cached "
        f"in {outcome.elapsed:.1f}s"
    )
    if engine.cache is not None:
        # cache_hits/cache_misses include worker-side lookups, which the
        # engine folds back into the parent's counters.
        summary += (
            f" (cache: {outcome.cache_hits} hit(s), {outcome.cache_misses} miss(es))"
        )
    if outcome.resumed:
        summary += f"; {outcome.resumed} resumed from journal"
    if outcome.retries:
        summary += f"; {outcome.retries} retrie(s)"
    if outcome.quarantined:
        summary += f"; {outcome.quarantined} quarantined"
    print(summary, file=sys.stderr)
    for entry in outcome.failed_cells:
        errors = entry.get("errors") or ["unknown"]
        print(
            f"quarantined: {entry['config']} x {entry['workload']} after "
            f"{entry['attempts']} attempt(s): {errors[-1]}",
            file=sys.stderr,
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"suite": args.suite, "scale": scale, "rows": rows}, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if not _validate_suite_argument(args):
        return 2
    if not args.names:
        if getattr(args, "suite", None):
            return cmd_suite_sweep(args)
        print(
            "error: provide experiment names (see 'repro list'), or --suite "
            "for a machine-grid sweep over one suite",
            file=sys.stderr,
        )
        return 2
    if getattr(args, "sample", None):
        print(
            "error: --sample applies to suite-grid sweeps (--suite without "
            "experiment names); the figure experiments reproduce the paper's "
            "exact numbers",
            file=sys.stderr,
        )
        return 2
    names: List[str] = []
    for name in args.names:
        if name == "all":
            names.extend(available_experiments())
        elif name in EXPERIMENTS:
            names.append(name)
        else:
            print(
                f"error: unknown experiment {name!r}; available: "
                f"{', '.join(available_experiments())} (or 'all')",
                file=sys.stderr,
            )
            return 2
    names = list(dict.fromkeys(names))  # dedup (e.g. "all figure09"), keep order
    engine = build_engine(args, progress=not args.quiet)
    start = time.perf_counter()
    payload: Dict[str, object] = {}
    for name in names:
        runner = EXPERIMENTS[name]
        experiment = runner(**_experiment_kwargs(args, runner, engine))
        print(experiment.report())
        print()
        payload[name] = {
            "description": experiment.description,
            "rows": experiment.rows,
            "notes": experiment.notes,
        }
    elapsed = time.perf_counter() - start
    summary = (
        f"swept {len(names)} experiment(s) in {elapsed:.1f}s with {engine.jobs} job(s): "
        f"{engine.total_simulated} cell(s) simulated, {engine.total_cached} from cache"
    )
    if engine.cache is not None:
        summary += (
            f" (cache {engine.cache.cache_dir}: {engine.cache.hits} hit(s), "
            f"{engine.cache.misses} miss(es) incl. workers)"
        )
    print(summary)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"experiments": payload}, handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    specs = workload_specs()
    print("workloads:")
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        print(f"  {spec.name:<{width}}  {spec.description}".rstrip())
    print("suites:")
    for name in suite_names():
        print(f"  {name}: {', '.join(get_suite(name).names())}")
    print("experiments:")
    for name in available_experiments():
        print(f"  {name}")
    print("machines: (see 'repro modes')")
    print(f"  {', '.join(machine_names())}")
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    """List every registered workload and suite with its parameters."""
    specs = workload_specs()
    width = max(len(spec.name) for spec in specs)
    print("registered workloads:")
    for spec in specs:
        knobs = ", ".join(f"{knob}={value!r}" for knob, value in sorted(spec.knobs.items()))
        print(f"  {spec.name:<{width}}  base_size={spec.base_size}"
              + (f"  knobs: {knobs}" if knobs else ""))
        if spec.description:
            print(f"  {'':<{width}}  {spec.description}")
    print("\nregistered suites:")
    for suite_spec in suite_specs():
        members = ", ".join(
            f"{member.name}({member.base_size})" for member in suite_spec.suite
        )
        print(f"  {suite_spec.name}: {members}")
        if suite_spec.description:
            print(f"    {suite_spec.description}")
    print(
        "\nregister more via repro.workloads.registry.register_workload /"
        " register_suite; any registered name works with 'simulate"
        " --workload/--suite', 'trace save', repro.api.run_many and the"
        " sweep engine."
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the simulator throughput benchmarks (see repro.perf).

    The argument set comes from repro.perf.add_bench_arguments, so
    'repro bench' and 'python benchmarks/record.py' behave identically.
    """
    from .perf import run_from_args

    return run_from_args(args)


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the simulator-aware static analyzer (repro.analysis.lint).

    Exit status 0 when the tree is clean (baselined/suppressed findings
    included), 1 when findings survive, 2 on usage errors.  With
    --update-fingerprints the semantic-fingerprint manifest is re-stamped
    instead of linting (see docs/architecture.md, "Static analysis").
    """
    import json as json_module

    from .analysis.lint import LintEngine

    root = Path(args.path) if args.path else None
    if root is not None and not root.exists():
        print(f"error: lint root not found: {root}", file=sys.stderr)
        return 2
    baseline = Path(args.baseline) if args.baseline else None
    engine = LintEngine(root=root, baseline_path=baseline)

    if args.update_fingerprints:
        try:
            path, changed = engine.update_fingerprints(
                allow_same_version=args.allow_same_version
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        which = ", ".join(changed) if changed else "no module hashes changed"
        print(f"fingerprint manifest written: {path} ({which})")
        return 0

    report = engine.run()
    if args.json:
        payload = json_module.dumps(report.to_dict(), indent=2)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n", encoding="utf-8")
            print(f"lint report written to {args.json}", file=sys.stderr)
    if not args.json or args.json != "-":
        for finding in report.findings:
            print(finding.format())
        print(report.summary(), file=sys.stderr)
    return 0 if report.ok else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Run a coverage-guided differential fuzz campaign (or replay the corpus).

    Every generated case runs on every requested machine under the
    differential oracles (kernel equivalence, sampled-CI containment,
    deadlock watchdog, trace round-trip); failing cases are delta-debugged
    to minimal repros and, with --corpus-dir, written as permanent JSON
    regression files.  Exit status 1 on any oracle violation.
    """
    from .fuzz import replay_corpus, run_fuzz

    progress = None if args.quiet else _progress_logger("fuzz")

    if args.replay is not None:
        directory = Path(args.replay)
        if not directory.is_dir():
            print(f"error: corpus directory not found: {directory}", file=sys.stderr)
            return 2
        outcomes = replay_corpus(
            directory, progress=progress, sampling_tolerance=args.sampling_tolerance
        )
        failing = [
            (path, [verdict for verdict in verdicts if not verdict.ok])
            for path, verdicts in outcomes
        ]
        failing = [(path, verdicts) for path, verdicts in failing if verdicts]
        total = sum(len(verdicts) for _, verdicts in outcomes)
        print(
            f"replayed {len(outcomes)} corpus case(s): {total} verdicts, "
            f"{len(failing)} file(s) failing"
        )
        for path, verdicts in failing:
            for verdict in verdicts:
                print(f"  {path.name}: {verdict}")
        return 1 if failing else 0

    report = run_fuzz(
        args.cases,
        seed=args.seed,
        machines=args.machines,
        oracles=args.oracles,
        corpus_dir=Path(args.corpus_dir) if args.corpus_dir else None,
        progress=progress,
        sampling_tolerance=args.sampling_tolerance,
        shrink_failures=not args.no_shrink,
    )
    print(report.summary())
    for failure in report.failures:
        print(failure.describe())
    if args.json:
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.json}")
    if report.interrupted:
        # Partial results were printed/written above; exit with the
        # conventional 128+SIGINT status so callers see the interruption.
        return 130
    return 0 if report.ok else 1


def cmd_modes(args: argparse.Namespace) -> int:
    """List every registered machine organization."""
    specs = machine_specs()
    width = max(len(spec.name) for spec in specs)
    print("registered machines:")
    for spec in specs:
        print(f"  {spec.name:<{width}}  {spec.description}".rstrip())
    print(
        "\nregister more via repro.core.registry_machines.register_machine;"
        " any registered mode works with 'simulate --machine', ProcessorConfig"
        " and the sweep engine."
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Out-of-Order Commit Processors' (HPCA 2004)",
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        choices=["debug", "info", "warning", "error", "critical"],
        help="stdlib logging level for repro.* loggers (default: warning)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase log verbosity (-v info, -vv debug); --log-level wins",
    )
    subparsers = parser.add_subparsers(dest="command")

    def add_machine_arguments(
        subparser: argparse.ArgumentParser, include_window: bool = True
    ) -> None:
        # Machine-knob defaults live in the registry (CLI_DEFAULTS) so the
        # profile builders and the parser can never drift apart.
        subparser.add_argument(
            "--machine", choices=machine_names(), default="cooo",
            help="registered machine organization (see 'repro modes')",
        )
        subparser.add_argument("--memory-latency", type=int, default=CLI_DEFAULTS["memory_latency"])
        subparser.add_argument("--perfect-l2", action="store_true")
        if include_window:
            # 'timeline' claims --window for its index range and exposes
            # this knob as --machine-window instead.
            subparser.add_argument("--window", type=int, default=CLI_DEFAULTS["window"],
                                   help="baseline window size")
        subparser.add_argument("--iq-size", type=int, default=CLI_DEFAULTS["iq_size"])
        subparser.add_argument("--sliq-size", type=int, default=CLI_DEFAULTS["sliq_size"])
        subparser.add_argument("--checkpoints", type=int, default=CLI_DEFAULTS["checkpoints"])
        subparser.add_argument("--reinsert-delay", type=int, default=CLI_DEFAULTS["reinsert_delay"])
        subparser.add_argument("--virtual-tags", type=int, default=CLI_DEFAULTS["virtual_tags"])
        subparser.add_argument("--physical-registers", type=int,
                               default=CLI_DEFAULTS["physical_registers"])
        subparser.add_argument("--late-allocation", action="store_true")

    def positive_int(value: str) -> int:
        number = int(value)
        if number < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return number

    def add_sampling_argument(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--sample", default=None, metavar="PERIOD:WINDOW[:WARMUP[:SEED]]",
            help="sampled execution: functionally fast-forward between detailed "
                 "windows and extrapolate IPC with a 95%% confidence interval "
                 "(e.g. --sample 50000:8000:4000 for XL suites)",
        )
        subparser.add_argument(
            "--sample-jobs", type=positive_int, default=None, metavar="N",
            help="fan the detailed sample windows across N worker processes "
                 "(bit-identical to serial; requires --sample)",
        )
        subparser.add_argument(
            "--checkpoint-dir", default=None, metavar="DIR",
            help="persist and reuse the functional warm-up pass as keyed "
                 "warm-state checkpoint files (requires --sample; see "
                 "'repro checkpoint')",
        )

    simulate = subparsers.add_parser("simulate", help="run one machine over one workload or suite")
    # Workload/suite names are validated against the registry at run
    # time (not argparse choices), so late-registered ones work too.
    simulate.add_argument("--workload", default=None,
                          help="registered workload (see 'repro workloads')")
    simulate.add_argument("--suite", default=None,
                          help="registered suite (see 'repro workloads')")
    simulate.add_argument("--size", type=int, default=1000,
                          help="workload size parameter (elements/iterations)")
    simulate.add_argument("--scale", type=float, default=0.5, help="suite scale")
    add_sampling_argument(simulate)
    add_machine_arguments(simulate)
    simulate.add_argument("--json", default=None, help="write results to this JSON file")
    simulate.set_defaults(func=cmd_simulate)

    def add_engine_arguments(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--jobs", type=positive_int, default=1,
            help="worker processes for grid cells (default 1 = serial)",
        )
        subparser.add_argument(
            "--cache-dir", default=None,
            help="persistent result cache directory (default: "
                 "$REPRO_CACHE_DIR or ~/.cache/repro/sweeps)",
        )
        subparser.add_argument(
            "--no-cache", action="store_true",
            help="disable the persistent result cache",
        )
        subparser.add_argument(
            "--cell-timeout", type=float, default=None, metavar="SECONDS",
            help="per-cell wall-clock watchdog; a cell past this budget is "
                 "killed, retried, and eventually quarantined",
        )
        subparser.add_argument(
            "--retries", type=positive_int, default=None, metavar="N",
            help="attempts per cell before quarantine (default 3); the sweep "
                 "finishes and reports quarantined cells instead of raising",
        )
        subparser.add_argument(
            "--journal", default=None, metavar="FILE",
            help="append-only JSONL journal of finished cells, enabling "
                 "--resume after a crash or Ctrl-C",
        )
        subparser.add_argument(
            "--resume", action="store_true",
            help="skip cells recorded in --journal (loaded from the cache; "
                 "anything missing is simply re-simulated)",
        )
        subparser.add_argument(
            "--inject", default=None, metavar="PLAN",
            help="deterministic fault-injection plan for chaos testing, e.g. "
                 "'worker.crash=0.25,cell.hang=0.1' (sites: "
                 "worker.crash, cell.hang, simulate.error, cache.store.crash, "
                 "cache.corrupt, sweep.sigint)",
        )
        subparser.add_argument(
            "--inject-seed", type=int, default=0, metavar="SEED",
            help="seed for the --inject plan (same seed, same faults)",
        )

    experiment = subparsers.add_parser("experiment", help="regenerate one paper figure")
    experiment.add_argument("name", help="experiment name (see 'repro list')")
    experiment.add_argument("--scale", type=float, default=None)
    experiment.add_argument("--full", action="store_true", help="use the full parameter grid")
    experiment.add_argument(
        "--suite", default=None,
        help="registered workload suite to run the figure's machines over "
             "(default: the paper's spec2000fp_like)",
    )
    experiment.add_argument("--json", default=None, help="write the rows to this JSON file")
    add_engine_arguments(experiment)
    experiment.add_argument(
        "--progress", action="store_true", help="report per-cell progress on stderr"
    )
    experiment.set_defaults(func=cmd_experiment)

    sweep = subparsers.add_parser(
        "sweep", help="regenerate experiments through the parallel sweep engine"
    )
    sweep.add_argument(
        "names", nargs="*", metavar="experiment",
        help="experiment names (see 'repro list'), or 'all'; omit with "
             "--suite for a machine-grid sweep over one suite",
    )
    sweep.add_argument("--scale", type=float, default=None)
    sweep.add_argument("--full", action="store_true", help="use the full parameter grids")
    sweep.add_argument(
        "--suite", default=None,
        help="registered workload suite: with experiment names, swaps the "
             "suite under each figure; alone, sweeps the standard machine "
             "grid over it",
    )
    sweep.add_argument("--json", default=None, help="write every table to this JSON file")
    add_sampling_argument(sweep)
    add_engine_arguments(sweep)
    sweep.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress reporting"
    )
    sweep.set_defaults(func=cmd_sweep)

    trace = subparsers.add_parser(
        "trace", help="save, inspect and replay trace files (gzip-JSON)"
    )
    trace_actions = trace.add_subparsers(dest="trace_command")

    trace_save = trace_actions.add_parser(
        "save", help="generate a workload or suite and save it to trace files"
    )
    trace_save.add_argument("--workload", default=None,
                            help="registered workload (see 'repro workloads')")
    trace_save.add_argument("--suite", default=None,
                            help="registered suite: saves one file per member")
    trace_save.add_argument("--size", type=int, default=1000,
                            help="workload size parameter (elements/iterations)")
    trace_save.add_argument("--scale", type=float, default=0.5, help="suite scale")
    trace_save.add_argument("--out", default=None,
                            help=f"output file for --workload (default <name>{TRACE_SUFFIX})")
    trace_save.add_argument("--out-dir", default=None,
                            help="output directory for --suite (default <suite>-traces/)")
    trace_save.set_defaults(func=cmd_trace_save)

    trace_info_parser = trace_actions.add_parser(
        "info", help="print the header of saved trace files"
    )
    trace_info_parser.add_argument("paths", nargs="+", metavar="trace-file")
    trace_info_parser.set_defaults(func=cmd_trace_info)

    trace_run = trace_actions.add_parser(
        "run", help="simulate one machine over saved trace files"
    )
    trace_run.add_argument("paths", nargs="+", metavar="trace-file")
    add_machine_arguments(trace_run)
    trace_run.set_defaults(func=cmd_trace_run)

    checkpoint = subparsers.add_parser(
        "checkpoint",
        help="save, inspect and prune warm-state checkpoints (gzip-JSON)",
    )
    checkpoint_actions = checkpoint.add_subparsers(dest="checkpoint_command")

    checkpoint_save = checkpoint_actions.add_parser(
        "save",
        help="run the functional warm-up pass once and persist its "
             "keyed checkpoint (reused automatically by --checkpoint-dir)",
    )
    checkpoint_save.add_argument("--workload", default=None,
                                 help="registered workload (see 'repro workloads')")
    checkpoint_save.add_argument("--size", type=int, default=1000,
                                 help="workload size parameter (elements/iterations)")
    checkpoint_save.add_argument("--trace", default=None, metavar="FILE",
                                 help="saved trace file instead of --workload")
    checkpoint_save.add_argument(
        "--sample", default=None, metavar="PERIOD:WINDOW[:WARMUP[:SEED]]",
        help="sampling plan the checkpoint is keyed on (required)",
    )
    checkpoint_save.add_argument("--dir", default="warm-checkpoints",
                                 help="checkpoint directory (default warm-checkpoints/)")
    checkpoint_save.add_argument(
        "--max-bytes", type=int, default=None, metavar="BYTES",
        help="LRU-evict checkpoint files past this directory size",
    )
    add_machine_arguments(checkpoint_save)
    checkpoint_save.set_defaults(func=cmd_checkpoint_save)

    checkpoint_info_parser = checkpoint_actions.add_parser(
        "info", help="print the header of warm-checkpoint files"
    )
    checkpoint_info_parser.add_argument("paths", nargs="+", metavar="checkpoint-file")
    checkpoint_info_parser.set_defaults(func=cmd_checkpoint_info)

    checkpoint_gc = checkpoint_actions.add_parser(
        "gc", help="LRU-evict checkpoint files past a directory size budget"
    )
    checkpoint_gc.add_argument("--dir", default="warm-checkpoints",
                               help="checkpoint directory (default warm-checkpoints/)")
    checkpoint_gc.add_argument(
        "--max-bytes", type=int, required=True, metavar="BYTES",
        help="directory size budget; oldest-used files past it are deleted",
    )
    checkpoint_gc.set_defaults(func=cmd_checkpoint_gc)

    profile = subparsers.add_parser(
        "profile",
        help="profile one (machine, workload) cell: phase spans, CPI stall "
             "attribution, Chrome trace export",
        description="Run one MACHINE:WORKLOAD[:SIZE] cell with telemetry "
                    "attached and report where wall-clock and simulated "
                    "cycles went.  --trace-out writes a Chrome trace-event "
                    "JSON loadable in Perfetto; --deterministic swaps the "
                    "wall clock for a tick clock so exports are "
                    "byte-identical across runs (the CI smoke mode).",
    )
    profile.add_argument(
        "cell", metavar="MACHINE:WORKLOAD[:SIZE]",
        help="cell to profile, e.g. cooo:daxpy or baseline:gather:4000",
    )
    profile.add_argument("--size", type=int, default=1000,
                         help="workload size when the cell omits :SIZE")
    add_sampling_argument(profile)
    add_machine_arguments(profile)
    profile.add_argument(
        "--deterministic", action="store_true",
        help="use a deterministic tick clock (byte-identical exports)",
    )
    profile.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the phase spans as Chrome trace-event JSON to FILE",
    )
    profile.set_defaults(func=cmd_profile)

    timeline = subparsers.add_parser(
        "timeline",
        help="per-instruction ASCII pipeline timeline of one cell",
        description="Run one MACHINE:WORKLOAD[:SIZE] cell with the timeline "
                    "probe attached and draw a Konata-style lane per "
                    "instruction (F fetch, D dispatch, I issue, = execute, "
                    "C complete, R commit, x squash).",
    )
    timeline.add_argument(
        "cell", metavar="MACHINE:WORKLOAD[:SIZE]",
        help="cell to trace, e.g. cooo:daxpy or baseline:gather:4000",
    )
    timeline.add_argument("--size", type=int, default=1000,
                          help="workload size when the cell omits :SIZE")
    timeline.add_argument(
        "--window", dest="window_range", default=None, metavar="START:STOP",
        help="only show instructions with trace index in [START, STOP)",
    )
    timeline.add_argument(
        "--machine-window", dest="window", type=int, default=CLI_DEFAULTS["window"],
        help="baseline window-size knob (--window is the index range here)",
    )
    timeline.add_argument(
        "--width", type=int, default=100,
        help="maximum timeline columns (default 100)",
    )
    timeline.add_argument(
        "--capacity", type=positive_int, default=65536,
        help="timeline ring-buffer capacity (oldest events drop beyond it)",
    )
    add_sampling_argument(timeline)
    add_machine_arguments(timeline, include_window=False)
    timeline.set_defaults(func=cmd_timeline)

    listing = subparsers.add_parser("list", help="list workloads, suites and experiments")
    listing.set_defaults(func=cmd_list)

    workloads_parser = subparsers.add_parser(
        "workloads", help="list registered workloads and suites with their knobs"
    )
    workloads_parser.set_defaults(func=cmd_workloads)

    modes = subparsers.add_parser(
        "modes", help="list registered machine organizations"
    )
    modes.set_defaults(func=cmd_modes)

    from .fuzz import DEFAULT_SAMPLING_TOLERANCE, oracle_names

    fuzz = subparsers.add_parser(
        "fuzz",
        help="coverage-guided differential fuzzing across registered machines",
        description="Generate seeded random scenario compositions, run each on "
                    "every requested machine under the differential oracles, "
                    "minimize failures and (with --corpus-dir) write them as "
                    "replayable JSON repro files.  Deterministic per --seed.",
    )
    fuzz.add_argument(
        "--cases", type=positive_int, default=40,
        help="number of generated cases (default 40)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed; same seed means same cases, verdicts and coverage",
    )
    fuzz.add_argument(
        "--machines", nargs="+", choices=machine_names(), default=None,
        metavar="MACHINE",
        help=f"machines to differentially test (default: all registered: "
             f"{', '.join(machine_names())})",
    )
    fuzz.add_argument(
        "--oracles", nargs="+", choices=oracle_names(), default=None,
        metavar="ORACLE",
        help=f"oracles to apply (default: all: {', '.join(oracle_names())})",
    )
    fuzz.add_argument(
        "--corpus-dir", default=None,
        help="write minimized failing cases here as .case.json repro files",
    )
    fuzz.add_argument(
        "--replay", default=None, metavar="DIR",
        help="replay every corpus file under DIR instead of generating cases",
    )
    fuzz.add_argument(
        "--sampling-tolerance", type=float, default=DEFAULT_SAMPLING_TOLERANCE,
        help="max sampled/exact IPC ratio the sampled-ci oracle accepts "
             "(default %(default)s)",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging minimization of failing cases",
    )
    fuzz.add_argument("--json", default=None, help="write the campaign report to this JSON file")
    fuzz.add_argument(
        "--quiet", action="store_true", help="suppress per-case progress on stderr"
    )
    fuzz.set_defaults(func=cmd_fuzz)

    lint = subparsers.add_parser(
        "lint",
        help="simulator-aware static analysis (determinism, cache-key "
             "purity, hot-path hygiene, probe contract)",
        description="Run the AST-based analyzer over the repro package (or "
                    "PATH).  Deterministic output; exit 1 when findings "
                    "survive the committed baseline and inline suppressions.",
    )
    lint.add_argument(
        "path", nargs="?", default=None,
        help="directory or file to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the report as JSON to FILE ('-' for stdout)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file (default: <root>/analysis/lint_baseline.json)",
    )
    lint.add_argument(
        "--update-fingerprints", action="store_true",
        help="re-stamp the semantic-fingerprint manifest instead of linting "
             "(requires a repro.__version__ bump when module hashes changed)",
    )
    lint.add_argument(
        "--allow-same-version", action="store_true",
        help="with --update-fingerprints: permit re-stamping at an unchanged "
             "version (provably result-identical refactors only)",
    )
    lint.set_defaults(func=cmd_lint)

    from .perf import add_bench_arguments

    bench = subparsers.add_parser(
        "bench",
        help="run the simulator throughput benchmarks and append results "
             "to BENCH_simulator.json",
    )
    add_bench_arguments(bench)
    bench.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    from .telemetry import setup_cli_logging

    setup_cli_logging(
        log_level=getattr(args, "log_level", None),
        verbosity=getattr(args, "verbose", 0),
    )
    if not getattr(args, "command", None) or not hasattr(args, "func"):
        # No subcommand, or a command group ('trace') without an action.
        parser.print_help()
        return 2
    from .common.errors import SweepInterrupted

    try:
        return args.func(args)
    except SweepInterrupted as exc:
        # Ctrl-C (or the injected SIGINT site) mid-sweep: one clean line
        # with the completed/pending tally and the resume hint, then the
        # conventional 128+SIGINT exit status.
        print(f"interrupted: {exc}", file=sys.stderr)
        return 130
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
