"""Command-line interface: ``python -m repro <command> ...``.

Three subcommands cover the common workflows:

``simulate``
    Run one machine configuration over one workload (or a whole suite) and
    print the per-run statistics.

``experiment``
    Regenerate one of the paper's figures (or the checkpoint-policy
    ablation) and print its table.

``list``
    Show the available workloads, suites and experiments.

Examples::

    python -m repro simulate --machine cooo --workload daxpy --memory-latency 1000
    python -m repro simulate --machine baseline --window 128 --suite spec2000fp_like
    python -m repro experiment figure09 --scale 0.5
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from .analysis.report import format_table
from .common.config import ProcessorConfig, cooo_config, scaled_baseline
from .core.processor import Processor
from .core.result import SimulationResult
from .experiments.registry import EXPERIMENTS, available_experiments
from .trace.trace import Trace
from .workloads import integer, numerical
from .workloads.suite import SUITES, get_suite

#: Individual workload generators exposed on the command line.
WORKLOADS: Dict[str, Callable[[int], Trace]] = {
    "daxpy": lambda n: numerical.daxpy(elements=n),
    "triad": lambda n: numerical.stream_triad(elements=n),
    "stencil3": lambda n: numerical.stencil3(elements=n),
    "reduction": lambda n: numerical.reduction(elements=n),
    "gather": lambda n: numerical.random_gather(elements=n),
    "matvec": lambda n: numerical.matvec(rows=max(2, n // 32), cols=32),
    "blocked": lambda n: numerical.blocked_daxpy(elements=n),
    "fp_compute": lambda n: numerical.fp_compute_bound(iterations=n),
    "pointer_chase": lambda n: integer.pointer_chase(hops=n),
    "branchy_int": lambda n: integer.branchy_integer(iterations=n),
    "mixed": lambda n: integer.mixed_int_fp(iterations=n),
}


def build_machine(args: argparse.Namespace) -> ProcessorConfig:
    """Translate CLI arguments into a ProcessorConfig."""
    if args.machine == "baseline":
        return scaled_baseline(
            window=args.window,
            memory_latency=args.memory_latency,
            perfect_l2=args.perfect_l2,
        )
    return cooo_config(
        iq_size=args.iq_size,
        sliq_size=args.sliq_size,
        checkpoints=args.checkpoints,
        memory_latency=args.memory_latency,
        reinsert_delay=args.reinsert_delay,
        perfect_l2=args.perfect_l2,
        virtual_tags=args.virtual_tags,
        physical_registers=args.physical_registers
        if args.physical_registers is not None
        else 4096,
        late_allocation=args.late_allocation,
    )


def _result_row(name: str, result: SimulationResult) -> Dict[str, object]:
    return {
        "workload": name,
        "ipc": round(result.ipc, 4),
        "cycles": result.cycles,
        "instructions": result.committed_instructions,
        "in_flight": round(result.mean_in_flight, 1),
        "branch_acc": round(result.branch_accuracy, 4),
        "l2_miss%": round(100 * result.l2_load_miss_fraction, 2),
    }


def cmd_simulate(args: argparse.Namespace) -> int:
    config = build_machine(args)
    if args.suite:
        traces = get_suite(args.suite).build(args.scale)
    elif args.workload:
        traces = {args.workload: WORKLOADS[args.workload](args.size)}
    else:
        print("error: provide --workload or --suite", file=sys.stderr)
        return 2
    processor = Processor(config)
    rows: List[Dict[str, object]] = []
    results = {}
    for name, trace in traces.items():
        result = processor.run(trace)
        results[name] = result
        rows.append(_result_row(name, result))
    print(f"machine: {config.name or config.mode}")
    print(format_table(rows))
    if len(rows) > 1:
        mean_ipc = sum(row["ipc"] for row in rows) / len(rows)  # type: ignore[arg-type]
        print(f"\nsuite average IPC: {mean_ipc:.4f}")
    if args.json:
        payload = {
            "machine": config.describe(),
            "results": {name: result.summary_row() for name, result in results.items()},
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.name not in EXPERIMENTS:
        print(
            f"error: unknown experiment {args.name!r}; available: "
            f"{', '.join(available_experiments())}",
            file=sys.stderr,
        )
        return 2
    runner = EXPERIMENTS[args.name]
    kwargs: Dict[str, object] = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.full and "quick" in runner.__code__.co_varnames:
        kwargs["quick"] = False
    experiment = runner(**kwargs)
    print(experiment.report())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "experiment": experiment.experiment,
                    "description": experiment.description,
                    "rows": experiment.rows,
                    "notes": experiment.notes,
                },
                handle,
                indent=2,
            )
        print(f"\nwrote {args.json}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("workloads:")
    for name in sorted(WORKLOADS):
        print(f"  {name}")
    print("suites:")
    for name, suite in SUITES.items():
        print(f"  {name}: {', '.join(suite.names())}")
    print("experiments:")
    for name in available_experiments():
        print(f"  {name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Out-of-Order Commit Processors' (HPCA 2004)",
    )
    subparsers = parser.add_subparsers(dest="command")

    simulate = subparsers.add_parser("simulate", help="run one machine over one workload or suite")
    simulate.add_argument("--machine", choices=("baseline", "cooo"), default="cooo")
    simulate.add_argument("--workload", choices=sorted(WORKLOADS), default=None)
    simulate.add_argument("--suite", choices=sorted(SUITES), default=None)
    simulate.add_argument("--size", type=int, default=1000,
                          help="workload size parameter (elements/iterations)")
    simulate.add_argument("--scale", type=float, default=0.5, help="suite scale")
    simulate.add_argument("--memory-latency", type=int, default=1000)
    simulate.add_argument("--perfect-l2", action="store_true")
    simulate.add_argument("--window", type=int, default=128, help="baseline window size")
    simulate.add_argument("--iq-size", type=int, default=128)
    simulate.add_argument("--sliq-size", type=int, default=2048)
    simulate.add_argument("--checkpoints", type=int, default=8)
    simulate.add_argument("--reinsert-delay", type=int, default=4)
    simulate.add_argument("--virtual-tags", type=int, default=None)
    simulate.add_argument("--physical-registers", type=int, default=None)
    simulate.add_argument("--late-allocation", action="store_true")
    simulate.add_argument("--json", default=None, help="write results to this JSON file")
    simulate.set_defaults(func=cmd_simulate)

    experiment = subparsers.add_parser("experiment", help="regenerate one paper figure")
    experiment.add_argument("name", help="experiment name (see 'repro list')")
    experiment.add_argument("--scale", type=float, default=None)
    experiment.add_argument("--full", action="store_true", help="use the full parameter grid")
    experiment.add_argument("--json", default=None, help="write the rows to this JSON file")
    experiment.set_defaults(func=cmd_experiment)

    listing = subparsers.add_parser("list", help="list workloads, suites and experiments")
    listing.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
