"""Parallel sweep engine with a persistent on-disk result cache.

Every figure of the paper is an embarrassingly parallel grid of
``(ProcessorConfig, workload)`` cells: each cell is one independent
simulation whose result depends only on the configuration, the trace
generator, and the suite scale.  This module turns that observation into
infrastructure:

:class:`SweepSpec`
    A declarative description of a grid — an ordered list of
    configurations crossed with the workloads of a suite at a scale.

:class:`SweepEngine`
    Executes a spec either serially (``jobs=1``, bit-identical to the
    pre-engine per-figure loops) or on a fault-tolerant process pool
    (:class:`repro.robustness.ResilientPool`) with a configurable worker
    count.  Results always come back in declared cell order regardless
    of which worker finished first.

:class:`ResultCache`
    A persistent cache of finished cells, keyed by a stable content hash
    of (config, suite, workload, scale, simulator version).  Re-running
    a figure only simulates the cells whose inputs changed; everything
    else is loaded from disk.  Corrupt entries are detected, quarantined
    into a ``corrupt/`` subdirectory and transparently re-simulated.

The engine is additionally hardened on :mod:`repro.robustness` — all of
it strictly opt-in (a plain ``SweepEngine(jobs, cache)`` takes none of
these paths and produces bit-identical results and cache keys):

* ``cell_timeout`` arms a per-cell wall-clock watchdog — SIGALRM in
  serial runs, parent-side deadline kills in parallel ones;
* failed cells are retried under a :class:`~repro.robustness.RetryPolicy`
  and quarantined after the budget: the sweep *finishes*, reporting the
  holes in :attr:`SweepOutcome.failed_cells` instead of raising;
* dead workers are detected and respawned, and the pool degrades to
  serial in-parent execution when workers keep dying;
* a :class:`~repro.robustness.SweepJournal` records every finished cell
  durably, enabling ``resume=True`` (journaled cells are loaded from
  the cache, not re-simulated) and a clean Ctrl-C story: interruption
  raises :class:`~repro.common.errors.SweepInterrupted` carrying the
  completed/pending tally;
* a :class:`~repro.robustness.FaultInjector` drives all of the above
  deterministically from a seed, for tests and the chaos CI job.

Usage::

    from repro.experiments.sweep import ResultCache, SweepEngine, SweepSpec

    spec = SweepSpec("demo", [scaled_baseline(window=128)], scale=0.3)
    engine = SweepEngine(jobs=4, cache=ResultCache("~/.cache/repro/sweeps"))
    outcome = engine.run(spec)
    for config, results in outcome.per_config():
        print(config.name, {w: r.ipc for w, r in results.items()})
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..telemetry import TelemetrySession

from ..api import Simulation
from ..common import eviction
from ..common.config import ProcessorConfig, SamplingPlan
from ..common.errors import SweepInterrupted
from ..core.result import SimulationResult
from ..robustness import FaultInjector, ResilientPool, RetryPolicy, SweepJournal, deadline
from ..trace.trace import Trace
from ..workloads.registry import get_suite
from .runner import DEFAULT_SCALE, suite_traces

#: Bumped whenever the cache file layout (not the simulator) changes.
CACHE_SCHEMA_VERSION = 1


def current_simulator_version() -> str:
    """``repro.__version__``, read at call time.

    Key building and version stamping must see the *current* value, not
    one bound at import: a version bump between imports (tests monkeypatch
    it; long-lived processes may reload config) has to invalidate keys
    immediately.
    """
    import repro

    return repro.__version__

#: Type of the optional per-cell progress callback.
ProgressFn = Callable[[str], None]


def default_cache_dir() -> Path:
    """Default location of the persistent result cache.

    ``REPRO_CACHE_DIR`` overrides it; otherwise results live under the
    user's cache directory so repeated figure regenerations share work.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "sweeps"


# ---------------------------------------------------------------------------
# Spec: the declarative grid
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepCell:
    """One unit of work: simulate ``config`` over ``workload``'s trace."""

    index: int
    config: ProcessorConfig
    workload: str


@dataclass
class SweepSpec:
    """A declarative (config x workload) grid at one suite scale.

    ``configs`` order is preserved everywhere: cells enumerate
    config-major (all workloads of the first config, then the second...),
    matching how the figure modules assemble their result rows.
    """

    name: str
    configs: Sequence[ProcessorConfig]
    scale: float = DEFAULT_SCALE
    suite: str = "spec2000fp_like"
    workloads: Optional[Sequence[str]] = None
    #: Optional statistical-sampling plan applied to every cell; part of
    #: each cell's cache key, so sampled results never shadow exact ones.
    sampling: Optional[SamplingPlan] = None

    def workload_names(self) -> List[str]:
        """Resolved workload list (the whole suite unless filtered)."""
        names = get_suite(self.suite).names()
        if self.workloads is None:
            return names
        unknown = [w for w in self.workloads if w not in names]
        if unknown:
            raise KeyError(
                f"unknown workloads {unknown} for suite {self.suite!r}; members: {names}"
            )
        return list(self.workloads)

    def cells(self) -> List[SweepCell]:
        """Enumerate the grid in deterministic config-major order."""
        out: List[SweepCell] = []
        workloads = self.workload_names()
        for config in self.configs:
            for workload in workloads:
                out.append(SweepCell(len(out), config, workload))
        return out

    def __len__(self) -> int:
        return len(self.configs) * len(self.workload_names())


# ---------------------------------------------------------------------------
# Persistent result cache
# ---------------------------------------------------------------------------


def cell_cache_key(
    config: ProcessorConfig,
    suite: str,
    workload: str,
    scale: float,
    simulator_version: Optional[str] = None,
    sampling: Optional[SamplingPlan] = None,
) -> str:
    """Stable content hash identifying one simulation cell.

    Any change to the configuration, the trace generator identity
    (suite + workload name), the scale, the sampling plan, or the
    simulator version yields a different key, so stale results can never
    be returned.  Workload and suite names come from the registry
    (:mod:`repro.workloads.registry`); registering new ones never
    perturbs existing keys, but a registered *name* must keep generating
    the same trace — change the behaviour, change the name (or bump
    ``repro.__version__``).  The ``sampling`` component is only added to
    the payload when a plan is set, so every pre-sampling cache key is
    byte-for-byte unchanged.
    """
    payload = {
        "config": config.to_dict(),
        "suite": suite,
        "workload": workload,
        "scale": round(float(scale), 9),
        "simulator_version": (
            simulator_version
            if simulator_version is not None
            else current_simulator_version()
        ),
        "cache_schema": CACHE_SCHEMA_VERSION,
    }
    if sampling is not None:
        payload["sampling"] = sampling.to_dict()
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk store of finished cells, one JSON file per cache key.

    Writes are atomic (temp file + ``os.replace``) so a crashed or
    concurrent run can never leave a half-written entry in place; reads
    treat any unreadable/inconsistent file as corrupt, move it into the
    ``corrupt/`` quarantine subdirectory (preserving the evidence for
    post-mortem instead of destroying it), and report a miss so the
    engine re-simulates the cell.

    The optional ``injector``/``fault_context`` attributes are fault-
    injection plumbing: when an injector is attached, ``store`` offers
    it the ``cache.store.crash`` site between the temp write and the
    atomic replace, and the ``cache.corrupt`` site after a successful
    store.  Both default to off; a cache without an injector takes the
    exact pre-robustness write path.

    ``max_bytes`` caps the store's on-disk size: after every store the
    least-recently-*used* entries (mtime order, refreshed on load hits —
    see :mod:`repro.common.eviction`, which warm-state checkpoint
    directories share) are deleted until the cap holds again.  ``None``
    (the default) keeps the store unbounded, the pre-cap behavior.
    """

    def __init__(self, cache_dir: os.PathLike, max_bytes: Optional[int] = None) -> None:
        self.cache_dir = Path(cache_dir).expanduser()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Entries deleted (and bytes freed) by LRU eviction under
        #: :attr:`max_bytes`.
        self.evictions = 0
        self.evicted_bytes = 0
        self.corrupt = 0
        #: Corrupt entries moved into :attr:`corrupt_dir` (vs unlinked
        #: when the move itself fails).
        self.quarantined = 0
        #: Optional :class:`~repro.robustness.FaultInjector`; see above.
        self.injector: Optional[FaultInjector] = None
        #: Decision context for the injector's cache sites.
        self.fault_context = ""

    @property
    def corrupt_dir(self) -> Path:
        """Quarantine directory for corrupt entries (created on demand)."""
        return self.cache_dir / "corrupt"

    def path_for(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry out of the way; fall back to deletion."""
        try:
            self.corrupt_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.corrupt_dir / path.name)
            self.quarantined += 1
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def load(self, key: str) -> Optional[SimulationResult]:
        """Cached result for ``key``, or None on a miss or corrupt entry."""
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("key") != key:
                raise ValueError("cache entry key mismatch")
            result = SimulationResult.from_dict(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            # Everything a truncated, hand-edited or wrong-shaped JSON file
            # can throw — including AttributeError when the top-level value
            # is valid JSON but not an object — counts as a corrupt entry:
            # quarantine it and report a miss so the cell is re-simulated.
            self.corrupt += 1
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        eviction.touch(path)
        return result

    def store(self, key: str, result: SimulationResult) -> None:
        """Atomically persist ``result`` under ``key``.

        The destination either keeps its previous content or gets the
        complete new payload — a crash anywhere in here (including the
        injected ``cache.store.crash``) leaves at most an orphaned temp
        file, never a torn entry; the temp file is cleaned up on any
        non-fatal failure.
        """
        payload = {
            "key": key,
            "simulator_version": current_simulator_version(),
            "cache_schema": CACHE_SCHEMA_VERSION,
            "result": result.to_dict(),
        }
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        text = json.dumps(payload)
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                if self.injector is not None:
                    # Simulate the realistic torn write: half the payload
                    # durably on disk, then die before the atomic replace.
                    handle.write(text[: len(text) // 2])
                    handle.flush()
                    self.injector.store_crash_point(self.fault_context or key[:12])
                    handle.seek(0)
                    handle.truncate()
                handle.write(text)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        self.stores += 1
        if self.injector is not None:
            self.injector.corrupt_point(path, self.fault_context or key[:12])
        if self.max_bytes is not None:
            removed, freed = eviction.evict_lru(self.cache_dir, self.max_bytes, ".json")
            self.evictions += removed
            self.evicted_bytes += freed

    def clear(self) -> int:
        """Delete every cache entry (and orphaned temp files plus the
        corrupt quarantine); returns the number of entries removed."""
        removed = 0
        for path in self.cache_dir.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        # Temp files orphaned by a crash between write and os.replace,
        # and quarantined corpses — neither counts as a cache entry.
        for path in self.cache_dir.glob("*.tmp.*"):
            try:
                path.unlink()
            except OSError:
                pass
        if self.corrupt_dir.is_dir():
            for path in self.corrupt_dir.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed


# ---------------------------------------------------------------------------
# Worker-side execution
# ---------------------------------------------------------------------------

#: Per-worker-process trace cache: (suite, rounded scale) -> workload -> Trace.
_WORKER_TRACES: Dict[Tuple[str, float], Dict[str, Trace]] = {}

#: Per-worker-process handle on the persistent result cache (keyed by
#: directory so a pool serving several engines keeps them distinct).
_WORKER_CACHES: Dict[str, ResultCache] = {}

#: Traces actually generated by this process's :func:`_worker_trace` (cache
#: misses only).  Tests use it to assert that workload-major task ordering
#: lets the per-worker cache hit instead of rebuilding every trace.
TRACE_BUILDS = 0


def _worker_trace(suite: str, scale: float, workload: str) -> Trace:
    """Build (and cache per process) one workload's trace.

    Trace generation is deterministic (fixed seeds), so a trace built in
    a worker is identical to one built in the parent.
    """
    global TRACE_BUILDS
    key = (suite, round(scale, 6))
    per_suite = _WORKER_TRACES.setdefault(key, {})
    if workload not in per_suite:
        for member in get_suite(suite):
            if member.name == workload:
                per_suite[workload] = member.build(scale)
                TRACE_BUILDS += 1
                break
        else:
            raise KeyError(f"unknown workload {workload!r} in suite {suite!r}")
    return per_suite[workload]


def _worker_cache(cache_dir: str, max_bytes: Optional[int] = None) -> ResultCache:
    """Per-process handle on the persistent cache at ``cache_dir``.

    Workers keep their own :class:`ResultCache` instance (with its own
    hit/miss counters) because cache objects don't travel across
    ``fork``/``spawn`` usefully — the parent aggregates the per-cell
    counter deltas reported back in each task's meta dict.
    """
    if cache_dir not in _WORKER_CACHES:
        _WORKER_CACHES[cache_dir] = ResultCache(cache_dir, max_bytes=max_bytes)
    return _WORKER_CACHES[cache_dir]


def _simulate_cell(
    task: Tuple[object, ...]
) -> Tuple[SimulationResult, Dict[str, object]]:
    """Pool worker entry point: rebuild the config, build the trace, run.

    ``task`` is ``(config_data, suite, scale, workload, sampling_data)``
    optionally extended with ``(cache_dir, cache_key)``, further with
    ``(fault_plan_data, fault_context)``, further with
    ``(checkpoint_dir, cache_max_bytes)``, and finally with
    ``(attempt,)``.  When the cache
    fields are present the worker checks the persistent cache itself
    (another process may have finished the cell since the parent's
    lookup) and stores fresh results — keeping the store off the
    parent's collection loop.  When a fault plan rides along, an
    injector is rebuilt from it and offered every worker-side site; the
    decision context carries the attempt number (``...:aN``), so a cell
    that crashed on one attempt draws fresh on the next.  Returns
    ``(result, meta)`` where ``meta`` reports the worker's pid, per-cell
    wall-clock, whether the cell was a worker-side cache hit, and any
    faults fired, so the parent can aggregate counters and reconstruct
    per-worker utilization.
    """
    config_data, suite, scale, workload, sampling_data = task[:5]
    cache_dir = str(task[5]) if len(task) > 5 and task[5] else None
    cache_key = str(task[6]) if len(task) > 6 and task[6] else None
    plan_data = task[7] if len(task) > 7 else None
    fault_context = str(task[8]) if len(task) > 8 and task[8] else f"{suite}:{workload}"
    checkpoint_dir = str(task[9]) if len(task) > 9 and task[9] else None
    cache_max_bytes = int(task[10]) if len(task) > 10 and task[10] is not None else None  # type: ignore[arg-type]
    attempt = int(task[11]) if len(task) > 11 else 0  # type: ignore[arg-type]
    injector = (
        FaultInjector.from_dict(plan_data)  # type: ignore[arg-type]
        if plan_data
        else None
    )
    context = f"{fault_context}:a{attempt}"
    started = time.perf_counter()
    cache = _worker_cache(cache_dir, cache_max_bytes) if cache_dir and cache_key else None
    evictions_before = cache.evictions if cache is not None else 0
    if injector is not None:
        injector.crash_point(context)
    result: Optional[SimulationResult] = None
    cache_hit = False
    try:
        if cache is not None and injector is not None:
            cache.injector = injector
            cache.fault_context = context
        if cache is not None and cache_key is not None:
            result = cache.load(cache_key)
            cache_hit = result is not None
        if result is None:
            config = ProcessorConfig.from_dict(config_data)  # type: ignore[arg-type]
            sampling = SamplingPlan.from_dict(sampling_data) if sampling_data else None
            if injector is not None:
                injector.hang_point(context)
            trace = _worker_trace(suite, scale, workload)
            probes: Tuple[object, ...] = ()
            if injector is not None:
                probe = injector.simulate_error_probe(context)
                if probe is not None:
                    probes = (probe,)
            result = Simulation(
                config,
                sampling=sampling,
                probes=probes,
                checkpoint_dir=checkpoint_dir if sampling is not None else None,
            ).run(trace)
            if cache is not None and cache_key is not None:
                cache.store(cache_key, result)
    finally:
        if cache is not None and injector is not None:
            cache.injector = None
            cache.fault_context = ""
    meta: Dict[str, object] = {
        "pid": os.getpid(),
        "elapsed": time.perf_counter() - started,
        "cache_hit": cache_hit,
        "stored": cache is not None and not cache_hit,
        "evictions": (cache.evictions - evictions_before) if cache is not None else 0,
    }
    if injector is not None and injector.fired:
        meta["faults"] = list(injector.fired)
    return result, meta


def _cell_with_attempt(
    task: Tuple[object, ...], attempt: int
) -> Tuple[SimulationResult, Dict[str, object]]:
    """Resilient-pool adapter: pad the task tuple and append the attempt."""
    padded = tuple(task)
    if len(padded) < 11:
        padded = padded + (None,) * (11 - len(padded))
    return _simulate_cell(padded + (attempt,))


def _workload_major(
    cells: Sequence[SweepCell],
    slots: Sequence[Optional[SimulationResult]],
    spec: SweepSpec,
) -> List[SweepCell]:
    """Pending cells reordered workload-major for worker trace locality.

    Specs enumerate config-major, which hands a round-robin pool one
    cell of *every* workload — each worker then rebuilds each trace
    instead of hitting its per-process ``_WORKER_TRACES`` cache.
    Grouping all configs of one workload together (stable, so config
    order within a workload is preserved) makes consecutive tasks share
    a trace; results still land in declared order via ``cell.index``.
    """
    order = {name: rank for rank, name in enumerate(spec.workload_names())}
    pending = [cell for cell in cells if slots[cell.index] is None]
    pending.sort(key=lambda cell: order.get(cell.workload, len(order)))
    return pending


def _locality_chunksize(pending: Sequence[SweepCell], workers: int) -> int:
    """An ``imap`` chunk size that keeps one workload's run on one worker.

    A chunk should cover several same-workload cells (so the worker's
    trace cache pays off) but never much more than one workload's run
    (so the tail doesn't serialize on one worker).
    """
    if not pending or workers < 1:
        return 1
    per_workload = len(pending) // max(1, len({cell.workload for cell in pending}))
    fair_share = -(-len(pending) // workers)  # ceil division
    return max(1, min(per_workload, fair_share))


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


@dataclass
class SweepOutcome:
    """Results of one executed spec, in declared cell order.

    ``results`` is full-length — one slot per declared cell — and a
    slot is ``None`` only for a quarantined cell (impossible without a
    fault injector or a genuinely poisoned cell; fault-free sweeps are
    always complete).  Quarantined cells are itemized in
    ``failed_cells`` so callers report holes instead of crashing on
    them.
    """

    spec: SweepSpec
    results: List[Optional[SimulationResult]]
    simulated: int = 0
    cached: int = 0
    elapsed: float = 0.0
    #: Persistent-cache traffic across the whole sweep, parent lookups
    #: *plus* worker-side lookups (which used to be silently dropped).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Entries LRU-evicted from a size-capped cache during this sweep
    #: (parent- and worker-side stores combined).
    cache_evictions: int = 0
    #: Sum of per-cell worker wall-clock (parallel runs only); divided by
    #: ``elapsed * workers`` this is the pool utilization.
    worker_busy: float = 0.0
    #: One dict per quarantined cell: ``{"index", "config", "workload",
    #: "key", "attempts", "errors"}`` — the partial-result report.
    failed_cells: List[Dict[str, object]] = field(default_factory=list)
    #: Cell attempts re-run after a failure (any cause).
    retries: int = 0
    #: Cells loaded from cache because a resume journal recorded them.
    resumed: int = 0
    #: Worker processes that died and were respawned (parallel only).
    worker_deaths: int = 0
    #: Cells killed by the per-cell wall-clock watchdog.
    timeouts: int = 0
    #: True when the pool gave up on workers and finished serially.
    degraded: bool = False
    _by_config: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)

    @property
    def quarantined(self) -> int:
        """Number of cells that exhausted their retry budget."""
        return len(self.failed_cells)

    def __post_init__(self) -> None:
        if not self._by_config:
            workloads = self.spec.workload_names()
            for i, config in enumerate(self.spec.configs):
                block = self.results[i * len(workloads) : (i + 1) * len(workloads)]
                self._by_config[config.stable_hash()] = {
                    workload: result
                    for workload, result in zip(workloads, block)
                    if result is not None
                }

    def config_results(self, config: ProcessorConfig) -> Dict[str, SimulationResult]:
        """Per-workload results of one configuration of the spec."""
        try:
            return self._by_config[config.stable_hash()]
        except KeyError as exc:
            raise KeyError(
                f"config {config.name or config.mode!r} is not part of sweep "
                f"{self.spec.name!r}"
            ) from exc

    def per_config(self) -> Iterator[Tuple[ProcessorConfig, Dict[str, SimulationResult]]]:
        """Iterate (config, per-workload results) in declared order."""
        for config in self.spec.configs:
            yield config, self.config_results(config)


class SweepEngine:
    """Executes :class:`SweepSpec`s, optionally in parallel and cached.

    Every cell executes through :class:`repro.api.Simulation` (the
    unified facade).  ``jobs=1`` runs in-process with the same trace
    cache and per-config reuse as the original figure loops, so its
    output is bit-identical to the pre-engine implementation.  ``jobs>1`` fans the
    uncached cells out over a fault-tolerant process pool; because the
    simulator is deterministic pure Python, parallel results equal
    serial ones.  ``jobs=None`` uses every available CPU.

    The keyword-only robustness knobs live on the engine, not the spec,
    because none of them may influence a cell's identity (cache keys
    hash the spec): ``cell_timeout`` arms per-cell watchdogs, ``retry``
    bounds re-attempts before quarantine, ``journal`` records durable
    progress for ``resume=True``, ``injector`` drives deterministic
    chaos, and ``max_worker_deaths`` caps pool rebuilds before the
    engine degrades to serial execution.  All default to off.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressFn] = None,
        telemetry: Optional["TelemetrySession"] = None,
        *,
        cell_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        injector: Optional[FaultInjector] = None,
        journal: Optional[SweepJournal] = None,
        resume: bool = False,
        max_worker_deaths: Optional[int] = None,
        sample_jobs: Optional[int] = None,
        checkpoint_dir=None,
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.telemetry = telemetry
        self.cell_timeout = cell_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.injector = injector
        self.journal = journal
        self.resume = resume
        self.max_worker_deaths = max_worker_deaths
        #: Sampled-run performance levers (see
        #: :func:`repro.core.sampling.run_sampled`), engine-side like the
        #: robustness knobs because they may not influence cell identity
        #: — cache keys are byte-identical with or without them.
        #: ``sample_jobs`` fans each sampled cell's detailed windows over
        #: worker processes (applied on the serial engine path only;
        #: parallel sweeps already saturate the machine with cells), and
        #: ``checkpoint_dir`` lets every cell sharing warm-relevant
        #: parameters reuse one functional warm-up pass.
        if sample_jobs is not None and sample_jobs < 1:
            raise ValueError(f"sample_jobs must be >= 1, got {sample_jobs}")
        self.sample_jobs = sample_jobs
        self.checkpoint_dir = checkpoint_dir
        # Cumulative counters across every run() of this engine.
        self.total_simulated = 0
        self.total_cached = 0

    def _span(self, name: str, *, category: str, **args: object):
        """A tracer span when telemetry is attached, else a no-op scope."""
        if self.telemetry is None:
            return nullcontext()
        return self.telemetry.tracer.span(name, category=category, **args)

    # -- internals ----------------------------------------------------------
    def _report(self, done: int, total: int, cell: SweepCell, source: str) -> None:
        if self.progress is not None:
            config_name = cell.config.name or cell.config.mode
            self.progress(f"[{done}/{total}] {config_name} x {cell.workload}: {source}")

    def _load_cached(
        self, cells: Sequence[SweepCell], spec: SweepSpec
    ) -> Tuple[List[Optional[SimulationResult]], List[str]]:
        """Fill cache hits; returns (slots, per-cell cache keys).

        Keys are computed whenever the cache *or* the journal needs them
        (journal records identify cells by key); a bare engine computes
        none, exactly as before the robustness work.
        """
        slots: List[Optional[SimulationResult]] = [None] * len(cells)
        if self.cache is None and self.journal is None:
            return slots, [""] * len(cells)
        keys = [
            cell_cache_key(
                cell.config, spec.suite, cell.workload, spec.scale, sampling=spec.sampling
            )
            for cell in cells
        ]
        if self.cache is not None:
            for cell in cells:
                slots[cell.index] = self.cache.load(keys[cell.index])
        return slots, keys

    def _journal_append(self, record: Dict[str, object]) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def _store_result(self, key: str, result: SimulationResult, context: str) -> None:
        """Store through the cache, lending it the engine's injector.

        ``context`` carries the attempt number, so an injected store
        crash is transient — the retry draws fresh and lands the entry.
        """
        if self.cache is None:
            return
        if self.injector is not None:
            self.cache.injector = self.injector
            self.cache.fault_context = context
        try:
            self.cache.store(key, result)
        finally:
            if self.injector is not None:
                self.cache.injector = None
                self.cache.fault_context = ""

    def _quarantine_cell(
        self, cell: SweepCell, key: str, attempts: int, errors: List[str], rstats: Dict
    ) -> None:
        config_name = cell.config.name or cell.config.mode
        entry: Dict[str, object] = {
            "index": cell.index,
            "config": config_name,
            "workload": cell.workload,
            "key": key,
            "attempts": attempts,
            "errors": list(errors),
        }
        rstats["failed"].append(entry)
        self._journal_append(
            {
                "event": "cell-quarantined",
                "index": cell.index,
                "key": key,
                "attempts": attempts,
                "errors": list(errors),
            }
        )

    def _run_serial(
        self,
        spec: SweepSpec,
        cells: Sequence[SweepCell],
        slots: List[Optional[SimulationResult]],
        keys: Sequence[str],
        rstats: Dict[str, object],
    ) -> None:
        from ..common.errors import CellTimeoutError

        with self._span("sweep:trace-build", category="sweep", suite=spec.suite):
            traces = suite_traces(spec.scale, spec.suite, spec.workloads)
        done = sum(1 for slot in slots if slot is not None)
        simulation: Optional[Simulation] = None
        simulation_config: Optional[ProcessorConfig] = None
        for cell in cells:
            if slots[cell.index] is not None:
                continue
            if simulation is None or simulation_config is not cell.config:
                simulation = Simulation(
                    cell.config,
                    sampling=spec.sampling,
                    sample_jobs=self.sample_jobs if spec.sampling is not None else None,
                    checkpoint_dir=(
                        self.checkpoint_dir if spec.sampling is not None else None
                    ),
                )
                simulation_config = cell.config
            config_name = cell.config.name or cell.config.mode
            attempts = 0
            errors: List[str] = []
            while True:
                context = f"{config_name}x{cell.workload}:a{attempts}"
                active = simulation
                if self.injector is not None:
                    probe = self.injector.simulate_error_probe(context)
                    if probe is not None:
                        # A probed run needs its own facade; the shared
                        # per-config one must stay probe-free.  Probes
                        # cannot cross window-worker processes, so the
                        # probed facade drops sample_jobs (never the
                        # checkpoint reuse, which is parent-side).
                        active = Simulation(
                            cell.config,
                            sampling=spec.sampling,
                            probes=(probe,),
                            checkpoint_dir=(
                                self.checkpoint_dir
                                if spec.sampling is not None
                                else None
                            ),
                        )
                try:
                    with self._span(
                        f"cell:{config_name}x{cell.workload}",
                        category="cell",
                        workload=cell.workload,
                    ):
                        with deadline(
                            self.cell_timeout, label=f"cell {config_name}x{cell.workload}"
                        ):
                            result = active.run(traces[cell.workload])
                    self._store_result(keys[cell.index], result, context)
                except Exception as exc:  # noqa: BLE001 - retried/quarantined
                    attempts += 1
                    errors.append(f"{type(exc).__name__}: {exc}")
                    if isinstance(exc, CellTimeoutError):
                        rstats["timeouts"] += 1  # type: ignore[operator]
                    self._journal_append(
                        {
                            "event": "cell-failed",
                            "index": cell.index,
                            "key": keys[cell.index],
                            "attempt": attempts,
                            "error": errors[-1],
                        }
                    )
                    if self.retry.allows(attempts):
                        rstats["retries"] += 1  # type: ignore[operator]
                        time.sleep(self.retry.backoff(attempts))
                        continue
                    self._quarantine_cell(
                        cell, keys[cell.index], attempts, errors, rstats
                    )
                    self._report(
                        done, len(cells), cell, f"quarantined after {attempts} attempt(s)"
                    )
                    break
                slots[cell.index] = result
                done += 1
                self._journal_append(
                    {
                        "event": "cell-done",
                        "index": cell.index,
                        "key": keys[cell.index],
                        "workload": cell.workload,
                        "config": config_name,
                        "source": "simulated",
                    }
                )
                self._report(done, len(cells), cell, f"simulated ipc={result.ipc:.4f}")
                if self.injector is not None:
                    self.injector.sigint_point(f"collect:{done}")
                break

    def _run_parallel(
        self,
        spec: SweepSpec,
        cells: Sequence[SweepCell],
        slots: List[Optional[SimulationResult]],
        keys: Sequence[str],
        rstats: Dict[str, object],
    ) -> Dict[str, float]:
        pending = _workload_major(cells, slots, spec)
        sampling_data = spec.sampling.to_dict() if spec.sampling is not None else None
        cache_dir = str(self.cache.cache_dir) if self.cache is not None else None
        plan_data = self.injector.to_dict() if self.injector is not None else None
        by_index = {cell.index: cell for cell in pending}
        tasks = []
        for cell in pending:
            config_name = cell.config.name or cell.config.mode
            fault_context = f"{config_name}x{cell.workload}"
            payload = (
                cell.config.to_dict(),
                spec.suite,
                spec.scale,
                cell.workload,
                sampling_data,
                cache_dir,
                keys[cell.index] if cache_dir is not None else None,
                plan_data,
                fault_context,
                str(self.checkpoint_dir) if self.checkpoint_dir is not None else None,
                self.cache.max_bytes if self.cache is not None else None,
            )
            tasks.append((cell.index, payload, fault_context))
        workers = min(self.jobs, len(pending))
        chunksize = _locality_chunksize(pending, workers)
        stats = {"hits": 0.0, "misses": 0.0, "stores": 0.0, "busy": 0.0, "evictions": 0.0}
        tracer = self.telemetry.tracer if self.telemetry is not None else None
        base = tracer.clock.now() if tracer is not None else 0.0
        worker_tids: Dict[object, int] = {}
        worker_offsets: Dict[int, float] = {}
        done_box = {"done": sum(1 for slot in slots if slot is not None)}

        def on_event(kind: str, **info) -> None:
            if kind == "result":
                index = info["task_id"]
                result, meta = info["value"]
                cell = by_index[index]
                slots[index] = result
                hit = bool(meta.get("cache_hit"))
                elapsed = float(meta.get("elapsed", 0.0))  # type: ignore[arg-type]
                stats["busy"] += elapsed
                if self.cache is not None:
                    # Fold the worker-side cache traffic back into the
                    # parent's counters; without this, hits and stores
                    # observed inside the pool were silently dropped.
                    if hit:
                        stats["hits"] += 1
                        self.cache.hits += 1
                    else:
                        stats["misses"] += 1
                        self.cache.misses += 1
                    if meta.get("stored"):
                        stats["stores"] += 1
                        self.cache.stores += 1
                    evicted = int(meta.get("evictions") or 0)  # type: ignore[arg-type]
                    if evicted:
                        stats["evictions"] += evicted
                        self.cache.evictions += evicted
                rstats["faults"] += len(meta.get("faults") or ())  # type: ignore[operator]
                config_name = cell.config.name or cell.config.mode
                if tracer is not None:
                    tid = worker_tids.setdefault(meta.get("pid"), len(worker_tids) + 1)
                    start = base + worker_offsets.get(tid, 0.0)
                    worker_offsets[tid] = worker_offsets.get(tid, 0.0) + elapsed
                    tracer.add_span(
                        f"cell:{config_name}x{cell.workload}",
                        start,
                        elapsed,
                        category="cell",
                        tid=tid,
                        workload=cell.workload,
                        cached=hit,
                    )
                done_box["done"] += 1
                self._journal_append(
                    {
                        "event": "cell-done",
                        "index": index,
                        "key": keys[index],
                        "workload": cell.workload,
                        "config": config_name,
                        "source": "cache" if hit else "simulated",
                    }
                )
                source = "cache hit (worker)" if hit else f"simulated ipc={result.ipc:.4f}"
                self._report(done_box["done"], len(cells), cell, source)
                if self.injector is not None and not info.get("drained"):
                    self.injector.sigint_point(f"collect:{done_box['done']}")
            elif kind == "task-error":
                cell = by_index[info["task_id"]]
                self._journal_append(
                    {
                        "event": "cell-failed",
                        "index": cell.index,
                        "key": keys[cell.index],
                        "attempt": info["attempt"],
                        "error": info["error"],
                    }
                )
            elif kind == "quarantine":
                cell = by_index[info["task_id"]]
                self._quarantine_cell(
                    cell,
                    keys[cell.index],
                    int(info["attempts"]),
                    list(info["errors"]),
                    rstats,
                )
                self._report(
                    done_box["done"],
                    len(cells),
                    cell,
                    f"quarantined after {info['attempts']} attempt(s)",
                )
            elif kind == "worker-death" and self.progress is not None:
                self.progress(
                    f"worker pid {info.get('pid')} died "
                    f"({info.get('deaths')} death(s) so far); respawning"
                )
            elif kind == "degrade" and self.progress is not None:
                self.progress(
                    f"pool kept dying; finishing {info.get('remaining')} "
                    "cell(s) serially in-parent"
                )

        pool = ResilientPool(
            _cell_with_attempt,
            workers,
            cell_timeout=self.cell_timeout,
            retry=self.retry,
            max_worker_deaths=self.max_worker_deaths,
            on_event=on_event,
        )
        pool_started = time.perf_counter()
        pool_outcome = pool.run(tasks, chunksize=chunksize)
        pool_elapsed = time.perf_counter() - pool_started
        rstats["retries"] += pool_outcome.retries  # type: ignore[operator]
        rstats["timeouts"] += pool_outcome.timeouts  # type: ignore[operator]
        rstats["worker_deaths"] += pool_outcome.worker_deaths  # type: ignore[operator]
        rstats["degraded"] = bool(rstats["degraded"]) or pool_outcome.degraded
        if self.telemetry is not None and workers > 0 and pool_elapsed > 0:
            metrics = self.telemetry.metrics
            metrics.gauge("sweep.workers").set(float(workers))
            metrics.gauge("sweep.worker_utilization").set(
                round(stats["busy"] / (pool_elapsed * workers), 4)
            )
            for elapsed_cell in worker_offsets.values():
                metrics.histogram("sweep.worker_busy_ms").observe(
                    int(elapsed_cell * 1000)
                )
        return stats

    def _apply_resume(
        self,
        cells: Sequence[SweepCell],
        slots: Sequence[Optional[SimulationResult]],
        keys: Sequence[str],
    ) -> int:
        """Count cells recovered via the resume journal.

        A journaled cell is *expected* in the result cache (the journal
        records intent, the cache holds the bits); one that went missing
        from the cache is simply re-simulated, so resume verification is
        the intersection of journaled keys with this spec's keys — a
        journal from a different sweep can never skip anything.
        """
        if not self.resume or self.journal is None or not self.journal.exists():
            return 0
        completed = self.journal.completed_keys()
        if not completed:
            return 0
        return sum(
            1
            for cell in cells
            if keys[cell.index]
            and keys[cell.index] in completed
            and slots[cell.index] is not None
        )

    # -- public API ---------------------------------------------------------
    def run(self, spec: SweepSpec) -> SweepOutcome:
        """Execute every cell of ``spec``; results in declared order.

        Quarantined cells leave ``None`` holes and are itemized in
        :attr:`SweepOutcome.failed_cells` — a partial sweep returns, it
        does not raise.  Interruption (Ctrl-C or the injected SIGINT
        site) raises :class:`SweepInterrupted` after journaling the
        completed/pending tally.
        """
        start = time.perf_counter()
        cells = spec.cells()
        rstats: Dict[str, object] = {
            "retries": 0,
            "timeouts": 0,
            "worker_deaths": 0,
            "degraded": False,
            "failed": [],
            "faults": 0,
        }
        with self._span(
            f"sweep:{spec.name}", category="sweep", cells=len(cells), jobs=self.jobs
        ):
            with self._span("cache:lookup", category="cache", cells=len(cells)):
                slots, keys = self._load_cached(cells, spec)
            resumed = self._apply_resume(cells, slots, keys)
            if self.journal is not None:
                if resumed:
                    self._journal_append(
                        {"event": "sweep-resume", "sweep": spec.name, "completed": resumed}
                    )
                else:
                    digest = hashlib.sha256("".join(keys).encode("utf-8")).hexdigest()
                    self._journal_append(
                        {
                            "event": "sweep-start",
                            "sweep": spec.name,
                            "suite": spec.suite,
                            "scale": round(float(spec.scale), 9),
                            "cells": len(cells),
                            "keys_digest": digest,
                        }
                    )
            cached = 0
            for cell in cells:
                if slots[cell.index] is not None:
                    cached += 1
                    self._report(cached, len(cells), cell, "cache hit")
                    config_name = cell.config.name or cell.config.mode
                    self._journal_append(
                        {
                            "event": "cell-done",
                            "index": cell.index,
                            "key": keys[cell.index],
                            "workload": cell.workload,
                            "config": config_name,
                            "source": "cache",
                        }
                    )
            worker_stats = {
                "hits": 0.0,
                "misses": 0.0,
                "stores": 0.0,
                "busy": 0.0,
                "evictions": 0.0,
            }
            evictions_before = self.cache.evictions if self.cache is not None else 0
            try:
                if cached < len(cells):
                    if self.jobs > 1:
                        worker_stats = self._run_parallel(spec, cells, slots, keys, rstats)
                    else:
                        self._run_serial(spec, cells, slots, keys, rstats)
            except KeyboardInterrupt:
                completed = sum(1 for slot in slots if slot is not None)
                pending = len(cells) - completed
                self._journal_append(
                    {
                        "event": "sweep-interrupted",
                        "completed": completed,
                        "pending": pending,
                    }
                )
                raise SweepInterrupted(
                    completed,
                    pending,
                    journal=self.journal.path if self.journal is not None else None,
                ) from None
        failed = list(rstats["failed"])  # type: ignore[call-overload]
        failed_indexes = {int(entry["index"]) for entry in failed}
        lost = [
            cell.index
            for cell in cells
            if slots[cell.index] is None and cell.index not in failed_indexes
        ]
        if lost:  # pragma: no cover - defensive
            raise RuntimeError(f"sweep {spec.name!r} lost {len(lost)} cells")
        worker_hits = int(worker_stats["hits"])
        cached += worker_hits
        simulated = len(cells) - cached - len(failed_indexes)
        self.total_simulated += simulated
        self.total_cached += cached
        cache_hits = cached if self.cache is not None else 0
        cache_misses = (
            len(cells) - cache_hits if self.cache is not None else 0
        )
        cache_evictions = (
            self.cache.evictions - evictions_before if self.cache is not None else 0
        )
        fault_count = int(rstats["faults"])  # type: ignore[arg-type]
        if self.injector is not None:
            fault_count += len(self.injector.fired)
        if self.telemetry is not None:
            metrics = self.telemetry.metrics
            metrics.counter("sweep.cells_simulated").add(simulated)
            metrics.counter("sweep.cells_cached").add(cached)
            if self.cache is not None:
                metrics.counter("cache.hits").add(cache_hits)
                metrics.counter("cache.misses").add(cache_misses)
                if cache_evictions:
                    metrics.counter("cache.evictions").add(cache_evictions)
            # Robustness counters appear only when the machinery engaged,
            # so fault-free telemetry output is byte-identical.
            if rstats["retries"]:
                metrics.counter("sweep.retries").add(int(rstats["retries"]))  # type: ignore[arg-type]
            if failed:
                metrics.counter("sweep.quarantined_cells").add(len(failed))
            if rstats["worker_deaths"]:
                metrics.counter("sweep.worker_deaths").add(int(rstats["worker_deaths"]))  # type: ignore[arg-type]
            if rstats["timeouts"]:
                metrics.counter("sweep.watchdog_timeouts").add(int(rstats["timeouts"]))  # type: ignore[arg-type]
            if fault_count:
                metrics.counter("faults.injected").add(fault_count)
        self._journal_append(
            {
                "event": "sweep-end",
                "sweep": spec.name,
                "simulated": simulated,
                "cached": cached,
                "quarantined": len(failed),
            }
        )
        return SweepOutcome(
            spec=spec,
            results=list(slots),
            simulated=simulated,
            cached=cached,
            elapsed=time.perf_counter() - start,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            cache_evictions=cache_evictions,
            worker_busy=worker_stats["busy"],
            failed_cells=failed,
            retries=int(rstats["retries"]),  # type: ignore[arg-type]
            resumed=resumed,
            worker_deaths=int(rstats["worker_deaths"]),  # type: ignore[arg-type]
            timeouts=int(rstats["timeouts"]),  # type: ignore[arg-type]
            degraded=bool(rstats["degraded"]),
        )

    def run_config(
        self, config: ProcessorConfig, spec: SweepSpec
    ) -> Dict[str, SimulationResult]:
        """Convenience: run ``spec`` and return one config's results."""
        return self.run(spec).config_results(config)


def ensure_engine(engine: Optional[SweepEngine]) -> SweepEngine:
    """Default serial, uncached engine when a figure is called without one."""
    return engine if engine is not None else SweepEngine()
