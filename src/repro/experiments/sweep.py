"""Parallel sweep engine with a persistent on-disk result cache.

Every figure of the paper is an embarrassingly parallel grid of
``(ProcessorConfig, workload)`` cells: each cell is one independent
simulation whose result depends only on the configuration, the trace
generator, and the suite scale.  This module turns that observation into
infrastructure:

:class:`SweepSpec`
    A declarative description of a grid — an ordered list of
    configurations crossed with the workloads of a suite at a scale.

:class:`SweepEngine`
    Executes a spec either serially (``jobs=1``, bit-identical to the
    pre-engine per-figure loops) or on a ``multiprocessing`` pool with a
    configurable worker count.  Results always come back in declared
    cell order regardless of which worker finished first.

:class:`ResultCache`
    A persistent cache of finished cells, keyed by a stable content hash
    of (config, suite, workload, scale, simulator version).  Re-running
    a figure only simulates the cells whose inputs changed; everything
    else is loaded from disk.  Corrupt entries are detected, deleted and
    transparently re-simulated.

Usage::

    from repro.experiments.sweep import ResultCache, SweepEngine, SweepSpec

    spec = SweepSpec("demo", [scaled_baseline(window=128)], scale=0.3)
    engine = SweepEngine(jobs=4, cache=ResultCache("~/.cache/repro/sweeps"))
    outcome = engine.run(spec)
    for config, results in outcome.per_config():
        print(config.name, {w: r.ipc for w, r in results.items()})
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..telemetry import TelemetrySession

from ..api import Simulation
from ..common.config import ProcessorConfig, SamplingPlan
from ..core.result import SimulationResult
from ..trace.trace import Trace
from ..workloads.registry import get_suite
from .runner import DEFAULT_SCALE, suite_traces

#: Bumped whenever the cache file layout (not the simulator) changes.
CACHE_SCHEMA_VERSION = 1


def current_simulator_version() -> str:
    """``repro.__version__``, read at call time.

    Key building and version stamping must see the *current* value, not
    one bound at import: a version bump between imports (tests monkeypatch
    it; long-lived processes may reload config) has to invalidate keys
    immediately.
    """
    import repro

    return repro.__version__

#: Type of the optional per-cell progress callback.
ProgressFn = Callable[[str], None]


def default_cache_dir() -> Path:
    """Default location of the persistent result cache.

    ``REPRO_CACHE_DIR`` overrides it; otherwise results live under the
    user's cache directory so repeated figure regenerations share work.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "sweeps"


# ---------------------------------------------------------------------------
# Spec: the declarative grid
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepCell:
    """One unit of work: simulate ``config`` over ``workload``'s trace."""

    index: int
    config: ProcessorConfig
    workload: str


@dataclass
class SweepSpec:
    """A declarative (config x workload) grid at one suite scale.

    ``configs`` order is preserved everywhere: cells enumerate
    config-major (all workloads of the first config, then the second...),
    matching how the figure modules assemble their result rows.
    """

    name: str
    configs: Sequence[ProcessorConfig]
    scale: float = DEFAULT_SCALE
    suite: str = "spec2000fp_like"
    workloads: Optional[Sequence[str]] = None
    #: Optional statistical-sampling plan applied to every cell; part of
    #: each cell's cache key, so sampled results never shadow exact ones.
    sampling: Optional[SamplingPlan] = None

    def workload_names(self) -> List[str]:
        """Resolved workload list (the whole suite unless filtered)."""
        names = get_suite(self.suite).names()
        if self.workloads is None:
            return names
        unknown = [w for w in self.workloads if w not in names]
        if unknown:
            raise KeyError(
                f"unknown workloads {unknown} for suite {self.suite!r}; members: {names}"
            )
        return list(self.workloads)

    def cells(self) -> List[SweepCell]:
        """Enumerate the grid in deterministic config-major order."""
        out: List[SweepCell] = []
        workloads = self.workload_names()
        for config in self.configs:
            for workload in workloads:
                out.append(SweepCell(len(out), config, workload))
        return out

    def __len__(self) -> int:
        return len(self.configs) * len(self.workload_names())


# ---------------------------------------------------------------------------
# Persistent result cache
# ---------------------------------------------------------------------------


def cell_cache_key(
    config: ProcessorConfig,
    suite: str,
    workload: str,
    scale: float,
    simulator_version: Optional[str] = None,
    sampling: Optional[SamplingPlan] = None,
) -> str:
    """Stable content hash identifying one simulation cell.

    Any change to the configuration, the trace generator identity
    (suite + workload name), the scale, the sampling plan, or the
    simulator version yields a different key, so stale results can never
    be returned.  Workload and suite names come from the registry
    (:mod:`repro.workloads.registry`); registering new ones never
    perturbs existing keys, but a registered *name* must keep generating
    the same trace — change the behaviour, change the name (or bump
    ``repro.__version__``).  The ``sampling`` component is only added to
    the payload when a plan is set, so every pre-sampling cache key is
    byte-for-byte unchanged.
    """
    payload = {
        "config": config.to_dict(),
        "suite": suite,
        "workload": workload,
        "scale": round(float(scale), 9),
        "simulator_version": (
            simulator_version
            if simulator_version is not None
            else current_simulator_version()
        ),
        "cache_schema": CACHE_SCHEMA_VERSION,
    }
    if sampling is not None:
        payload["sampling"] = sampling.to_dict()
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk store of finished cells, one JSON file per cache key.

    Writes are atomic (temp file + ``os.replace``) so a crashed or
    concurrent run can never leave a half-written entry in place; reads
    treat any unreadable/inconsistent file as corrupt, delete it, and
    report a miss so the engine re-simulates the cell.
    """

    def __init__(self, cache_dir: os.PathLike) -> None:
        self.cache_dir = Path(cache_dir).expanduser()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def path_for(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def load(self, key: str) -> Optional[SimulationResult]:
        """Cached result for ``key``, or None on a miss or corrupt entry."""
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("key") != key:
                raise ValueError("cache entry key mismatch")
            result = SimulationResult.from_dict(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            # Everything a truncated, hand-edited or wrong-shaped JSON file
            # can throw — including AttributeError when the top-level value
            # is valid JSON but not an object — counts as a corrupt entry:
            # remove it and report a miss so the cell is re-simulated.
            self.corrupt += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def store(self, key: str, result: SimulationResult) -> None:
        """Atomically persist ``result`` under ``key``."""
        payload = {
            "key": key,
            "simulator_version": current_simulator_version(),
            "cache_schema": CACHE_SCHEMA_VERSION,
            "result": result.to_dict(),
        }
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        self.stores += 1

    def clear(self) -> int:
        """Delete every cache entry (and orphaned temp files); returns the
        number of entries removed."""
        removed = 0
        for path in self.cache_dir.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        # Temp files orphaned by a crash between write and os.replace.
        for path in self.cache_dir.glob("*.tmp.*"):
            try:
                path.unlink()
            except OSError:
                pass
        return removed


# ---------------------------------------------------------------------------
# Worker-side execution
# ---------------------------------------------------------------------------

#: Per-worker-process trace cache: (suite, rounded scale) -> workload -> Trace.
_WORKER_TRACES: Dict[Tuple[str, float], Dict[str, Trace]] = {}

#: Per-worker-process handle on the persistent result cache (keyed by
#: directory so a pool serving several engines keeps them distinct).
_WORKER_CACHES: Dict[str, ResultCache] = {}

#: Traces actually generated by this process's :func:`_worker_trace` (cache
#: misses only).  Tests use it to assert that workload-major task ordering
#: lets the per-worker cache hit instead of rebuilding every trace.
TRACE_BUILDS = 0


def _worker_trace(suite: str, scale: float, workload: str) -> Trace:
    """Build (and cache per process) one workload's trace.

    Trace generation is deterministic (fixed seeds), so a trace built in
    a worker is identical to one built in the parent.
    """
    global TRACE_BUILDS
    key = (suite, round(scale, 6))
    per_suite = _WORKER_TRACES.setdefault(key, {})
    if workload not in per_suite:
        for member in get_suite(suite):
            if member.name == workload:
                per_suite[workload] = member.build(scale)
                TRACE_BUILDS += 1
                break
        else:
            raise KeyError(f"unknown workload {workload!r} in suite {suite!r}")
    return per_suite[workload]


def _worker_cache(cache_dir: str) -> ResultCache:
    """Per-process handle on the persistent cache at ``cache_dir``.

    Workers keep their own :class:`ResultCache` instance (with its own
    hit/miss counters) because cache objects don't travel across
    ``fork``/``spawn`` usefully — the parent aggregates the per-cell
    counter deltas reported back in each task's meta dict.
    """
    if cache_dir not in _WORKER_CACHES:
        _WORKER_CACHES[cache_dir] = ResultCache(cache_dir)
    return _WORKER_CACHES[cache_dir]


def _simulate_cell(
    task: Tuple[object, ...]
) -> Tuple[SimulationResult, Dict[str, object]]:
    """Pool worker entry point: rebuild the config, build the trace, run.

    ``task`` is ``(config_data, suite, scale, workload, sampling_data)``
    optionally extended with ``(cache_dir, cache_key)``.  When the cache
    fields are present the worker checks the persistent cache itself
    (another process may have finished the cell since the parent's
    lookup) and stores fresh results — keeping the store off the
    parent's collection loop.  Returns ``(result, meta)`` where ``meta``
    reports the worker's pid, per-cell wall-clock, and whether the cell
    was a worker-side cache hit, so the parent can aggregate cache
    counters and reconstruct per-worker utilization.
    """
    config_data, suite, scale, workload, sampling_data = task[:5]
    cache_dir = str(task[5]) if len(task) > 5 and task[5] else None
    cache_key = str(task[6]) if len(task) > 6 and task[6] else None
    started = time.perf_counter()
    cache = _worker_cache(cache_dir) if cache_dir and cache_key else None
    result: Optional[SimulationResult] = None
    cache_hit = False
    if cache is not None and cache_key is not None:
        result = cache.load(cache_key)
        cache_hit = result is not None
    if result is None:
        config = ProcessorConfig.from_dict(config_data)  # type: ignore[arg-type]
        sampling = SamplingPlan.from_dict(sampling_data) if sampling_data else None
        trace = _worker_trace(suite, scale, workload)
        result = Simulation(config, sampling=sampling).run(trace)
        if cache is not None and cache_key is not None:
            cache.store(cache_key, result)
    meta: Dict[str, object] = {
        "pid": os.getpid(),
        "elapsed": time.perf_counter() - started,
        "cache_hit": cache_hit,
        "stored": cache is not None and not cache_hit,
    }
    return result, meta


def _workload_major(
    cells: Sequence[SweepCell],
    slots: Sequence[Optional[SimulationResult]],
    spec: SweepSpec,
) -> List[SweepCell]:
    """Pending cells reordered workload-major for worker trace locality.

    Specs enumerate config-major, which hands a round-robin pool one
    cell of *every* workload — each worker then rebuilds each trace
    instead of hitting its per-process ``_WORKER_TRACES`` cache.
    Grouping all configs of one workload together (stable, so config
    order within a workload is preserved) makes consecutive tasks share
    a trace; results still land in declared order via ``cell.index``.
    """
    order = {name: rank for rank, name in enumerate(spec.workload_names())}
    pending = [cell for cell in cells if slots[cell.index] is None]
    pending.sort(key=lambda cell: order.get(cell.workload, len(order)))
    return pending


def _locality_chunksize(pending: Sequence[SweepCell], workers: int) -> int:
    """An ``imap`` chunk size that keeps one workload's run on one worker.

    A chunk should cover several same-workload cells (so the worker's
    trace cache pays off) but never much more than one workload's run
    (so the tail doesn't serialize on one worker).
    """
    if not pending or workers < 1:
        return 1
    per_workload = len(pending) // max(1, len({cell.workload for cell in pending}))
    fair_share = -(-len(pending) // workers)  # ceil division
    return max(1, min(per_workload, fair_share))


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


@dataclass
class SweepOutcome:
    """Results of one executed spec, in declared cell order."""

    spec: SweepSpec
    results: List[SimulationResult]
    simulated: int = 0
    cached: int = 0
    elapsed: float = 0.0
    #: Persistent-cache traffic across the whole sweep, parent lookups
    #: *plus* worker-side lookups (which used to be silently dropped).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Sum of per-cell worker wall-clock (parallel runs only); divided by
    #: ``elapsed * workers`` this is the pool utilization.
    worker_busy: float = 0.0
    _by_config: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._by_config:
            workloads = self.spec.workload_names()
            for i, config in enumerate(self.spec.configs):
                block = self.results[i * len(workloads) : (i + 1) * len(workloads)]
                self._by_config[config.stable_hash()] = dict(zip(workloads, block))

    def config_results(self, config: ProcessorConfig) -> Dict[str, SimulationResult]:
        """Per-workload results of one configuration of the spec."""
        try:
            return self._by_config[config.stable_hash()]
        except KeyError as exc:
            raise KeyError(
                f"config {config.name or config.mode!r} is not part of sweep "
                f"{self.spec.name!r}"
            ) from exc

    def per_config(self) -> Iterator[Tuple[ProcessorConfig, Dict[str, SimulationResult]]]:
        """Iterate (config, per-workload results) in declared order."""
        for config in self.spec.configs:
            yield config, self.config_results(config)


class SweepEngine:
    """Executes :class:`SweepSpec`s, optionally in parallel and cached.

    Every cell executes through :class:`repro.api.Simulation` (the
    unified facade).  ``jobs=1`` runs in-process with the same trace
    cache and per-config reuse as the original figure loops, so its
    output is bit-identical to the pre-engine implementation.  ``jobs>1`` fans the
    uncached cells out over a process pool; because the simulator is
    deterministic pure Python, parallel results equal serial ones.
    ``jobs=None`` uses every available CPU.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressFn] = None,
        telemetry: Optional["TelemetrySession"] = None,
    ) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.telemetry = telemetry
        # Cumulative counters across every run() of this engine.
        self.total_simulated = 0
        self.total_cached = 0

    def _span(self, name: str, *, category: str, **args: object):
        """A tracer span when telemetry is attached, else a no-op scope."""
        if self.telemetry is None:
            return nullcontext()
        return self.telemetry.tracer.span(name, category=category, **args)

    # -- internals ----------------------------------------------------------
    def _report(self, done: int, total: int, cell: SweepCell, source: str) -> None:
        if self.progress is not None:
            config_name = cell.config.name or cell.config.mode
            self.progress(f"[{done}/{total}] {config_name} x {cell.workload}: {source}")

    def _load_cached(
        self, cells: Sequence[SweepCell], spec: SweepSpec
    ) -> Tuple[List[Optional[SimulationResult]], List[str]]:
        """Fill cache hits; returns (slots, per-cell cache keys)."""
        slots: List[Optional[SimulationResult]] = [None] * len(cells)
        if self.cache is None:
            return slots, [""] * len(cells)
        keys: List[str] = []
        for cell in cells:
            key = cell_cache_key(
                cell.config, spec.suite, cell.workload, spec.scale, sampling=spec.sampling
            )
            keys.append(key)
            slots[cell.index] = self.cache.load(key)
        return slots, keys

    def _run_serial(
        self,
        spec: SweepSpec,
        cells: Sequence[SweepCell],
        slots: List[Optional[SimulationResult]],
        keys: Sequence[str],
    ) -> None:
        with self._span("sweep:trace-build", category="sweep", suite=spec.suite):
            traces = suite_traces(spec.scale, spec.suite, spec.workloads)
        done = sum(1 for slot in slots if slot is not None)
        simulation: Optional[Simulation] = None
        simulation_config: Optional[ProcessorConfig] = None
        for cell in cells:
            if slots[cell.index] is not None:
                continue
            if simulation is None or simulation_config is not cell.config:
                simulation = Simulation(cell.config, sampling=spec.sampling)
                simulation_config = cell.config
            config_name = cell.config.name or cell.config.mode
            with self._span(
                f"cell:{config_name}x{cell.workload}",
                category="cell",
                workload=cell.workload,
            ):
                result = simulation.run(traces[cell.workload])
            slots[cell.index] = result
            if self.cache is not None:
                self.cache.store(keys[cell.index], result)
            done += 1
            self._report(done, len(cells), cell, f"simulated ipc={result.ipc:.4f}")

    def _run_parallel(
        self,
        spec: SweepSpec,
        cells: Sequence[SweepCell],
        slots: List[Optional[SimulationResult]],
        keys: Sequence[str],
    ) -> Dict[str, float]:
        pending = _workload_major(cells, slots, spec)
        sampling_data = spec.sampling.to_dict() if spec.sampling is not None else None
        cache_dir = str(self.cache.cache_dir) if self.cache is not None else None
        tasks = [
            (
                cell.config.to_dict(),
                spec.suite,
                spec.scale,
                cell.workload,
                sampling_data,
                cache_dir,
                keys[cell.index] if cache_dir is not None else None,
            )
            for cell in pending
        ]
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context("spawn")
        workers = min(self.jobs, len(pending))
        done = sum(1 for slot in slots if slot is not None)
        chunksize = _locality_chunksize(pending, workers)
        stats = {"hits": 0.0, "misses": 0.0, "stores": 0.0, "busy": 0.0}
        tracer = self.telemetry.tracer if self.telemetry is not None else None
        base = tracer.clock.now() if tracer is not None else 0.0
        worker_tids: Dict[object, int] = {}
        worker_offsets: Dict[int, float] = {}
        pool_started = time.perf_counter()
        with context.Pool(processes=workers) as pool:
            for cell, (result, meta) in zip(
                pending, pool.imap(_simulate_cell, tasks, chunksize=chunksize)
            ):
                slots[cell.index] = result
                hit = bool(meta.get("cache_hit"))
                elapsed = float(meta.get("elapsed", 0.0))  # type: ignore[arg-type]
                stats["busy"] += elapsed
                if self.cache is not None:
                    # Fold the worker-side cache traffic back into the
                    # parent's counters; without this, hits and stores
                    # observed inside the pool were silently dropped.
                    if hit:
                        stats["hits"] += 1
                        self.cache.hits += 1
                    else:
                        stats["misses"] += 1
                        self.cache.misses += 1
                    if meta.get("stored"):
                        stats["stores"] += 1
                        self.cache.stores += 1
                if tracer is not None:
                    tid = worker_tids.setdefault(meta.get("pid"), len(worker_tids) + 1)
                    start = base + worker_offsets.get(tid, 0.0)
                    worker_offsets[tid] = worker_offsets.get(tid, 0.0) + elapsed
                    config_name = cell.config.name or cell.config.mode
                    tracer.add_span(
                        f"cell:{config_name}x{cell.workload}",
                        start,
                        elapsed,
                        category="cell",
                        tid=tid,
                        workload=cell.workload,
                        cached=hit,
                    )
                done += 1
                source = "cache hit (worker)" if hit else f"simulated ipc={result.ipc:.4f}"
                self._report(done, len(cells), cell, source)
        pool_elapsed = time.perf_counter() - pool_started
        if self.telemetry is not None and workers > 0 and pool_elapsed > 0:
            metrics = self.telemetry.metrics
            metrics.gauge("sweep.workers").set(float(workers))
            metrics.gauge("sweep.worker_utilization").set(
                round(stats["busy"] / (pool_elapsed * workers), 4)
            )
            for elapsed_cell in worker_offsets.values():
                metrics.histogram("sweep.worker_busy_ms").observe(
                    int(elapsed_cell * 1000)
                )
        return stats

    # -- public API ---------------------------------------------------------
    def run(self, spec: SweepSpec) -> SweepOutcome:
        """Execute every cell of ``spec``; results in declared order."""
        start = time.perf_counter()
        cells = spec.cells()
        with self._span(
            f"sweep:{spec.name}", category="sweep", cells=len(cells), jobs=self.jobs
        ):
            with self._span("cache:lookup", category="cache", cells=len(cells)):
                slots, keys = self._load_cached(cells, spec)
            cached = 0
            for cell in cells:
                if slots[cell.index] is not None:
                    cached += 1
                    self._report(cached, len(cells), cell, "cache hit")
            worker_stats = {"hits": 0.0, "misses": 0.0, "stores": 0.0, "busy": 0.0}
            if cached < len(cells):
                if self.jobs > 1:
                    worker_stats = self._run_parallel(spec, cells, slots, keys)
                else:
                    self._run_serial(spec, cells, slots, keys)
        results = [slot for slot in slots if slot is not None]
        if len(results) != len(cells):  # pragma: no cover - defensive
            raise RuntimeError(f"sweep {spec.name!r} lost {len(cells) - len(results)} cells")
        worker_hits = int(worker_stats["hits"])
        cached += worker_hits
        simulated = len(cells) - cached
        self.total_simulated += simulated
        self.total_cached += cached
        cache_hits = cached if self.cache is not None else 0
        cache_misses = (
            len(cells) - cache_hits if self.cache is not None else 0
        )
        if self.telemetry is not None:
            metrics = self.telemetry.metrics
            metrics.counter("sweep.cells_simulated").add(simulated)
            metrics.counter("sweep.cells_cached").add(cached)
            if self.cache is not None:
                metrics.counter("cache.hits").add(cache_hits)
                metrics.counter("cache.misses").add(cache_misses)
        return SweepOutcome(
            spec=spec,
            results=results,
            simulated=simulated,
            cached=cached,
            elapsed=time.perf_counter() - start,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            worker_busy=worker_stats["busy"],
        )

    def run_config(
        self, config: ProcessorConfig, spec: SweepSpec
    ) -> Dict[str, SimulationResult]:
        """Convenience: run ``spec`` and return one config's results."""
        return self.run(spec).config_results(config)


def ensure_engine(engine: Optional[SweepEngine]) -> SweepEngine:
    """Default serial, uncached engine when a figure is called without one."""
    return engine if engine is not None else SweepEngine()
