"""Figure 10 — sensitivity to the SLIQ re-insertion delay.

The paper varies the number of cycles between a long-latency load
completing and its dependents starting to flow back from the SLIQ into the
issue queue (1, 4, 8, 12 cycles) with a 1024-entry SLIQ and 32/64/128
entry issue queues, and finds the machine essentially insensitive (a
12-cycle delay costs about 1%).  That insensitivity is what makes a slow,
RAM-like SLIQ implementable.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..common.config import cooo_config
from .runner import DEFAULT_SCALE, ExperimentResult, suite_ipc
from .sweep import SweepEngine, SweepSpec, ensure_engine

FULL_DELAYS = (1, 4, 8, 12)
FULL_IQ_SIZES = (32, 64, 128)
QUICK_DELAYS = (1, 12)
QUICK_IQ_SIZES = (32, 128)


def figure10_spec(
    scale: float = DEFAULT_SCALE,
    sliq_size: int = 1024,
    memory_latency: int = 1000,
    iq_sizes: Sequence[int] = QUICK_IQ_SIZES,
    delays: Sequence[int] = QUICK_DELAYS,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
) -> SweepSpec:
    """Declare the Figure 10 grid, iq-major to match the row order."""
    configs = [
        cooo_config(
            iq_size=iq_size,
            sliq_size=sliq_size,
            memory_latency=memory_latency,
            reinsert_delay=delay,
        )
        for iq_size in iq_sizes
        for delay in delays
    ]
    return SweepSpec("figure10", configs, scale=scale, suite=suite, workloads=workloads)


def run_figure10(
    scale: float = DEFAULT_SCALE,
    sliq_size: int = 1024,
    memory_latency: int = 1000,
    iq_sizes: Optional[Sequence[int]] = None,
    delays: Optional[Sequence[int]] = None,
    quick: bool = True,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
    engine: Optional[SweepEngine] = None,
) -> ExperimentResult:
    """Regenerate the Figure 10 sensitivity sweep."""
    iq_sizes = tuple(iq_sizes) if iq_sizes is not None else (QUICK_IQ_SIZES if quick else FULL_IQ_SIZES)
    delays = tuple(delays) if delays is not None else (QUICK_DELAYS if quick else FULL_DELAYS)
    spec = figure10_spec(scale, sliq_size, memory_latency, iq_sizes, delays, workloads, suite=suite)
    outcome = ensure_engine(engine).run(spec)
    experiment = ExperimentResult(
        "figure10",
        f"sensitivity to SLIQ re-insertion delay (SLIQ {sliq_size})",
    )
    config_iter = iter(spec.configs)
    for iq_size in iq_sizes:
        reference_ipc = None
        for delay in delays:
            results = outcome.config_results(next(config_iter))
            ipc = suite_ipc(results)
            if reference_ipc is None:
                reference_ipc = ipc
            experiment.row(
                iq=iq_size,
                delay=delay,
                ipc=round(ipc, 4),
                slowdown_vs_fastest=round(1.0 - ipc / reference_ipc, 4) if reference_ipc else 0.0,
            )
    experiment.notes.append(
        "paper shape: even a 12-cycle re-insertion delay costs only a few percent"
    )
    return experiment
