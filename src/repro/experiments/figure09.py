"""Figure 9 — main performance result of the paper.

IPC of the Commit Out-of-Order machine for issue queues of 32/64/128
entries and SLIQs of 512/1024/2048 entries (8 checkpoints everywhere),
compared against two baseline reference lines: a buildable 128-entry
machine and an unbuildable 4096-entry machine.

The paper's headline numbers: the largest COoO configuration is within
~10% of the 4096-entry baseline and ~3x (a 204% improvement over) the
128-entry baseline; even the smallest one beats the 128-entry baseline by
~110%.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..common.config import cooo_config, scaled_baseline
from .runner import DEFAULT_SCALE, ExperimentResult, suite_ipc
from .sweep import SweepEngine, SweepSpec, ensure_engine

#: The nine (issue queue, SLIQ) combinations of the paper's bar groups.
FULL_GRID: Tuple[Tuple[int, int], ...] = tuple(
    (iq, sliq) for sliq in (512, 1024, 2048) for iq in (32, 64, 128)
)
#: The diagonal used by the quick benchmark run.
QUICK_GRID: Tuple[Tuple[int, int], ...] = ((32, 512), (64, 1024), (128, 2048))

BASELINE_WINDOWS = (128, 4096)


def figure09_spec(
    scale: float = DEFAULT_SCALE,
    memory_latency: int = 1000,
    checkpoints: int = 8,
    grid: Optional[Sequence[Tuple[int, int]]] = None,
    quick: bool = True,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
) -> SweepSpec:
    """Declare the Figure 9 grid: two baselines, then every COoO point."""
    points = tuple(grid) if grid is not None else (QUICK_GRID if quick else FULL_GRID)
    configs = [
        scaled_baseline(window=window, memory_latency=memory_latency)
        for window in BASELINE_WINDOWS
    ]
    configs += [
        cooo_config(
            iq_size=iq_size,
            sliq_size=sliq_size,
            checkpoints=checkpoints,
            memory_latency=memory_latency,
        )
        for iq_size, sliq_size in points
    ]
    return SweepSpec("figure09", configs, scale=scale, suite=suite, workloads=workloads)


def run_figure09(
    scale: float = DEFAULT_SCALE,
    memory_latency: int = 1000,
    checkpoints: int = 8,
    grid: Optional[Sequence[Tuple[int, int]]] = None,
    quick: bool = True,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
    engine: Optional[SweepEngine] = None,
) -> ExperimentResult:
    """Regenerate the Figure 9 comparison.

    Rows: one per COoO (iq, sliq) point plus the two baseline reference
    lines, each with the suite-average IPC and its ratio to both baselines.
    """
    points = tuple(grid) if grid is not None else (QUICK_GRID if quick else FULL_GRID)
    spec = figure09_spec(scale, memory_latency, checkpoints, points, quick, workloads, suite=suite)
    outcome = ensure_engine(engine).run(spec)
    baseline_configs = spec.configs[: len(BASELINE_WINDOWS)]
    cooo_configs = spec.configs[len(BASELINE_WINDOWS) :]
    experiment = ExperimentResult(
        "figure09",
        "main result: COoO (8 checkpoints) vs. 128- and 4096-entry baselines",
    )

    baseline_ipc = {}
    for window, config in zip(BASELINE_WINDOWS, baseline_configs):
        results = outcome.config_results(config)
        baseline_ipc[window] = suite_ipc(results)
        experiment.row(
            config=f"baseline-{window}",
            iq=window,
            sliq=0,
            ipc=round(baseline_ipc[window], 4),
            vs_baseline128=1.0 if window == 128 else round(baseline_ipc[window] / baseline_ipc[128], 3),
            vs_limit=round(baseline_ipc[window] / baseline_ipc.get(4096, baseline_ipc[window]), 3)
            if 4096 in baseline_ipc
            else 1.0,
        )

    for (iq_size, sliq_size), config in zip(points, cooo_configs):
        results = outcome.config_results(config)
        ipc = suite_ipc(results)
        experiment.row(
            config=f"COoO-{iq_size}/SLIQ-{sliq_size}",
            iq=iq_size,
            sliq=sliq_size,
            ipc=round(ipc, 4),
            vs_baseline128=round(ipc / baseline_ipc[128], 3),
            vs_limit=round(ipc / baseline_ipc[4096], 3),
        )
        for name, result in results.items():
            experiment.per_workload.setdefault(name, {})[f"cooo_{iq_size}_{sliq_size}"] = round(
                result.ipc, 4
            )
    experiment.notes.append(
        "paper shape: every COoO point beats baseline-128 by >=2x; the largest point is"
        " within ~10% of the unbuildable 4096-entry baseline"
    )
    return experiment
