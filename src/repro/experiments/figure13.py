"""Figure 13 — sensitivity to the number of checkpoints.

With a large (2048-entry) issue queue and 2048 physical registers, the
paper sweeps the checkpoint table from 4 to 128 entries and compares
against the 4096-entry-ROB "limit" machine.  The paper's numbers: 4
checkpoints lose ~20% against the limit, 8 checkpoints ~9%, and from 32
checkpoints on the slowdown flattens at ~6%.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..common.config import cooo_config, scaled_baseline
from .runner import DEFAULT_SCALE, ExperimentResult, run_config, suite_ipc, suite_traces

FULL_CHECKPOINTS = (4, 8, 16, 32, 64, 128)
QUICK_CHECKPOINTS = (4, 8, 32)


def run_figure13(
    scale: float = DEFAULT_SCALE,
    memory_latency: int = 1000,
    iq_size: int = 2048,
    physical_registers: int = 2048,
    checkpoints: Optional[Sequence[int]] = None,
    quick: bool = True,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate the Figure 13 checkpoint-count sweep."""
    counts = tuple(checkpoints) if checkpoints is not None else (
        QUICK_CHECKPOINTS if quick else FULL_CHECKPOINTS
    )
    traces = suite_traces(scale, workloads=workloads)
    experiment = ExperimentResult(
        "figure13",
        "IPC vs. number of checkpoints (large issue queue), against the 4096-entry limit",
    )
    limit_results = run_config(
        scaled_baseline(window=4096, memory_latency=memory_latency), traces
    )
    limit_ipc = suite_ipc(limit_results)
    experiment.row(config="limit-4096", checkpoints=4096, ipc=round(limit_ipc, 4), slowdown=0.0)
    for count in counts:
        config = cooo_config(
            iq_size=iq_size,
            sliq_size=4096,
            checkpoints=count,
            memory_latency=memory_latency,
            physical_registers=physical_registers,
        )
        results = run_config(config, traces)
        ipc = suite_ipc(results)
        experiment.row(
            config=f"COoO-{count}ckpt",
            checkpoints=count,
            ipc=round(ipc, 4),
            slowdown=round(1.0 - ipc / limit_ipc, 4) if limit_ipc else 0.0,
        )
    experiment.notes.append(
        "paper shape: ~20% slowdown with 4 checkpoints, ~9% with 8, flattening around 6%"
        " from 32 checkpoints on"
    )
    return experiment
