"""Figure 13 — sensitivity to the number of checkpoints.

With a large (2048-entry) issue queue and 2048 physical registers, the
paper sweeps the checkpoint table from 4 to 128 entries and compares
against the 4096-entry-ROB "limit" machine.  The paper's numbers: 4
checkpoints lose ~20% against the limit, 8 checkpoints ~9%, and from 32
checkpoints on the slowdown flattens at ~6%.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..common.config import cooo_config, scaled_baseline
from .runner import DEFAULT_SCALE, ExperimentResult, suite_ipc
from .sweep import SweepEngine, SweepSpec, ensure_engine

FULL_CHECKPOINTS = (4, 8, 16, 32, 64, 128)
QUICK_CHECKPOINTS = (4, 8, 32)


def figure13_spec(
    scale: float = DEFAULT_SCALE,
    memory_latency: int = 1000,
    iq_size: int = 2048,
    physical_registers: int = 2048,
    counts: Sequence[int] = QUICK_CHECKPOINTS,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
) -> SweepSpec:
    """Declare the Figure 13 grid: the limit machine, then each count."""
    configs = [scaled_baseline(window=4096, memory_latency=memory_latency)]
    configs += [
        cooo_config(
            iq_size=iq_size,
            sliq_size=4096,
            checkpoints=count,
            memory_latency=memory_latency,
            physical_registers=physical_registers,
        )
        for count in counts
    ]
    return SweepSpec("figure13", configs, scale=scale, suite=suite, workloads=workloads)


def run_figure13(
    scale: float = DEFAULT_SCALE,
    memory_latency: int = 1000,
    iq_size: int = 2048,
    physical_registers: int = 2048,
    checkpoints: Optional[Sequence[int]] = None,
    quick: bool = True,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
    engine: Optional[SweepEngine] = None,
) -> ExperimentResult:
    """Regenerate the Figure 13 checkpoint-count sweep."""
    counts = tuple(checkpoints) if checkpoints is not None else (
        QUICK_CHECKPOINTS if quick else FULL_CHECKPOINTS
    )
    spec = figure13_spec(scale, memory_latency, iq_size, physical_registers, counts, workloads, suite=suite)
    outcome = ensure_engine(engine).run(spec)
    experiment = ExperimentResult(
        "figure13",
        "IPC vs. number of checkpoints (large issue queue), against the 4096-entry limit",
    )
    limit_results = outcome.config_results(spec.configs[0])
    limit_ipc = suite_ipc(limit_results)
    experiment.row(config="limit-4096", checkpoints=4096, ipc=round(limit_ipc, 4), slowdown=0.0)
    for count, config in zip(counts, spec.configs[1:]):
        results = outcome.config_results(config)
        ipc = suite_ipc(results)
        experiment.row(
            config=f"COoO-{count}ckpt",
            checkpoints=count,
            ipc=round(ipc, 4),
            slowdown=round(1.0 - ipc / limit_ipc, 4) if limit_ipc else 0.0,
        )
    experiment.notes.append(
        "paper shape: ~20% slowdown with 4 checkpoints, ~9% with 8, flattening around 6%"
        " from 32 checkpoints on"
    )
    return experiment
