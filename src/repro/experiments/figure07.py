"""Figure 7 — distribution of live instructions vs. in-flight instructions.

The paper instruments a baseline machine with a 2048-entry window and a
500-cycle memory and shows that the number of *live* (not yet issued)
floating-point instructions is far smaller than the number of in-flight
instructions: most in-flight instructions have already executed (or are
blocked behind an L2 miss) and are merely waiting to commit.  That
under-utilisation is the motivation for both proposed mechanisms.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.occupancy import FIGURE7_PERCENTILES, average_profiles, occupancy_profile
from ..common.config import scaled_baseline
from .runner import DEFAULT_SCALE, ExperimentResult
from .sweep import SweepEngine, SweepSpec, ensure_engine


def figure07_spec(
    scale: float = DEFAULT_SCALE,
    window: int = 2048,
    memory_latency: int = 500,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
) -> SweepSpec:
    """Declare the single-configuration Figure 7 instrumentation run."""
    config = scaled_baseline(window=window, memory_latency=memory_latency)
    return SweepSpec("figure07", [config], scale=scale, suite=suite, workloads=workloads)


def run_figure07(
    scale: float = DEFAULT_SCALE,
    window: int = 2048,
    memory_latency: int = 500,
    percentiles: Sequence[float] = FIGURE7_PERCENTILES,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
    engine: Optional[SweepEngine] = None,
) -> ExperimentResult:
    """Regenerate the Figure 7 occupancy study.

    One row per percentile of the in-flight distribution plus a summary row
    with the average live/in-flight split.
    """
    spec = figure07_spec(scale, window, memory_latency, workloads, suite=suite)
    outcome = ensure_engine(engine).run(spec)
    results = outcome.config_results(spec.configs[0])
    profiles = [occupancy_profile(result, percentiles) for result in results.values()]
    combined = average_profiles(profiles)

    experiment = ExperimentResult(
        "figure07",
        f"live vs. in-flight instructions (baseline, {window}-entry window, "
        f"{memory_latency}-cycle memory)",
    )
    for fraction in percentiles:
        experiment.row(
            percentile=f"{int(fraction * 100)}%",
            in_flight=combined.in_flight_percentiles[fraction],
        )
    experiment.row(
        percentile="mean",
        in_flight=round(combined.mean_in_flight, 1),
        live=round(combined.mean_live, 1),
        live_fp_blocked_long=round(combined.mean_live_fp_long, 1),
        live_fp_blocked_short=round(combined.mean_live_fp_short, 1),
        live_fraction=round(combined.live_fraction, 3),
    )
    for name, result in results.items():
        profile = occupancy_profile(result, percentiles)
        experiment.per_workload[name] = {
            "mean_in_flight": round(profile.mean_in_flight, 1),
            "mean_live": round(profile.mean_live, 1),
            "live_fraction": round(profile.live_fraction, 3),
        }
    experiment.notes.append(
        "paper shape: live instructions are a small fraction of in-flight instructions"
        " (roughly 70-75% of in-flight instructions have finished but cannot commit)"
    )
    return experiment
