"""Figure 11 — average number of in-flight instructions.

For the same configurations as Figure 9 the paper reports the average
number of in-flight instructions, showing that the COoO machine sustains
windows of thousands of instructions with only 8 checkpoint entries — and
in some configurations even more than the 4096-entry baseline (because the
baseline's ROB bounds its window while the COoO machine's does not).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..common.config import cooo_config, scaled_baseline
from .figure09 import BASELINE_WINDOWS, FULL_GRID, QUICK_GRID
from .runner import (
    DEFAULT_SCALE,
    ExperimentResult,
    run_config,
    suite_metric,
    suite_traces,
)


def run_figure11(
    scale: float = DEFAULT_SCALE,
    memory_latency: int = 1000,
    checkpoints: int = 8,
    grid: Optional[Sequence[Tuple[int, int]]] = None,
    quick: bool = True,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate the Figure 11 in-flight-instruction comparison."""
    points = tuple(grid) if grid is not None else (QUICK_GRID if quick else FULL_GRID)
    traces = suite_traces(scale, workloads=workloads)
    experiment = ExperimentResult(
        "figure11",
        "average in-flight instructions: COoO vs. baseline reference lines",
    )
    for window in BASELINE_WINDOWS:
        results = run_config(
            scaled_baseline(window=window, memory_latency=memory_latency), traces
        )
        experiment.row(
            config=f"baseline-{window}",
            iq=window,
            sliq=0,
            in_flight=round(suite_metric(results, lambda r: r.mean_in_flight), 1),
            checkpoints=0,
        )
    for iq_size, sliq_size in points:
        config = cooo_config(
            iq_size=iq_size,
            sliq_size=sliq_size,
            checkpoints=checkpoints,
            memory_latency=memory_latency,
        )
        results = run_config(config, traces)
        experiment.row(
            config=f"COoO-{iq_size}/SLIQ-{sliq_size}",
            iq=iq_size,
            sliq=sliq_size,
            in_flight=round(suite_metric(results, lambda r: r.mean_in_flight), 1),
            checkpoints=checkpoints,
        )
    experiment.notes.append(
        "paper shape: COoO sustains thousands of in-flight instructions with 8 checkpoints,"
        " far beyond the 128-entry baseline"
    )
    return experiment
