"""Figure 11 — average number of in-flight instructions.

For the same configurations as Figure 9 the paper reports the average
number of in-flight instructions, showing that the COoO machine sustains
windows of thousands of instructions with only 8 checkpoint entries — and
in some configurations even more than the 4096-entry baseline (because the
baseline's ROB bounds its window while the COoO machine's does not).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .figure09 import BASELINE_WINDOWS, FULL_GRID, QUICK_GRID, figure09_spec
from .runner import DEFAULT_SCALE, ExperimentResult, suite_metric
from .sweep import SweepEngine, ensure_engine


def run_figure11(
    scale: float = DEFAULT_SCALE,
    memory_latency: int = 1000,
    checkpoints: int = 8,
    grid: Optional[Sequence[Tuple[int, int]]] = None,
    quick: bool = True,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
    engine: Optional[SweepEngine] = None,
) -> ExperimentResult:
    """Regenerate the Figure 11 in-flight-instruction comparison."""
    points = tuple(grid) if grid is not None else (QUICK_GRID if quick else FULL_GRID)
    # Same machines as Figure 9, so the same sweep (shared cache entries).
    spec = figure09_spec(scale, memory_latency, checkpoints, points, quick, workloads, suite=suite)
    spec.name = "figure11"
    outcome = ensure_engine(engine).run(spec)
    baseline_configs = spec.configs[: len(BASELINE_WINDOWS)]
    cooo_configs = spec.configs[len(BASELINE_WINDOWS) :]
    experiment = ExperimentResult(
        "figure11",
        "average in-flight instructions: COoO vs. baseline reference lines",
    )
    for window, config in zip(BASELINE_WINDOWS, baseline_configs):
        results = outcome.config_results(config)
        experiment.row(
            config=f"baseline-{window}",
            iq=window,
            sliq=0,
            in_flight=round(suite_metric(results, lambda r: r.mean_in_flight), 1),
            checkpoints=0,
        )
    for (iq_size, sliq_size), config in zip(points, cooo_configs):
        results = outcome.config_results(config)
        experiment.row(
            config=f"COoO-{iq_size}/SLIQ-{sliq_size}",
            iq=iq_size,
            sliq=sliq_size,
            in_flight=round(suite_metric(results, lambda r: r.mean_in_flight), 1),
            checkpoints=checkpoints,
        )
    experiment.notes.append(
        "paper shape: COoO sustains thousands of in-flight instructions with 8 checkpoints,"
        " far beyond the 128-entry baseline"
    )
    return experiment
