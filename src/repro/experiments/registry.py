"""Registry of every reproduced experiment, keyed by paper figure."""

from __future__ import annotations

from typing import Callable, Dict, List

from .ablation import run_checkpoint_policy_ablation
from .figure01 import run_figure01
from .figure07 import run_figure07
from .figure09 import run_figure09
from .figure10 import run_figure10
from .figure11 import run_figure11
from .figure12 import run_figure12
from .figure13 import run_figure13
from .figure14 import run_figure14
from .runner import ExperimentResult

#: Every experiment of the paper's evaluation section (plus the ablation),
#: mapped to the callable that regenerates it.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "figure01": run_figure01,
    "figure07": run_figure07,
    "figure09": run_figure09,
    "figure10": run_figure10,
    "figure11": run_figure11,
    "figure12": run_figure12,
    "figure13": run_figure13,
    "figure14": run_figure14,
    "ablation-checkpoint-policy": run_checkpoint_policy_ablation,
}


def available_experiments() -> List[str]:
    """Names of every registered experiment."""
    return sorted(EXPERIMENTS)


def run_experiment(name: str, **kwargs: object) -> ExperimentResult:
    """Run one experiment by name (see :func:`available_experiments`)."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(available_experiments())}"
        ) from exc
    return runner(**kwargs)
