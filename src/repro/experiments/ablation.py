"""Checkpoint-placement policy ablation.

The paper's Section 2 settles on a simple heuristic (first branch after 64
instructions, a hard 512-instruction cap and a 64-store cap) and leaves a
broader exploration to future work.  This experiment is that exploration:
it compares the paper's policy against taking a checkpoint every N
instructions, only at branches, or only driven by stores, at a fixed
machine configuration.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..common.config import cooo_config
from .runner import DEFAULT_SCALE, ExperimentResult, suite_ipc
from .sweep import SweepEngine, SweepSpec, ensure_engine

POLICIES = ("paper", "every_n", "branch_only", "store_only")


def ablation_spec(
    scale: float = DEFAULT_SCALE,
    memory_latency: int = 1000,
    iq_size: int = 64,
    sliq_size: int = 1024,
    checkpoints: int = 8,
    policies: Sequence[str] = POLICIES,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
) -> SweepSpec:
    """Declare the ablation grid: one machine per checkpoint policy."""
    configs = []
    for policy in policies:
        config = cooo_config(
            iq_size=iq_size,
            sliq_size=sliq_size,
            checkpoints=checkpoints,
            memory_latency=memory_latency,
        )
        config.checkpoint = replace(config.checkpoint, policy=policy)
        configs.append(config.validate())
    return SweepSpec("ablation-checkpoint-policy", configs, scale=scale, suite=suite, workloads=workloads)


def run_checkpoint_policy_ablation(
    scale: float = DEFAULT_SCALE,
    memory_latency: int = 1000,
    iq_size: int = 64,
    sliq_size: int = 1024,
    checkpoints: int = 8,
    policies: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
    engine: Optional[SweepEngine] = None,
) -> ExperimentResult:
    """Compare checkpoint-taking policies on the same machine."""
    policies = tuple(policies) if policies is not None else POLICIES
    spec = ablation_spec(
        scale, memory_latency, iq_size, sliq_size, checkpoints, policies, workloads,
        suite=suite,
    )
    outcome = ensure_engine(engine).run(spec)
    experiment = ExperimentResult(
        "ablation-checkpoint-policy",
        "checkpoint placement policies (paper heuristic vs. alternatives)",
    )
    reference_ipc = None
    for policy, config in zip(policies, spec.configs):
        results = outcome.config_results(config)
        ipc = suite_ipc(results)
        checkpoints_created = sum(r.checkpoints_created for r in results.values())
        if policy == "paper":
            reference_ipc = ipc
        experiment.row(
            policy=policy,
            ipc=round(ipc, 4),
            vs_paper=round(ipc / reference_ipc, 3) if reference_ipc else 1.0,
            checkpoints_created=int(checkpoints_created),
        )
    experiment.notes.append(
        "the paper heuristic balances rollback distance (branch placement) against"
        " checkpoint-table pressure; alternatives trade one for the other"
    )
    return experiment
