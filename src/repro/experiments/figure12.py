"""Figure 12 — breakdown of instruction status at pseudo-ROB retirement.

For each COoO configuration the paper classifies every instruction leaving
the pseudo-ROB as Moved (to the SLIQ), Finished, Short-latency,
Finished load, Long-latency load, or Store.  The key observations:

* only a modest fraction (~20-30%) of instructions is actually moved, yet
  those need most of the storage (hence the 512-2048 entry SLIQ);
* long-latency loads — the root of the whole problem — are only ~10% of
  the instructions.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..analysis.breakdown import FIGURE12_ORDER, average_breakdown
from ..common.config import cooo_config
from .figure09 import FULL_GRID, QUICK_GRID
from .runner import DEFAULT_SCALE, ExperimentResult
from .sweep import SweepEngine, SweepSpec, ensure_engine


def figure12_spec(
    scale: float = DEFAULT_SCALE,
    memory_latency: int = 1000,
    checkpoints: int = 8,
    points: Sequence[Tuple[int, int]] = QUICK_GRID,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
) -> SweepSpec:
    """Declare the Figure 12 grid (the COoO points of Figure 9)."""
    configs = [
        cooo_config(
            iq_size=iq_size,
            sliq_size=sliq_size,
            checkpoints=checkpoints,
            memory_latency=memory_latency,
        )
        for iq_size, sliq_size in points
    ]
    return SweepSpec("figure12", configs, scale=scale, suite=suite, workloads=workloads)


def run_figure12(
    scale: float = DEFAULT_SCALE,
    memory_latency: int = 1000,
    checkpoints: int = 8,
    grid: Optional[Sequence[Tuple[int, int]]] = None,
    quick: bool = True,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
    engine: Optional[SweepEngine] = None,
) -> ExperimentResult:
    """Regenerate the Figure 12 retirement breakdown."""
    points = tuple(grid) if grid is not None else (QUICK_GRID if quick else FULL_GRID)
    spec = figure12_spec(scale, memory_latency, checkpoints, points, workloads, suite=suite)
    outcome = ensure_engine(engine).run(spec)
    experiment = ExperimentResult(
        "figure12",
        "pseudo-ROB retirement breakdown by configuration",
    )
    for (iq_size, sliq_size), config in zip(points, spec.configs):
        results = outcome.config_results(config)
        breakdown = average_breakdown(list(results.values()))
        row = {
            "config": f"COoO-{iq_size}/SLIQ-{sliq_size}",
            "iq": iq_size,
            "sliq": sliq_size,
        }
        for retire_class in FIGURE12_ORDER:
            row[retire_class.value] = round(breakdown.fraction(retire_class) * 100.0, 1)
        experiment.rows.append(row)
    experiment.notes.append(
        "values are percentages of pseudo-ROB retirements; paper shape: moved 20-30%,"
        " long-latency loads around 10%, the rest finished or short-latency"
    )
    return experiment
