"""Figure 14 — combining COoO/SLIQ with late register allocation.

The paper combines its two mechanisms with "ephemeral registers" (virtual
tags, late physical-register allocation, early recycling) and shows, for
100/500/1000-cycle memory latencies, how IPC varies with the number of
virtual tags (512/1024/2048) and physical registers (256/512), bounded
below by the 128-entry baseline and above by the everything-up-sized limit
machine.  The expected shape: more virtual tags and more physical
registers help, the benefit grows with memory latency, and all points sit
between the two reference lines.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..common.config import cooo_config, scaled_baseline
from .runner import DEFAULT_SCALE, ExperimentResult, suite_ipc
from .sweep import SweepEngine, SweepSpec, ensure_engine

FULL_LATENCIES = (100, 500, 1000)
FULL_VIRTUAL_TAGS = (512, 1024, 2048)
FULL_PHYSICAL = (256, 512)

QUICK_LATENCIES = (100, 1000)
QUICK_VIRTUAL_TAGS = (512, 2048)
QUICK_PHYSICAL = (256, 512)


def figure14_spec(
    scale: float = DEFAULT_SCALE,
    latencies: Sequence[int] = QUICK_LATENCIES,
    virtual_tags: Sequence[int] = QUICK_VIRTUAL_TAGS,
    physical_registers: Sequence[int] = QUICK_PHYSICAL,
    iq_size: int = 128,
    sliq_size: int = 2048,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
) -> SweepSpec:
    """Declare the Figure 14 grid, latency-major to match the row order."""
    configs = []
    for latency in latencies:
        configs.append(scaled_baseline(window=128, memory_latency=latency))
        configs.append(scaled_baseline(window=4096, memory_latency=latency))
        for tags in virtual_tags:
            for physical in physical_registers:
                configs.append(
                    cooo_config(
                        iq_size=iq_size,
                        sliq_size=sliq_size,
                        memory_latency=latency,
                        virtual_tags=tags,
                        physical_registers=physical,
                        late_allocation=True,
                    )
                )
    return SweepSpec("figure14", configs, scale=scale, suite=suite, workloads=workloads)


def run_figure14(
    scale: float = DEFAULT_SCALE,
    latencies: Optional[Sequence[int]] = None,
    virtual_tags: Optional[Sequence[int]] = None,
    physical_registers: Optional[Sequence[int]] = None,
    iq_size: int = 128,
    sliq_size: int = 2048,
    quick: bool = True,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
    engine: Optional[SweepEngine] = None,
) -> ExperimentResult:
    """Regenerate the Figure 14 combined-techniques study."""
    latencies = tuple(latencies) if latencies is not None else (
        QUICK_LATENCIES if quick else FULL_LATENCIES
    )
    virtual_tags = tuple(virtual_tags) if virtual_tags is not None else (
        QUICK_VIRTUAL_TAGS if quick else FULL_VIRTUAL_TAGS
    )
    physical_registers = tuple(physical_registers) if physical_registers is not None else (
        QUICK_PHYSICAL if quick else FULL_PHYSICAL
    )
    spec = figure14_spec(
        scale, latencies, virtual_tags, physical_registers, iq_size, sliq_size, workloads,
        suite=suite,
    )
    outcome = ensure_engine(engine).run(spec)
    experiment = ExperimentResult(
        "figure14",
        "COoO + SLIQ + late register allocation across memory latencies",
    )
    config_iter = iter(spec.configs)
    for latency in latencies:
        baseline_results = outcome.config_results(next(config_iter))
        limit_results = outcome.config_results(next(config_iter))
        baseline_ipc = suite_ipc(baseline_results)
        limit_ipc = suite_ipc(limit_results)
        experiment.row(
            latency=latency, config="baseline-128", virtual_tags=0, physical=128,
            ipc=round(baseline_ipc, 4),
        )
        experiment.row(
            latency=latency, config="limit-4096", virtual_tags=0, physical=4096,
            ipc=round(limit_ipc, 4),
        )
        for tags in virtual_tags:
            for physical in physical_registers:
                results = outcome.config_results(next(config_iter))
                ipc = suite_ipc(results)
                experiment.row(
                    latency=latency,
                    config=f"COoO-vt{tags}-p{physical}",
                    virtual_tags=tags,
                    physical=physical,
                    ipc=round(ipc, 4),
                )
    experiment.notes.append(
        "paper shape: every combined configuration sits between baseline-128 and the limit;"
        " more tags / more registers help, and the gap to baseline grows with latency"
    )
    return experiment
