"""Shared experiment infrastructure.

Every figure module follows the same pattern: build (or reuse) the
workload suite, run a set of machine configurations over it, average IPC
(or another metric) across the suite exactly as the paper averages over
SPEC2000fp, and return an :class:`ExperimentResult` with the rows/series
the paper's figure reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..analysis.report import format_table
from ..api import Simulation
from ..common.config import ProcessorConfig
from ..common.stats import arithmetic_mean
from ..core.result import SimulationResult
from ..trace.trace import Trace
from ..workloads.registry import get_suite

#: Default suite scale used by the benchmark harness: small enough that a
#: full figure regenerates in tens of seconds of pure-Python simulation,
#: large enough that windows of thousands of instructions can build up.
DEFAULT_SCALE = 0.6

_TRACE_CACHE: Dict[tuple, Dict[str, Trace]] = {}


def suite_traces(
    scale: float = DEFAULT_SCALE,
    suite: str = "spec2000fp_like",
    workloads: Optional[Sequence[str]] = None,
) -> Dict[str, Trace]:
    """Build (and cache) the traces of a suite at the given scale."""
    key = (suite, round(scale, 6))
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = get_suite(suite).build(scale)
    traces = _TRACE_CACHE[key]
    if workloads is not None:
        traces = {name: traces[name] for name in workloads}
    return traces


def run_config(
    config: ProcessorConfig,
    traces: Mapping[str, Trace],
) -> Dict[str, SimulationResult]:
    """Run one configuration over every trace of a suite."""
    return Simulation(config).run_suite(traces)


def suite_ipc(results: Mapping[str, SimulationResult]) -> float:
    """Arithmetic-mean IPC across the suite (the paper's reported metric)."""
    return arithmetic_mean(result.ipc for result in results.values())


def suite_metric(
    results: Mapping[str, SimulationResult],
    metric: Callable[[SimulationResult], float],
) -> float:
    """Arithmetic mean of an arbitrary per-run metric across the suite."""
    return arithmetic_mean(metric(result) for result in results.values())


@dataclass
class ExperimentResult:
    """Output of one figure-reproduction experiment."""

    experiment: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    per_workload: Dict[str, Dict[str, object]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def row(self, **values: object) -> Dict[str, object]:
        """Append one result row and return it."""
        self.rows.append(dict(values))
        return self.rows[-1]

    def find_row(self, **criteria: object) -> Optional[Dict[str, object]]:
        """First row matching every key/value pair in ``criteria``."""
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                return row
        return None

    def value(self, column: str, **criteria: object) -> float:
        """Value of ``column`` in the first row matching ``criteria``."""
        row = self.find_row(**criteria)
        if row is None:
            raise KeyError(f"no row matches {criteria} in {self.experiment}")
        return float(row[column])  # type: ignore[arg-type]

    def column(self, column: str) -> List[float]:
        return [float(row[column]) for row in self.rows if column in row]  # type: ignore[arg-type]

    def report(self) -> str:
        """Plain-text rendition of the experiment (header, table, notes)."""
        lines = [f"== {self.experiment}: {self.description} =="]
        lines.append(format_table(self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
