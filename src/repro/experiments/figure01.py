"""Figure 1 — IPC vs. number of in-flight instructions and memory latency.

The paper scales every window resource of the conventional machine (ROB,
issue queues, LSQ, registers) from 128 to 4096 entries and shows IPC for a
perfect L2 and for 100/500/1000-cycle main-memory latencies.  The two
claims the figure supports:

* at 128 in-flight instructions, a 1000-cycle memory is ~3.5x slower than
  a perfect L2;
* growing the window recovers most of that loss for numerical codes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..common.config import scaled_baseline
from .runner import DEFAULT_SCALE, ExperimentResult, run_config, suite_ipc, suite_traces

#: Window sizes of the paper's x axis.
FULL_WINDOWS = (128, 256, 512, 1024, 2048, 4096)
#: Latency series of the paper (``"perfect"`` means a perfect L2).
FULL_LATENCIES = ("perfect", 100, 500, 1000)

#: Reduced grid used by the default benchmark run.
QUICK_WINDOWS = (128, 512, 2048)
QUICK_LATENCIES = ("perfect", 100, 1000)

LatencySpec = Union[str, int]


def run_figure01(
    scale: float = DEFAULT_SCALE,
    windows: Optional[Sequence[int]] = None,
    latencies: Optional[Sequence[LatencySpec]] = None,
    quick: bool = True,
    workloads: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Regenerate the Figure 1 sweep.

    Returns one row per (window, latency) with the suite-average IPC.
    """
    windows = tuple(windows) if windows is not None else (QUICK_WINDOWS if quick else FULL_WINDOWS)
    latencies = (
        tuple(latencies) if latencies is not None else (QUICK_LATENCIES if quick else FULL_LATENCIES)
    )
    traces = suite_traces(scale, workloads=workloads)
    experiment = ExperimentResult(
        "figure01",
        "IPC vs. in-flight instructions and memory latency (baseline machine)",
    )
    for window in windows:
        for latency in latencies:
            perfect = latency == "perfect"
            config = scaled_baseline(
                window=window,
                memory_latency=0 if perfect else int(latency),
                perfect_l2=perfect,
            )
            results = run_config(config, traces)
            experiment.row(
                window=window,
                latency=str(latency),
                ipc=round(suite_ipc(results), 4),
            )
    experiment.notes.append(
        "paper shape: IPC at window=128 collapses as latency grows (~3.5x perfect vs 1000),"
        " and large windows recover most of the loss"
    )
    return experiment
