"""Figure 1 — IPC vs. number of in-flight instructions and memory latency.

The paper scales every window resource of the conventional machine (ROB,
issue queues, LSQ, registers) from 128 to 4096 entries and shows IPC for a
perfect L2 and for 100/500/1000-cycle main-memory latencies.  The two
claims the figure supports:

* at 128 in-flight instructions, a 1000-cycle memory is ~3.5x slower than
  a perfect L2;
* growing the window recovers most of that loss for numerical codes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..common.config import scaled_baseline
from .runner import DEFAULT_SCALE, ExperimentResult, suite_ipc
from .sweep import SweepEngine, SweepSpec, ensure_engine

#: Window sizes of the paper's x axis.
FULL_WINDOWS = (128, 256, 512, 1024, 2048, 4096)
#: Latency series of the paper (``"perfect"`` means a perfect L2).
FULL_LATENCIES = ("perfect", 100, 500, 1000)

#: Reduced grid used by the default benchmark run.
QUICK_WINDOWS = (128, 512, 2048)
QUICK_LATENCIES = ("perfect", 100, 1000)

LatencySpec = Union[str, int]


def _baseline_for(window: int, latency: LatencySpec):
    perfect = latency == "perfect"
    return scaled_baseline(
        window=window,
        memory_latency=0 if perfect else int(latency),
        perfect_l2=perfect,
    )


def figure01_spec(
    scale: float = DEFAULT_SCALE,
    windows: Sequence[int] = QUICK_WINDOWS,
    latencies: Sequence[LatencySpec] = QUICK_LATENCIES,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
) -> SweepSpec:
    """Declare the Figure 1 grid, window-major to match the row order."""
    configs = [
        _baseline_for(window, latency) for window in windows for latency in latencies
    ]
    return SweepSpec("figure01", configs, scale=scale, suite=suite, workloads=workloads)


def run_figure01(
    scale: float = DEFAULT_SCALE,
    windows: Optional[Sequence[int]] = None,
    latencies: Optional[Sequence[LatencySpec]] = None,
    quick: bool = True,
    workloads: Optional[Sequence[str]] = None,
    suite: str = "spec2000fp_like",
    engine: Optional[SweepEngine] = None,
) -> ExperimentResult:
    """Regenerate the Figure 1 sweep.

    Returns one row per (window, latency) with the suite-average IPC.
    """
    windows = tuple(windows) if windows is not None else (QUICK_WINDOWS if quick else FULL_WINDOWS)
    latencies = (
        tuple(latencies) if latencies is not None else (QUICK_LATENCIES if quick else FULL_LATENCIES)
    )
    spec = figure01_spec(scale, windows, latencies, workloads, suite=suite)
    outcome = ensure_engine(engine).run(spec)
    experiment = ExperimentResult(
        "figure01",
        "IPC vs. in-flight instructions and memory latency (baseline machine)",
    )
    config_iter = iter(spec.configs)
    for window in windows:
        for latency in latencies:
            results = outcome.config_results(next(config_iter))
            experiment.row(
                window=window,
                latency=str(latency),
                ipc=round(suite_ipc(results), 4),
            )
    experiment.notes.append(
        "paper shape: IPC at window=128 collapses as latency grows (~3.5x perfect vs 1000),"
        " and large windows recover most of the loss"
    )
    return experiment
