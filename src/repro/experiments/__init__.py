"""The experiment harness: one module per figure of the paper's evaluation."""

from .ablation import run_checkpoint_policy_ablation
from .figure01 import run_figure01
from .figure07 import run_figure07
from .figure09 import run_figure09
from .figure10 import run_figure10
from .figure11 import run_figure11
from .figure12 import run_figure12
from .figure13 import run_figure13
from .figure14 import run_figure14
from .registry import EXPERIMENTS, available_experiments, run_experiment
from .runner import (
    DEFAULT_SCALE,
    ExperimentResult,
    run_config,
    suite_ipc,
    suite_metric,
    suite_traces,
)
from .sweep import (
    ResultCache,
    SweepCell,
    SweepEngine,
    SweepOutcome,
    SweepSpec,
    cell_cache_key,
    default_cache_dir,
)

__all__ = [
    "ResultCache",
    "SweepCell",
    "SweepEngine",
    "SweepOutcome",
    "SweepSpec",
    "cell_cache_key",
    "default_cache_dir",
    "run_checkpoint_policy_ablation",
    "run_figure01",
    "run_figure07",
    "run_figure09",
    "run_figure10",
    "run_figure11",
    "run_figure12",
    "run_figure13",
    "run_figure14",
    "EXPERIMENTS",
    "available_experiments",
    "run_experiment",
    "DEFAULT_SCALE",
    "ExperimentResult",
    "run_config",
    "suite_ipc",
    "suite_metric",
    "suite_traces",
]
