"""repro — a reproduction of "Out-of-Order Commit Processors" (HPCA 2004).

The package provides a cycle-level superscalar simulator with two
machines — a conventional ROB baseline and the paper's checkpoint-based
out-of-order-commit machine with Slow Lane Instruction Queuing — plus the
synthetic SPEC2000fp-like workloads and the experiment harness that
regenerates every figure of the paper's evaluation.

Quickstart::

    from repro import cooo_config, scaled_baseline, simulate, spec2000fp_like

    traces = spec2000fp_like(scale=0.3)
    baseline = scaled_baseline(window=128, memory_latency=500)
    cooo = cooo_config(iq_size=64, sliq_size=1024, memory_latency=500)
    for name, trace in traces.items():
        print(name, simulate(baseline, trace).ipc, simulate(cooo, trace).ipc)
"""

from .common.config import (
    BranchConfig,
    CacheConfig,
    CheckpointConfig,
    CoreConfig,
    FunctionalUnitConfig,
    MemoryConfig,
    ProcessorConfig,
    RegisterAllocationConfig,
    SLIQConfig,
    cooo_config,
    scaled_baseline,
    table1_baseline,
)
from .common.errors import (
    CheckpointError,
    ConfigurationError,
    DeadlockError,
    RenameError,
    ReproError,
    SimulationError,
    StructuralHazardError,
    TraceError,
)
from .common.stats import StatsRegistry
from .core.pipeline import BaselinePipeline, OoOCommitPipeline, build_pipeline
from .core.processor import Processor, average_ipc, simulate
from .core.result import SimulationResult
from .isa.instruction import DynInst, InstState, Instruction, RetireClass
from .isa.opcodes import OpClass
from .trace.trace import Trace, TraceCursor
from .workloads.suite import get_suite, integer_suite, spec2000fp_like

__version__ = "1.0.0"

__all__ = [
    "BranchConfig",
    "CacheConfig",
    "CheckpointConfig",
    "CoreConfig",
    "FunctionalUnitConfig",
    "MemoryConfig",
    "ProcessorConfig",
    "RegisterAllocationConfig",
    "SLIQConfig",
    "cooo_config",
    "scaled_baseline",
    "table1_baseline",
    "CheckpointError",
    "ConfigurationError",
    "DeadlockError",
    "RenameError",
    "ReproError",
    "SimulationError",
    "StructuralHazardError",
    "TraceError",
    "StatsRegistry",
    "BaselinePipeline",
    "OoOCommitPipeline",
    "build_pipeline",
    "Processor",
    "average_ipc",
    "simulate",
    "SimulationResult",
    "DynInst",
    "InstState",
    "Instruction",
    "RetireClass",
    "OpClass",
    "Trace",
    "TraceCursor",
    "get_suite",
    "integer_suite",
    "spec2000fp_like",
    "__version__",
]
