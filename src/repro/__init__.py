"""repro — a reproduction of "Out-of-Order Commit Processors" (HPCA 2004).

The package provides a cycle-level superscalar simulator with two
machines — a conventional ROB baseline and the paper's checkpoint-based
out-of-order-commit machine with Slow Lane Instruction Queuing — plus the
synthetic SPEC2000fp-like workloads and the experiment harness that
regenerates every figure of the paper's evaluation.

Quickstart::

    from repro import api, cooo_config, scaled_baseline, spec2000fp_like

    traces = spec2000fp_like(scale=0.3)
    baseline = scaled_baseline(window=128, memory_latency=500)
    cooo = cooo_config(iq_size=64, sliq_size=1024, memory_latency=500)
    for name, trace in traces.items():
        print(name, api.run(baseline, trace).ipc, api.run(cooo, trace).ipc)

The :mod:`repro.api` facade is the front door (``Simulation``, ``run``,
``run_many``); machine organizations are pluggable through
:mod:`repro.core.registry_machines` and observation happens through
:mod:`repro.core.probes`.  ``Processor``/``simulate`` remain as
deprecation shims.
"""

from .common.config import (
    BranchConfig,
    CacheConfig,
    CheckpointConfig,
    CoreConfig,
    FunctionalUnitConfig,
    MemoryConfig,
    ProcessorConfig,
    RegisterAllocationConfig,
    SamplingPlan,
    SLIQConfig,
    cooo_config,
    scaled_baseline,
    table1_baseline,
)
from .common.errors import (
    CheckpointError,
    ConfigurationError,
    DeadlockError,
    RenameError,
    ReproError,
    SimulationError,
    StructuralHazardError,
    TraceError,
)
from .common.stats import StatsRegistry
from .core.pipeline import BaselinePipeline, OoOCommitPipeline, PipelineBase, build_pipeline
from .core.probes import CallbackProbe, OccupancyProbe, Probe
from .core.processor import Processor, average_ipc, simulate
from .core.registry_machines import (
    MachineSpec,
    create_pipeline,
    get_machine,
    machine_names,
    machine_specs,
    register_machine,
    unregister_machine,
)
from .core.result import SimulationResult
from .isa.instruction import DynInst, InstState, Instruction, RetireClass
from .isa.opcodes import OpClass
from .trace.io import load_trace, save_trace, trace_info
from .trace.trace import Trace, TraceCursor
from .workloads.registry import (
    WorkloadSpec,
    build_workload,
    get_workload,
    register_suite,
    register_workload,
    suite_names,
    workload_names,
)
from .workloads.scenario import Phase, Scenario, interleave
from .workloads.suite import get_suite, integer_suite, spec2000fp_like

# The facade imports experiment modules lazily; importing it last keeps
# the package import graph acyclic.
from . import api
from .api import Simulation, run, run_many

__version__ = "1.1.0"

__all__ = [
    "BranchConfig",
    "CacheConfig",
    "CheckpointConfig",
    "CoreConfig",
    "FunctionalUnitConfig",
    "MemoryConfig",
    "ProcessorConfig",
    "RegisterAllocationConfig",
    "SamplingPlan",
    "SLIQConfig",
    "cooo_config",
    "scaled_baseline",
    "table1_baseline",
    "CheckpointError",
    "ConfigurationError",
    "DeadlockError",
    "RenameError",
    "ReproError",
    "SimulationError",
    "StructuralHazardError",
    "TraceError",
    "StatsRegistry",
    "BaselinePipeline",
    "OoOCommitPipeline",
    "PipelineBase",
    "build_pipeline",
    "CallbackProbe",
    "OccupancyProbe",
    "Probe",
    "MachineSpec",
    "create_pipeline",
    "get_machine",
    "machine_names",
    "machine_specs",
    "register_machine",
    "unregister_machine",
    "api",
    "Simulation",
    "run",
    "run_many",
    "Processor",
    "average_ipc",
    "simulate",
    "SimulationResult",
    "DynInst",
    "InstState",
    "Instruction",
    "RetireClass",
    "OpClass",
    "Trace",
    "TraceCursor",
    "load_trace",
    "save_trace",
    "trace_info",
    "Phase",
    "Scenario",
    "WorkloadSpec",
    "build_workload",
    "get_suite",
    "get_workload",
    "integer_suite",
    "interleave",
    "register_suite",
    "register_workload",
    "spec2000fp_like",
    "suite_names",
    "workload_names",
    "__version__",
]
