"""Miss status holding registers (outstanding-miss tracking).

When a load misses, the hierarchy records the cycle at which the fill
will arrive.  Later accesses to the same line that arrive before the fill
*merge* into the outstanding miss instead of paying the full latency
again — exactly what hardware MSHRs do.  Entries are pruned lazily.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.stats import StatsRegistry


class MSHRFile:
    """Tracks outstanding line fills for one cache level."""

    __slots__ = ("name", "capacity", "_outstanding", "_allocations", "_merges")

    def __init__(self, name: str, stats: StatsRegistry, capacity: Optional[int] = None) -> None:
        self.name = name
        self.capacity = capacity
        # line address -> (ready cycle, fill comes from main memory)
        self._outstanding: Dict[int, tuple] = {}
        self._allocations = stats.counter(f"{name}.allocations")
        self._merges = stats.counter(f"{name}.merges")

    def lookup(self, line_addr: int, cycle: int) -> Optional[tuple]:
        """Outstanding fill of ``line_addr`` as ``(ready_cycle, from_memory)``.

        Entries whose fill already completed (ready <= cycle) are removed
        and treated as absent — the line is in the cache by then.
        """
        entry = self._outstanding.get(line_addr)
        if entry is None:
            return None
        if entry[0] <= cycle:
            del self._outstanding[line_addr]
            return None
        self._merges.add()
        return entry

    def allocate(self, line_addr: int, ready_cycle: int, from_memory: bool = False) -> bool:
        """Record a new outstanding fill; False if the MSHR file is full."""
        self._prune(ready_cycle)
        if self.capacity is not None and len(self._outstanding) >= self.capacity:
            return False
        self._outstanding[line_addr] = (ready_cycle, from_memory)
        self._allocations.add()
        return True

    def _prune(self, cycle: int) -> None:
        if len(self._outstanding) < 1024:
            return
        finished = [line for line, entry in self._outstanding.items() if entry[0] <= cycle]
        for line in finished:
            del self._outstanding[line]

    @property
    def outstanding_count(self) -> int:
        return len(self._outstanding)

    def clear(self) -> None:
        self._outstanding.clear()
