"""A set-associative cache with LRU replacement.

The simulator needs hit/miss behaviour and occupancy, not data values, so
a cache is a tag store only.  Lines are installed on miss (write-allocate)
and evicted LRU; dirty-bit bookkeeping is kept so that statistics about
writebacks are available, although writeback traffic has no timing cost in
this model (the paper studies latency, not bandwidth).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..common.config import CacheConfig
from ..common.stats import StatsRegistry


class Cache:
    """Tag store of one cache level."""

    __slots__ = (
        "config",
        "name",
        "_num_sets",
        "_line_shift",
        "_set_mask",
        "_sets",
        "_accesses",
        "_hits",
        "_misses",
        "_evictions",
        "_writebacks",
    )

    def __init__(self, config: CacheConfig, stats: StatsRegistry, name: Optional[str] = None) -> None:
        config.validate()
        self.config = config
        self.name = name or config.name
        self._num_sets = config.num_sets
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = self._num_sets - 1
        # Each set is an OrderedDict mapping tag -> dirty flag; ordering is
        # recency (last item = most recently used).
        self._sets: List["OrderedDict[int, bool]"] = [OrderedDict() for _ in range(self._num_sets)]
        self._accesses = stats.counter(f"{self.name}.accesses")
        self._hits = stats.counter(f"{self.name}.hits")
        self._misses = stats.counter(f"{self.name}.misses")
        self._evictions = stats.counter(f"{self.name}.evictions")
        self._writebacks = stats.counter(f"{self.name}.writebacks")

    # -- address helpers ---------------------------------------------------
    def line_address(self, addr: int) -> int:
        """Address truncated to the cache-line boundary."""
        return addr >> self._line_shift << self._line_shift

    def _set_index(self, addr: int) -> int:
        return (addr >> self._line_shift) & self._set_mask

    def _tag(self, addr: int) -> int:
        return addr >> self._line_shift

    # -- operations ------------------------------------------------------------
    def probe(self, addr: int) -> bool:
        """Non-destructive lookup: True if the line is present (no LRU update)."""
        return self._tag(addr) in self._sets[self._set_index(addr)]

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Look up ``addr``; returns True on hit.

        A hit refreshes recency and, for writes, sets the dirty bit.  A
        miss does *not* install the line — the hierarchy decides when the
        fill happens via :meth:`fill`.
        """
        self._accesses.add()
        cache_set = self._sets[self._set_index(addr)]
        tag = self._tag(addr)
        if tag in cache_set:
            self._hits.add()
            dirty = cache_set.pop(tag)
            cache_set[tag] = dirty or is_write
            return True
        self._misses.add()
        return False

    def warm_access(self, addr: int, is_write: bool = False) -> bool:
        """Functional-warming lookup: like :meth:`access` but uncounted.

        Used by the sampled-execution fast-forward engine, which must
        evolve tag/LRU/dirty state exactly as demand accesses would
        while keeping the hit/miss statistics scoped to detailed
        execution.
        """
        cache_set = self._sets[self._set_index(addr)]
        tag = self._tag(addr)
        if tag in cache_set:
            dirty = cache_set.pop(tag)
            cache_set[tag] = dirty or is_write
            return True
        return False

    def warm_fill(self, addr: int, dirty: bool = False) -> None:
        """Functional-warming install: like :meth:`fill` but uncounted."""
        cache_set = self._sets[self._set_index(addr)]
        tag = self._tag(addr)
        if tag in cache_set:
            existing_dirty = cache_set.pop(tag)
            cache_set[tag] = existing_dirty or dirty
            return
        if len(cache_set) >= self.config.assoc:
            cache_set.popitem(last=False)
        cache_set[tag] = dirty

    def fill(self, addr: int, dirty: bool = False) -> Optional[int]:
        """Install the line containing ``addr``.

        Returns the line address of the evicted victim (if the victim was
        dirty), else None.  Filling an already-present line just refreshes
        recency.
        """
        cache_set = self._sets[self._set_index(addr)]
        tag = self._tag(addr)
        if tag in cache_set:
            existing_dirty = cache_set.pop(tag)
            cache_set[tag] = existing_dirty or dirty
            return None
        victim_line = None
        if len(cache_set) >= self.config.assoc:
            victim_tag, victim_dirty = cache_set.popitem(last=False)
            self._evictions.add()
            if victim_dirty:
                self._writebacks.add()
                victim_line = victim_tag << self._line_shift
        cache_set[tag] = dirty
        return victim_line

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing ``addr``; True if it was present."""
        cache_set = self._sets[self._set_index(addr)]
        tag = self._tag(addr)
        if tag in cache_set:
            del cache_set[tag]
            return True
        return False

    def flush(self) -> None:
        """Empty the whole cache."""
        for cache_set in self._sets:
            cache_set.clear()

    # -- inspection -------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._sets)

    @property
    def capacity_lines(self) -> int:
        """Total number of line frames."""
        return self._num_sets * self.config.assoc

    def hit_rate(self) -> float:
        """Hits / accesses so far (1.0 when never accessed)."""
        if not self._accesses.value:
            return 1.0
        return self._hits.value / self._accesses.value

    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate()

    def contents(self) -> Dict[int, List[int]]:
        """Mapping set index -> list of resident line addresses (LRU first)."""
        return {
            index: [tag << self._line_shift for tag in cache_set]
            for index, cache_set in enumerate(self._sets)
            if cache_set
        }

    # -- warm-state snapshot/restore (sampled execution) ---------------------
    def warm_state(self) -> List[List[object]]:
        """Serializable tag/LRU/dirty state: ``[[set, [[tag, dirty], ...]], ...]``.

        Only non-empty sets appear; within a set the pairs are ordered
        LRU-first, so :meth:`load_warm_state` reproduces recency exactly.
        The encoding is plain lists of ints/bools so it survives a JSON
        round trip through a warm-checkpoint file unchanged.
        """
        return [
            [index, [[tag, dirty] for tag, dirty in cache_set.items()]]
            for index, cache_set in enumerate(self._sets)
            if cache_set
        ]

    def load_warm_state(self, state: List[List[object]]) -> None:
        """Restore the state captured by :meth:`warm_state`.

        Replaces the entire tag store; statistics counters are untouched
        (warm state is contents, not history).
        """
        for cache_set in self._sets:
            cache_set.clear()
        for index, pairs in state:
            if not 0 <= index < self._num_sets or len(pairs) > self.config.assoc:
                raise ValueError(
                    f"{self.name}: warm state does not fit geometry "
                    f"(set {index!r} of {self._num_sets}, {len(pairs)} ways of {self.config.assoc})"
                )
            cache_set = self._sets[index]
            for tag, dirty in pairs:
                cache_set[int(tag)] = bool(dirty)
