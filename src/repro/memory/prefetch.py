"""Hardware prefetchers (an optional extension, off by default).

The paper's related-work section discusses prefetching as the classical,
complementary way of tolerating memory latency (e.g. Badawy et al. and
Pressel's stream-buffer studies).  To allow that comparison, the memory
hierarchy can be configured with one of two simple L2 prefetchers:

* ``next_line`` — on every demand L2 miss, fetch the next ``degree``
  sequential lines as well.
* ``stride`` — a reference-prediction table keyed by the accessed region
  detects constant-stride streams and prefetches ``degree`` strides ahead.

Prefetches are modelled as fills that arrive one full memory latency after
the triggering access; they never delay demand requests (bandwidth is not
modelled, consistent with the paper's latency-centric methodology).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.stats import StatsRegistry


class PrefetchEngine:
    """Base class: decides which line addresses to prefetch after an access."""

    __slots__ = ("line_bytes", "degree", "_issued", "_useful")

    name = "none"

    def __init__(self, line_bytes: int, degree: int, stats: StatsRegistry) -> None:
        self.line_bytes = line_bytes
        self.degree = degree
        self._issued = stats.counter("prefetch.issued")
        self._useful = stats.counter("prefetch.useful")

    def record_useful(self) -> None:
        """A demand access hit a line that was brought in by a prefetch."""
        self._useful.add()

    @property
    def issued(self) -> int:
        return int(self._issued.value)

    def addresses_after(self, addr: int, was_miss: bool, key: Optional[int] = None) -> List[int]:
        """Line addresses to prefetch after a demand access to ``addr``.

        ``key`` identifies the access stream (normally the load/store's pc);
        prefetchers that do not need it ignore it.
        """
        raise NotImplementedError

    def warm_state(self) -> Optional[List[List[object]]]:
        """Serializable training state, or None for stateless prefetchers."""
        return None

    def load_warm_state(self, state: Optional[List[List[object]]]) -> None:
        """Restore :meth:`warm_state` output (no-op for stateless prefetchers)."""

    def _line(self, addr: int) -> int:
        return (addr // self.line_bytes) * self.line_bytes


class NextLinePrefetcher(PrefetchEngine):
    """Sequential (next-N-lines) prefetching triggered by demand misses."""

    __slots__ = ()

    name = "next_line"

    def addresses_after(self, addr: int, was_miss: bool, key: Optional[int] = None) -> List[int]:
        if not was_miss:
            return []
        base = self._line(addr)
        addresses = [base + (i + 1) * self.line_bytes for i in range(self.degree)]
        self._issued.add(len(addresses))
        return addresses


class StridePrefetcher(PrefetchEngine):
    """Reference-prediction-table stride prefetcher.

    The table is indexed by the accessing instruction's pc (the classical
    reference prediction table); when no pc is supplied it falls back to
    the access's 4 KiB region.  Each entry remembers the last address and
    the last observed stride.  Two consecutive accesses with the same
    non-zero stride arm the entry, after which each access prefetches
    ``degree`` steps ahead of the stream.
    """

    __slots__ = ("table_size", "_table")

    name = "stride"

    def __init__(self, line_bytes: int, degree: int, stats: StatsRegistry, table_size: int = 256) -> None:
        super().__init__(line_bytes, degree, stats)
        self.table_size = table_size
        # stream key -> (last address, stride, confirmed)
        self._table: Dict[int, Tuple[int, int, bool]] = {}

    def _region(self, addr: int) -> int:
        return (addr >> 12) % self.table_size

    def addresses_after(self, addr: int, was_miss: bool, key: Optional[int] = None) -> List[int]:
        region = key % self.table_size if key is not None else self._region(addr)
        entry = self._table.get(region)
        addresses: List[int] = []
        if entry is None:
            self._table[region] = (addr, 0, False)
            return addresses
        last_addr, last_stride, confirmed = entry
        stride = addr - last_addr
        if stride != 0 and stride == last_stride:
            # Stream confirmed: prefetch `degree` steps ahead.  Strides
            # smaller than a cache line would keep hitting the same line,
            # so the effective step is at least one line in the stream's
            # direction (this is what stream buffers do).
            if abs(stride) >= self.line_bytes:
                step = stride
            else:
                step = self.line_bytes if stride > 0 else -self.line_bytes
            seen = set()
            for i in range(1, self.degree + 1):
                target = self._line(addr + i * step)
                if target not in seen:
                    seen.add(target)
                    addresses.append(target)
            self._table[region] = (addr, stride, True)
            self._issued.add(len(addresses))
        else:
            self._table[region] = (addr, stride, False)
        return addresses

    def warm_state(self) -> Optional[List[List[object]]]:
        """Reference-prediction table as ``[[key, [last, stride, confirmed]], ...]``."""
        return [[key, list(entry)] for key, entry in self._table.items()]

    def load_warm_state(self, state: Optional[List[List[object]]]) -> None:
        self._table.clear()
        for key, entry in state or []:
            last_addr, stride, confirmed = entry
            self._table[int(key)] = (int(last_addr), int(stride), bool(confirmed))


def build_prefetcher(
    kind: str,
    line_bytes: int,
    degree: int,
    stats: StatsRegistry,
) -> Optional[PrefetchEngine]:
    """Factory used by the cache hierarchy; returns None when disabled."""
    if kind in ("none", "", None):
        return None
    if kind == "next_line":
        return NextLinePrefetcher(line_bytes, degree, stats)
    if kind == "stride":
        return StridePrefetcher(line_bytes, degree, stats)
    raise ValueError(f"unknown prefetcher kind {kind!r}")
