"""The memory subsystem: caches, MSHRs, prefetchers and the hierarchy model."""

from .cache import Cache
from .hierarchy import AccessResult, CacheHierarchy
from .mshr import MSHRFile
from .prefetch import NextLinePrefetcher, PrefetchEngine, StridePrefetcher, build_prefetcher

__all__ = [
    "Cache",
    "AccessResult",
    "CacheHierarchy",
    "MSHRFile",
    "NextLinePrefetcher",
    "PrefetchEngine",
    "StridePrefetcher",
    "build_prefetcher",
]
