"""The full memory hierarchy: IL1, DL1, unified L2 and main memory.

The hierarchy answers one question for the pipeline: *if this access
starts now, when does its data arrive and where was it found?*  Results
are returned as :class:`AccessResult` records; the MSHR files make
accesses to a line that is already being fetched complete together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.config import MemoryConfig
from ..common.stats import StatsRegistry
from .cache import Cache
from .mshr import MSHRFile
from .prefetch import build_prefetcher


@dataclass(frozen=True, slots=True)
class AccessResult:
    """Outcome of one data access."""

    latency: int
    level: str  # "dl1", "l2", "memory", "mshr"
    l2_miss: bool
    dl1_miss: bool

    @property
    def ready_after(self) -> int:
        """Alias for latency, for readability at call sites."""
        return self.latency


class CacheHierarchy:
    """Two-level data hierarchy plus an instruction L1, as in Table 1."""

    __slots__ = (
        "config",
        "stats",
        "il1",
        "dl1",
        "l2",
        "_dl1_mshr",
        "_l2_mshr",
        "prefetcher",
        "_prefetched_lines",
        "_loads",
        "_stores",
        "_l2_miss_loads",
        "_memory_accesses",
    )

    def __init__(self, config: MemoryConfig, stats: StatsRegistry) -> None:
        config.validate()
        self.config = config
        self.stats = stats
        self.il1 = Cache(config.il1, stats, name="il1")
        self.dl1 = Cache(config.dl1, stats, name="dl1")
        self.l2 = Cache(config.l2, stats, name="l2")
        self._dl1_mshr = MSHRFile("dl1.mshr", stats)
        self._l2_mshr = MSHRFile("l2.mshr", stats)
        self.prefetcher = build_prefetcher(
            config.prefetcher, config.l2.line_bytes, config.prefetch_degree, stats
        )
        self._prefetched_lines: set = set()
        self._loads = stats.counter("mem.loads")
        self._stores = stats.counter("mem.stores")
        self._l2_miss_loads = stats.counter("mem.l2_miss_loads")
        self._memory_accesses = stats.counter("mem.main_memory_accesses")

    # -- instruction side ---------------------------------------------------
    def inst_access(self, pc: int, cycle: int) -> int:
        """Latency of fetching the line containing ``pc``.

        Instruction misses are served from the L2: the loop bodies of the
        modelled workloads (and of the paper's SPEC2000fp regions) have
        code footprints far smaller than the L2, so code is assumed L2
        resident and instruction fetch never pays the main-memory latency.
        """
        if self.il1.access(pc):
            return self.config.il1.latency
        self.il1.fill(pc)
        self.l2.access(pc)
        self.l2.fill(pc)
        return self.config.il1.latency + self.config.l2.latency

    # -- data side -------------------------------------------------------------
    def data_access(
        self, addr: int, is_store: bool, cycle: int, pc: Optional[int] = None
    ) -> AccessResult:
        """Access the data hierarchy; returns latency and the serving level.

        When a prefetcher is configured, the access also trains it (keyed
        by the accessing instruction's ``pc`` when provided) and may
        trigger prefetch fills into the L2 (see :mod:`repro.memory.prefetch`).
        """
        result = self._demand_access(addr, is_store, cycle)
        if self.prefetcher is not None:
            self._account_prefetch_hit(addr, result)
            for target in self.prefetcher.addresses_after(addr, result.l2_miss, key=pc):
                self._issue_prefetch(target, cycle)
        return result

    def _account_prefetch_hit(self, addr: int, result: AccessResult) -> None:
        line = self.l2.line_address(addr)
        if result.level in ("l2", "mshr") and line in self._prefetched_lines:
            self._prefetched_lines.discard(line)
            self.prefetcher.record_useful()

    def _issue_prefetch(self, addr: int, cycle: int) -> None:
        """Bring one line into the L2 ahead of demand (latency-only model)."""
        if self.config.perfect_l2 or self.config.perfect_dl1:
            return
        if self.l2.probe(addr):
            return
        line = self.l2.line_address(addr)
        if self._l2_mshr.lookup(line, cycle) is not None:
            return
        latency = self.config.l2.latency + self.config.memory_latency
        self._l2_mshr.allocate(line, cycle + latency, from_memory=True)
        self.l2.fill(addr)
        self._prefetched_lines.add(line)

    def _demand_access(self, addr: int, is_store: bool, cycle: int) -> AccessResult:
        if is_store:
            self._stores.add()
        else:
            self._loads.add()

        if self.config.perfect_dl1:
            return AccessResult(self.config.dl1.latency, "dl1", False, False)

        line = self.dl1.line_address(addr)
        dl1_latency = self.config.dl1.latency
        if self.dl1.access(addr, is_write=is_store):
            # The line may still be in flight from an earlier miss; the
            # access then completes when the fill does and counts as an L2
            # miss if the fill is coming from main memory.
            pending = self._dl1_mshr.lookup(line, cycle)
            if pending is not None:
                ready_cycle, from_memory = pending
                latency = max(dl1_latency, ready_cycle - cycle)
                if from_memory and not is_store:
                    self._l2_miss_loads.add()
                return AccessResult(latency, "mshr", from_memory, True)
            return AccessResult(dl1_latency, "dl1", False, False)

        # DL1 miss: check for an outstanding fill of the same line.
        pending = self._dl1_mshr.lookup(line, cycle)
        if pending is not None:
            ready_cycle, from_memory = pending
            latency = max(dl1_latency, ready_cycle - cycle)
            self.dl1.fill(addr, dirty=is_store)
            if from_memory and not is_store:
                self._l2_miss_loads.add()
            return AccessResult(latency, "mshr", from_memory, True)

        l2_latency = dl1_latency + self.config.l2.latency
        if self.config.perfect_l2 or self.l2.access(addr, is_write=is_store):
            # The line may be L2-resident but still in flight (a prefetch or
            # an earlier miss): the access then completes with the fill.
            l2_line = self.l2.line_address(addr)
            pending_l2 = self._l2_mshr.lookup(l2_line, cycle)
            if pending_l2 is not None and not self.config.perfect_l2:
                ready_cycle, from_memory = pending_l2
                latency = max(l2_latency, ready_cycle - cycle)
                self.dl1.fill(addr, dirty=is_store)
                self._dl1_mshr.allocate(line, cycle + latency, from_memory=from_memory)
                if from_memory and not is_store:
                    self._l2_miss_loads.add()
                return AccessResult(latency, "mshr", from_memory, True)
            self.l2.fill(addr)
            self.dl1.fill(addr, dirty=is_store)
            self._dl1_mshr.allocate(line, cycle + l2_latency, from_memory=False)
            return AccessResult(l2_latency, "l2", False, True)

        # L2 miss: main memory, possibly merging with an outstanding fetch.
        l2_line = self.l2.line_address(addr)
        pending_l2 = self._l2_mshr.lookup(l2_line, cycle)
        if pending_l2 is not None:
            latency = max(l2_latency, pending_l2[0] - cycle)
        else:
            latency = l2_latency + self.config.memory_latency
            self._l2_mshr.allocate(l2_line, cycle + latency, from_memory=True)
            self._memory_accesses.add()
        if not is_store:
            self._l2_miss_loads.add()
        self.l2.fill(addr, dirty=is_store)
        self.dl1.fill(addr, dirty=is_store)
        self._dl1_mshr.allocate(line, cycle + latency, from_memory=True)
        return AccessResult(latency, "memory", True, True)

    # -- functional warming (sampled execution) ---------------------------------
    def warm_inst(self, pc: int) -> None:
        """Touch the instruction side for one fast-forwarded instruction.

        Evolves IL1/L2 tag and recency state exactly like
        :meth:`inst_access` but without latency or hit/miss statistics —
        the MSHR-free access path used while functionally fast-forwarding
        between detailed sample windows.
        """
        if not self.il1.warm_access(pc):
            if not self.l2.warm_access(pc):
                self.l2.warm_fill(pc)
            self.il1.warm_fill(pc)

    def warm_data(self, addr: int, is_store: bool, pc: Optional[int] = None) -> bool:
        """Retire one fast-forwarded data access functionally.

        Mirrors the fill decisions of :meth:`data_access` — DL1/L2
        lookup, write-allocate fills, prefetcher training and prefetch
        fills — without MSHR timing or the demand-access statistics, so
        detailed windows observe the same cache contents they would have
        seen had the skipped span been simulated in full.  Returns True
        when the access would have gone to main memory.
        """
        config = self.config
        if config.perfect_dl1:
            return False
        l2_miss = False
        if not self.dl1.warm_access(addr, is_write=is_store):
            if not config.perfect_l2 and not self.l2.warm_access(addr, is_write=is_store):
                l2_miss = True
                self.l2.warm_fill(addr, dirty=is_store)
            self.dl1.warm_fill(addr, dirty=is_store)
        if self.prefetcher is not None:
            for target in self.prefetcher.addresses_after(addr, l2_miss, key=pc):
                if config.perfect_l2 or self.l2.probe(target):
                    continue
                self.l2.warm_fill(target)
                self._prefetched_lines.add(self.l2.line_address(target))
        return l2_miss

    def warm_state(self) -> dict:
        """Serializable snapshot of every warm structure in the hierarchy.

        Covers exactly what functional warming evolves: tag/LRU/dirty
        state of all three caches, the prefetcher training table and the
        set of prefetched-but-untouched lines.  MSHR timers are excluded
        by design — window boundaries :meth:`drain` them, so a warm
        snapshot never carries in-flight fills.
        """
        return {
            "il1": self.il1.warm_state(),
            "dl1": self.dl1.warm_state(),
            "l2": self.l2.warm_state(),
            "prefetcher": self.prefetcher.warm_state() if self.prefetcher else None,
            "prefetched_lines": sorted(self._prefetched_lines),
        }

    def load_warm_state(self, state: dict) -> None:
        """Restore a :meth:`warm_state` snapshot into this hierarchy.

        The hierarchy must have the same geometry the snapshot was taken
        under (the warm-checkpoint key guarantees this for file-loaded
        snapshots); a mismatched snapshot raises ``ValueError`` from the
        cache restore rather than silently mis-adopting state.
        """
        self.il1.load_warm_state(state["il1"])
        self.dl1.load_warm_state(state["dl1"])
        self.l2.load_warm_state(state["l2"])
        if self.prefetcher is not None:
            self.prefetcher.load_warm_state(state.get("prefetcher"))
        self._prefetched_lines = {int(line) for line in state.get("prefetched_lines", ())}
        self._dl1_mshr.clear()
        self._l2_mshr.clear()

    def drain(self) -> None:
        """Complete every in-flight fill (cache contents are kept).

        Called at sampled-execution window boundaries: each detailed
        window starts a fresh cycle counter, so cycle-stamped MSHR
        entries from the previous window must be treated as arrived.
        The lines themselves were already installed at allocation time,
        so dropping the timers is exactly "all outstanding fills have
        landed".
        """
        self._dl1_mshr.clear()
        self._l2_mshr.clear()

    # -- probes used by tests and analysis ------------------------------------------
    def would_miss_l2(self, addr: int, cycle: int = 0) -> bool:
        """Non-destructive check: would an access now behave like an L2 miss?

        A line whose fill is still in flight from main memory counts as a
        miss — the data is not there yet, so a load to it is still a
        long-latency load from the scheduler's point of view.
        """
        if self.config.perfect_l2 or self.config.perfect_dl1:
            return False
        line = self.dl1.line_address(addr)
        pending = self._dl1_mshr.lookup(line, cycle)
        if pending is not None:
            return pending[1]
        return not self.dl1.probe(addr) and not self.l2.probe(addr)

    def flush(self) -> None:
        """Empty every cache and MSHR (used between independent runs)."""
        self.il1.flush()
        self.dl1.flush()
        self.l2.flush()
        self._dl1_mshr.clear()
        self._l2_mshr.clear()
