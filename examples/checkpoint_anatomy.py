#!/usr/bin/env python3
"""Anatomy of the out-of-order-commit machine on one workload.

Runs a single memory-bound kernel on the COoO machine and dissects what
happened inside: checkpoint traffic, the pseudo-ROB retirement breakdown
(Figure 12 of the paper), SLIQ activity and misprediction recoveries.
This is the example to read to understand what the mechanisms actually do
cycle to cycle.
"""

from repro import api, cooo_config
from repro.analysis import format_bar_chart, format_table, retirement_breakdown
from repro.workloads import random_gather


def main() -> None:
    trace = random_gather(elements=500)
    config = cooo_config(iq_size=64, sliq_size=1024, checkpoints=8, memory_latency=800)
    result = api.run(config, trace)

    print(f"workload: {trace.name} ({len(trace)} instructions, "
          f"{trace.load_fraction():.0%} loads)")
    print(f"machine : {config.name}")
    print()
    print(format_table([{
        "ipc": round(result.ipc, 3),
        "cycles": result.cycles,
        "avg in-flight": round(result.mean_in_flight, 0),
        "branch accuracy": round(result.branch_accuracy, 3),
        "L2 load miss %": round(100 * result.l2_load_miss_fraction, 1),
    }]))

    print("\n--- checkpoint traffic -------------------------------------------")
    print(format_table([{
        "checkpoints created": int(result.stat("checkpoint.created")),
        "committed": int(result.stat("checkpoint.committed")),
        "rollbacks": int(result.stat("checkpoint.rollbacks")),
        "avg table occupancy": round(result.stat("checkpoint.occupancy.mean"), 2),
        "table-full episodes": int(result.stat("checkpoint.full_stalls")),
    }]))

    print("\n--- pseudo-ROB retirement breakdown (Figure 12) --------------------")
    breakdown = retirement_breakdown(result)
    print(format_bar_chart(
        {name: value for name, value in breakdown.as_percentages().items()},
        width=40, unit="%",
    ))

    print("\n--- Slow Lane Instruction Queue ------------------------------------")
    print(format_table([{
        "moved into SLIQ": int(result.stat("sliq.inserts")),
        "re-filed (still dependent)": int(result.stat("sliq.refiles")),
        "re-inserted into IQ": int(result.stat("sliq.reinserts")),
        "wakeup events": int(result.stat("sliq.wakeup_events")),
        "avg SLIQ occupancy": round(result.stat("sliq.occupancy.mean"), 1),
    }]))

    print("\n--- misprediction recovery ------------------------------------------")
    print(format_table([{
        "mispredictions": int(result.stat("branch.mispredictions")),
        "recovered via pseudo-ROB": int(result.stat("branch.pseudo_rob_recoveries")),
        "recovered via checkpoint rollback": int(result.stat("branch.checkpoint_recoveries")),
        "instructions squashed": int(result.stat("squash.instructions")),
        "fetched / committed": round(result.replay_overhead, 3),
    }]))


if __name__ == "__main__":
    main()
